//! Bulk GF(2⁸) kernels over byte slices.
//!
//! Every block operation in the protocol reduces to one of these kernels:
//!
//! * [`add_assign`] — `dst ^= src`, the storage node's *Add* (Fig. 5 line 40);
//! * [`mul_assign`] — `dst = c·dst`, used during decode back-substitution;
//! * [`mul_add_assign`] — `dst ^= c·src`, the client's *Delta* step
//!   (α_ji·(v−w) in Fig. 5 line 10) and the inner loop of full encode/decode;
//! * [`mul_add_multi`] — the fused multi-row form of `mul_add_assign` that
//!   streams one source block through several destination rows per pass.
//!
//! These are thin façades over the tiered [`kernel`](crate::kernel) engine:
//! coefficient tables are precomputed at compile time (no per-call table
//! builds — the "hand optimized code for field arithmetic" of §5.1 taken one
//! step further), and the byte loop runs on the widest backend the CPU
//! supports (AVX2 / SSSE3 / SWAR / scalar), selected once at startup and
//! overridable with `GF_BACKEND`. See [`kernel`](crate::kernel) for the tier
//! table and the Fig. 8(a) speedup measurements in `benches/ec_kernels.rs`.
//!
//! All kernels operate on plain `&[u8]`/`&mut [u8]` so callers never pay for
//! a `Gf256` wrapper per byte.

use crate::kernel;

/// `dst[i] ^= src[i]` for all `i` — field addition of two blocks.
///
/// This is the entire work a storage node does to apply an `add` RPC, which
/// is why the paper can use "thin" storage nodes.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    kernel::add_assign(dst, src);
}

/// `dst[i] = xor of all srcs[j][i]` — sums any number of blocks into `dst`.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn sum_into(dst: &mut [u8], srcs: &[&[u8]]) {
    dst.fill(0);
    for src in srcs {
        kernel::add_assign(dst, src);
    }
}

/// `dst[i] = c · dst[i]` — scales a block by a field constant.
///
/// # Panics
///
/// Never panics; `c = 0` zeroes the block, `c = 1` is a no-op.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: u8) {
    kernel::mul_assign(dst, c);
}

/// `dst[i] ^= c · src[i]` — the multiply-accumulate at the heart of encode,
/// decode and delta updates.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    kernel::mul_add_assign(dst, c, src);
}

/// `dsts[j][i] ^= cs[j] · src[i]` for every destination row `j` — full
/// encode's inner step fused across all `p` redundant rows, so each source
/// tile is read once while hot instead of once per row.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ or any row length differs from
/// `src`.
#[inline]
pub fn mul_add_multi(dsts: &mut [&mut [u8]], cs: &[u8], src: &[u8]) {
    kernel::mul_add_multi(dsts, cs, src);
}

/// `out[i] = c · (a[i] ^ b[i])` — fused "subtract then scale", the client's
/// *Delta* computation `α·(v − w)` done in one pass without a temporary.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    kernel::delta_into(out, c, a, b);
}

// ---- GF(2¹⁶) kernels: blocks as little-endian u16 words ----
//
// Wide codes ([`Gf65536`](crate::Gf65536)) use the same byte-slice block
// representation; the `*16` kernels interpret pairs of bytes as
// little-endian `u16` words. [`add_assign`] needs no 16-bit variant — XOR
// is field addition in every GF(2^h). All `*16` kernels require **even**
// slice lengths and run on the same tiered backend engine (AVX2 / SSSE3 /
// SWAR / scalar, `GF_BACKEND`-overridable) with per-call split-nibble
// tables; see [`kernel`](crate::kernel) for the design.

/// `dst = c·dst` over `u16` words — wide-code decode back-substitution.
///
/// # Panics
///
/// Panics on an odd slice length.
#[inline]
pub fn mul_assign16(dst: &mut [u8], c: u16) {
    kernel::mul_assign16(dst, c);
}

/// `dst ^= c·src` over `u16` words — the wide-code multiply-accumulate.
///
/// # Panics
///
/// Panics if the slices have different lengths or an odd length.
#[inline]
pub fn mul_add_assign16(dst: &mut [u8], c: u16, src: &[u8]) {
    kernel::mul_add_assign16(dst, c, src);
}

/// `dsts[j] ^= cs[j]·src` for every destination row `j` — wide-code full
/// encode/decode fused across all rows, one split-table build per row.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, any row length differs from
/// `src`, or the length is odd.
#[inline]
pub fn mul_add_multi16(dsts: &mut [&mut [u8]], cs: &[u16], src: &[u8]) {
    kernel::mul_add_multi16(dsts, cs, src);
}

/// `out = c·(a ^ b)` over `u16` words — the wide-code *Delta* step.
///
/// # Panics
///
/// Panics if the slice lengths differ or are odd.
#[inline]
pub fn delta_into16(out: &mut [u8], c: u16, a: &[u8], b: &[u8]) {
    kernel::delta_into16(out, c, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use proptest::prelude::*;

    #[test]
    fn add_assign_is_xor() {
        let mut a = vec![0xF0u8; 20];
        let b = vec![0x0Fu8; 20];
        add_assign(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0xFF));
        // Adding twice cancels (characteristic 2).
        add_assign(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0xF0));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn add_assign_rejects_length_mismatch() {
        let mut a = vec![0u8; 4];
        add_assign(&mut a, &[0u8; 5]);
    }

    #[test]
    fn mul_assign_special_cases() {
        let mut a = vec![7u8, 8, 9];
        mul_assign(&mut a, 1);
        assert_eq!(a, vec![7, 8, 9]);
        mul_assign(&mut a, 0);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    fn sum_into_sums_all_sources() {
        let a = [1u8, 2, 3];
        let b = [4u8, 5, 6];
        let c = [7u8, 8, 9];
        let mut out = [0xAAu8; 3];
        sum_into(&mut out, &[&a, &b, &c]);
        for i in 0..3 {
            assert_eq!(out[i], a[i] ^ b[i] ^ c[i]);
        }
    }

    #[test]
    fn mul_add_multi_equals_sequential_mul_adds() {
        let src: Vec<u8> = (0..500).map(|i| (i * 7 + 3) as u8).collect();
        let cs = [0x02u8, 0x53, 0x00, 0x01, 0xFF];
        let mut fused: Vec<Vec<u8>> = (0..cs.len())
            .map(|j| (0..500).map(|i| (i + j * 11) as u8).collect())
            .collect();
        let mut sequential = fused.clone();
        for (row, &c) in sequential.iter_mut().zip(&cs) {
            mul_add_assign(row, c, &src);
        }
        let mut views: Vec<&mut [u8]> = fused.iter_mut().map(|r| r.as_mut_slice()).collect();
        mul_add_multi(&mut views, &cs, &src);
        assert_eq!(fused, sequential);
    }

    proptest! {
        #[test]
        fn prop_mul_add_matches_scalar(
            c in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..100),
            src in proptest::collection::vec(any::<u8>(), 0..100),
        ) {
            let n = data.len().min(src.len());
            let mut dst = data[..n].to_vec();
            mul_add_assign(&mut dst, c, &src[..n]);
            for i in 0..n {
                prop_assert_eq!(dst[i], data[i] ^ textbook::mul(c, src[i]));
            }
        }

        #[test]
        fn prop_delta_fused_equals_two_step(
            c in any::<u8>(),
            a in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let b: Vec<u8> = a.iter().map(|x| x.wrapping_mul(31).wrapping_add(7)).collect();
            let mut fused = vec![0u8; a.len()];
            delta_into(&mut fused, c, &a, &b);

            let mut two_step: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            mul_assign(&mut two_step, c);
            prop_assert_eq!(fused, two_step);
        }

        #[test]
        fn prop_mul_assign_then_inverse_round_trips(
            c in 1..=255u8,
            mut data in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            use crate::{Field, Gf256};
            let original = data.clone();
            mul_assign(&mut data, c);
            let inv = Gf256::new(c).inv().unwrap().as_byte();
            mul_assign(&mut data, inv);
            prop_assert_eq!(data, original);
        }
    }
}
