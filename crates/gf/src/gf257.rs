//! GF(257) — a small prime field of odd characteristic.
//!
//! The paper's §3.3 worked example builds redundant blocks `a+b` and `a−b`,
//! and footnotes that "+ and − must be taken over a field with
//! characteristic ≠ 2". GF(257) is the smallest prime field that embeds all
//! byte values, so it is the natural home for that example; the
//! `examples/toy_code.rs` binary and several tests use it. Production codes
//! use [`crate::Gf256`].

use crate::field::Field;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

const P: u32 = 257;

/// An element of the prime field GF(257), stored canonically in `0..257`.
///
/// # Example
///
/// ```
/// use ajx_gf::{Field, Gf257};
/// let a = Gf257::from_u64(200);
/// let b = Gf257::from_u64(100);
/// // a + b wraps modulo 257, and subtraction genuinely differs from
/// // addition (characteristic != 2):
/// assert_eq!((a + b).to_u64(), 43);
/// assert_eq!((a - b).to_u64(), 100);
/// assert_ne!(a + b, a - b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf257(u16);

impl Gf257 {
    /// Wraps `v`, reducing modulo 257.
    pub const fn new(v: u16) -> Self {
        Gf257(v % 257)
    }

    /// The canonical representative in `0..257`.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for Gf257 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf257({})", self.0)
    }
}

impl fmt::Display for Gf257 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Gf257 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf257(((self.0 as u32 + rhs.0 as u32) % P) as u16)
    }
}

impl AddAssign for Gf257 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Gf257 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf257(((self.0 as u32 + P - rhs.0 as u32) % P) as u16)
    }
}

impl SubAssign for Gf257 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Neg for Gf257 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Gf257(((P - self.0 as u32) % P) as u16)
    }
}

impl Mul for Gf257 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf257(((self.0 as u32 * rhs.0 as u32) % P) as u16)
    }
}

impl MulAssign for Gf257 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // division via inverse-multiply
impl Div for Gf257 {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        rhs.inv().expect("division by zero in GF(257)") * self
    }
}

impl Field for Gf257 {
    const ZERO: Self = Gf257(0);
    const ONE: Self = Gf257(1);
    const ORDER: usize = 257;

    fn from_u64(n: u64) -> Self {
        Gf257((n % P as u64) as u16)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(p-2) = a^-1 in GF(p).
            Some(self.pow(P as u64 - 2))
        }
    }

    fn generator() -> Self {
        // 3 is a primitive root modulo 257.
        Gf257(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn characteristic_is_not_two() {
        let one = Gf257::ONE;
        assert_ne!(one + one, Gf257::ZERO);
        // a - b differs from a + b whenever b != 0 (and 2b != 0).
        let a = Gf257::from_u64(10);
        let b = Gf257::from_u64(3);
        assert_ne!(a + b, a - b);
    }

    #[test]
    fn paper_toy_example_recovers_a_from_sum_and_b() {
        // Stripe (a, b, a+b, a-b): given a+b and b we obtain a by
        // subtraction, exactly the §3.3 walk-through.
        let a = Gf257::from_u64(77);
        let b = Gf257::from_u64(200);
        let sum = a + b;
        assert_eq!(sum - b, a);
        // And from (a+b, a-b) alone: a = (s + d)/2, b = (s - d)/2.
        let diff = a - b;
        let two_inv = Gf257::from_u64(2).inv().unwrap();
        assert_eq!((sum + diff) * two_inv, a);
        assert_eq!((sum - diff) * two_inv, b);
    }

    #[test]
    fn all_inverses_correct_exhaustively() {
        for v in 1..257u64 {
            let x = Gf257::from_u64(v);
            assert_eq!(x * x.inv().unwrap(), Gf257::ONE, "inverse of {v}");
        }
        assert!(Gf257::ZERO.inv().is_none());
    }

    #[test]
    fn new_reduces_modulo_p() {
        assert_eq!(Gf257::new(257).value(), 0);
        assert_eq!(Gf257::new(258).value(), 1);
        assert_eq!(Gf257::from_u64(u64::MAX).value() as u64, u64::MAX % 257);
    }

    proptest! {
        #[test]
        fn prop_axioms(a in 0..257u64, b in 0..257u64, c in 0..257u64) {
            let (a, b, c) = (Gf257::from_u64(a), Gf257::from_u64(b), Gf257::from_u64(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!((a - b) + b, a);
            prop_assert_eq!(a + (-a), Gf257::ZERO);
        }
    }
}
