//! The [`Field`] trait: the minimal algebraic interface the erasure-code
//! layer needs from a coefficient field.

use core::fmt::Debug;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A finite field, as required by linear MDS erasure codes.
///
/// The paper's codes (§3.3) work over any finite field; the implementation
/// uses GF(2⁸) while the worked 2-of-4 example needs characteristic ≠ 2.
/// This trait lets the generic linear-algebra code (generator matrices,
/// Gaussian elimination, delta coefficients) be written once and
/// property-tested over both.
///
/// # Contract
///
/// Implementations must satisfy the field axioms: `(F, +)` is an abelian
/// group with identity [`Field::ZERO`], `(F \ {0}, ×)` is an abelian group
/// with identity [`Field::ONE`], and multiplication distributes over
/// addition. The unit tests in this crate check these axioms exhaustively or
/// by property testing for every implementation.
pub trait Field:
    Copy
    + Eq
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Div<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of elements in the field.
    const ORDER: usize;

    /// Builds the element canonically associated with `n`, reducing modulo
    /// the field order. For GF(2⁸) this is the byte `n % 256`; for GF(257)
    /// it is `n % 257`.
    fn from_u64(n: u64) -> Self;

    /// A canonical integer representation in `0..Self::ORDER`, the inverse
    /// of [`Field::from_u64`] on canonical inputs.
    fn to_u64(self) -> u64;

    /// The multiplicative inverse, or `None` for zero.
    fn inv(self) -> Option<Self>;

    /// Raises `self` to the power `e` by square-and-multiply.
    ///
    /// `pow(0)` is [`Field::ONE`] for every element, including zero (the
    /// empty product), matching the convention used by Vandermonde matrix
    /// construction where `x⁰ = 1`.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// True if this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// A generator of the multiplicative group, used to build Vandermonde
    /// evaluation points that are pairwise distinct.
    fn generator() -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf257};

    #[allow(clippy::eq_op)] // the axioms deliberately test a − a and a / a
    fn axioms_sample<F: Field>(elems: &[F]) {
        for &a in elems {
            assert_eq!(a + F::ZERO, a, "additive identity");
            assert_eq!(a * F::ONE, a, "multiplicative identity");
            assert_eq!(a - a, F::ZERO, "self subtraction");
            assert_eq!(a + (-a), F::ZERO, "negation");
            assert_eq!(a * F::ZERO, F::ZERO, "mul by zero");
            if !a.is_zero() {
                let i = a.inv().expect("nonzero invertible");
                assert_eq!(a * i, F::ONE, "inverse");
                assert_eq!(a / a, F::ONE, "self division");
            } else {
                assert!(a.inv().is_none(), "zero has no inverse");
            }
            for &b in elems {
                assert_eq!(a + b, b + a, "commutative +");
                assert_eq!(a * b, b * a, "commutative *");
                assert_eq!((a - b) + b, a, "sub round-trips");
                for &c in elems {
                    assert_eq!((a + b) + c, a + (b + c), "associative +");
                    assert_eq!((a * b) * c, a * (b * c), "associative *");
                    assert_eq!(a * (b + c), a * b + a * c, "distributive");
                }
            }
        }
    }

    #[test]
    fn gf256_axioms_on_sample() {
        let elems: Vec<Gf256> = [0u8, 1, 2, 3, 5, 7, 85, 170, 254, 255]
            .iter()
            .map(|&b| Gf256::new(b))
            .collect();
        axioms_sample(&elems);
    }

    #[test]
    fn gf257_axioms_on_sample() {
        let elems: Vec<Gf257> = [0u64, 1, 2, 3, 128, 255, 256]
            .iter()
            .map(|&b| Gf257::from_u64(b))
            .collect();
        axioms_sample(&elems);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for f in [Gf256::new(3), Gf256::new(29), Gf256::new(255)] {
            let mut acc = Gf256::ONE;
            for e in 0..20u64 {
                assert_eq!(f.pow(e), acc);
                acc *= f;
            }
        }
    }

    #[test]
    fn pow_zero_of_zero_is_one() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf257::ZERO.pow(0), Gf257::ONE);
    }

    #[test]
    fn generator_has_full_order() {
        // The generator's powers must enumerate every nonzero element.
        let g = Gf256::generator();
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(!seen[x.to_u64() as usize], "generator order too small");
            seen[x.to_u64() as usize] = true;
            x *= g;
        }
        assert_eq!(x, Gf256::ONE);

        let g = Gf257::generator();
        let mut seen = [false; 257];
        let mut x = Gf257::ONE;
        for _ in 0..256 {
            assert!(!seen[x.to_u64() as usize], "generator order too small");
            seen[x.to_u64() as usize] = true;
            x *= g;
        }
        assert_eq!(x, Gf257::ONE);
    }
}
