//! GF(2⁸) — the byte field used by the Reed-Solomon implementation.
//!
//! Elements are bytes; addition is XOR; multiplication is carried out in
//! GF(2)[x] modulo the primitive polynomial x⁸ + x⁴ + x³ + x² + 1 (0x11D).
//! Multiplication and inversion go through logarithm/antilogarithm tables
//! generated at compile time, the standard "optimized" implementation the
//! paper contrasts with textbook shift-and-add (§6.1).

use crate::field::Field;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The primitive polynomial x⁸ + x⁴ + x³ + x² + 1 used for reduction.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// The multiplicative generator whose powers fill the exp/log tables.
const GENERATOR: u8 = 0x02;

/// Compile-time generated tables: `EXP[i] = g^i` for `i in 0..510` (doubled
/// so `EXP[log a + log b]` needs no `% 255`), and `LOG[x] = log_g x` for
/// nonzero `x` (`LOG[0]` is a sentinel that is never read).
const TABLES: ([u8; 510], [u8; 256]) = generate_tables();

const fn generate_tables() -> ([u8; 510], [u8; 256]) {
    let mut exp = [0u8; 510];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        // multiply x by the generator (0x02) with polynomial reduction
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        let _ = GENERATOR; // generator is 2: the shift above *is* the multiply
        i += 1;
    }
    (exp, log)
}

pub(crate) const EXP: [u8; 510] = TABLES.0;
pub(crate) const LOG: [u8; 256] = TABLES.1;

/// An element of GF(2⁸).
///
/// # Example
///
/// ```
/// use ajx_gf::{Field, Gf256};
/// let x = Gf256::new(0x1D);
/// assert_eq!(x + x, Gf256::ZERO); // characteristic 2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

impl Gf256 {
    /// Wraps a byte as a field element (every byte is a valid element).
    #[inline]
    pub const fn new(byte: u8) -> Self {
        Gf256(byte)
    }

    /// The underlying byte.
    #[inline]
    pub const fn as_byte(self) -> u8 {
        self.0
    }

    /// Table-driven product of two raw bytes; the scalar kernel behind
    /// [`crate::slice`].
    #[inline]
    pub fn mul_bytes(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
        }
    }

    /// Fills `table` with the 256 products `c·x` for `x = 0..=255`.
    ///
    /// Bulk slice kernels build this once per (coefficient, slice) pair and
    /// then reduce each byte multiply to a single indexed load — the paper's
    /// §6.1 "carefully optimized erasure code functions".
    #[inline]
    pub fn build_mul_table(c: u8, table: &mut [u8; 256]) {
        if c == 0 {
            table.fill(0);
            return;
        }
        let log_c = LOG[c as usize] as usize;
        table[0] = 0;
        for x in 1..256usize {
            table[x] = EXP[log_c + LOG[x] as usize];
        }
    }

    /// Discrete logarithm base the field generator.
    ///
    /// Returns `None` for zero, which has no logarithm.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// `g^e` for the field generator g = 2.
    #[inline]
    pub fn exp(e: u8) -> Self {
        Gf256(EXP[e as usize])
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    fn from(b: u8) -> Self {
        Gf256(b)
    }
}

impl From<Gf256> for u8 {
    fn from(g: Gf256) -> u8 {
        g.0
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // GF(2^8): addition IS xor
impl Add for Gf256 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        // In characteristic 2, subtraction coincides with addition.
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf256 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf256(Self::mul_bytes(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // division via inverse-multiply
impl Div for Gf256 {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero, mirroring integer division.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        rhs.inv().expect("division by zero in GF(2^8)") * self
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const ORDER: usize = 256;

    #[inline]
    fn from_u64(n: u64) -> Self {
        Gf256((n % 256) as u8)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    fn generator() -> Self {
        Gf256(GENERATOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use proptest::prelude::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutually inverse on the nonzero range.
        for i in 0..255u16 {
            let x = EXP[i as usize];
            assert_ne!(x, 0, "generator powers never hit zero");
            assert_eq!(LOG[x as usize] as u16, i);
        }
        // The doubled upper half mirrors the lower half.
        for i in 0..255usize {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn mul_matches_textbook_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    Gf256::mul_bytes(a, b),
                    textbook::mul(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let x = Gf256::new(a);
            let i = x.inv().unwrap();
            assert_eq!(x * i, Gf256::ONE, "inverse of {a}");
        }
        assert!(Gf256::ZERO.inv().is_none());
    }

    #[test]
    fn mul_table_matches_scalar() {
        let mut table = [0u8; 256];
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            Gf256::build_mul_table(c, &mut table);
            for x in 0..=255u8 {
                assert_eq!(table[x as usize], Gf256::mul_bytes(c, x));
            }
        }
    }

    #[test]
    fn known_products() {
        // Hand-checked values for poly 0x11D.
        assert_eq!(Gf256::mul_bytes(0x02, 0x80), 0x1D); // x^8 ≡ x^4+x^3+x^2+1
        assert_eq!(Gf256::exp(0), Gf256::ONE);
        assert_eq!(Gf256::exp(1), Gf256::new(0x02));
        assert_eq!(Gf256::exp(8), Gf256::new(0x1D));
        assert_eq!(Gf256::new(0x02).log(), Some(1));
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Gf256::new(0xAB)), "ab");
        assert_eq!(format!("{:?}", Gf256::ZERO), "Gf256(0x00)");
        assert_eq!(format!("{:x}", Gf256::new(0xAB)), "ab");
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - b + b, a);
        }

        #[test]
        fn prop_division_undoes_multiplication(a in any::<u8>(), b in 1..=255u8) {
            let (a, b) = (Gf256::new(a), Gf256::new(b));
            prop_assert_eq!((a * b) / b, a);
        }

        #[test]
        fn prop_pow_adds_exponents(a in 1..=255u8, e1 in 0..64u64, e2 in 0..64u64) {
            let a = Gf256::new(a);
            prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
        }
    }
}
