//! GF(2¹⁶) — a larger binary field for very wide codes.
//!
//! The paper's arithmetic is "over some finite field, usually GF(2^h)"
//! (§3.3); its implementation uses h = 8, which caps a Reed-Solomon code
//! at n = 256 distinct evaluation points. This field raises the cap to
//! 65 536 nodes — relevant to the paper's closing vision of
//! "industrial-strength distributed disk array[s]" built from very many
//! cheap adapters.
//!
//! Elements are `u16`; reduction is modulo the primitive polynomial
//! x¹⁶ + x¹² + x³ + x + 1 (0x1100B). The 512 KiB log/exp tables are built
//! once at first use.

use crate::field::Field;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// The primitive polynomial x¹⁶ + x¹² + x³ + x + 1.
pub const PRIMITIVE_POLY_16: u32 = 0x1100B;

struct Tables {
    exp: Vec<u16>, // length 2·65535: doubled to skip the mod
    log: Vec<u16>, // length 65536; log[0] unused
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * 65535];
        let mut log = vec![0u16; 65536];
        let mut x: u32 = 1;
        for i in 0..65535usize {
            exp[i] = x as u16;
            exp[i + 65535] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x1_0000 != 0 {
                x ^= PRIMITIVE_POLY_16;
            }
        }
        Tables { exp, log }
    })
}

/// An element of GF(2¹⁶).
///
/// # Example
///
/// ```
/// use ajx_gf::{Field, Gf65536};
/// let a = Gf65536::new(0xABCD);
/// assert_eq!(a + a, Gf65536::ZERO); // characteristic 2
/// assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf65536(u16);

impl Gf65536 {
    /// Wraps a `u16` as a field element.
    pub const fn new(v: u16) -> Self {
        Gf65536(v)
    }

    /// The underlying representation.
    pub const fn to_u16(self) -> u16 {
        self.0
    }

    /// Table-driven product of raw `u16` values.
    #[inline]
    pub fn mul_raw(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }
}

impl fmt::Debug for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf65536(0x{:04x})", self.0)
    }
}

impl fmt::Display for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // GF(2^16): addition IS xor
impl Add for Gf65536 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf65536 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf65536 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf65536 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf65536 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf65536 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf65536(Self::mul_raw(self.0, rhs.0))
    }
}

impl MulAssign for Gf65536 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // division via inverse-multiply
impl Div for Gf65536 {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        rhs.inv().expect("division by zero in GF(2^16)") * self
    }
}

impl Field for Gf65536 {
    const ZERO: Self = Gf65536(0);
    const ONE: Self = Gf65536(1);
    const ORDER: usize = 65536;

    fn from_u64(n: u64) -> Self {
        Gf65536((n % 65536) as u16)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            let t = tables();
            Some(Gf65536(t.exp[65535 - t.log[self.0 as usize] as usize]))
        }
    }

    fn generator() -> Self {
        Gf65536(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Shift-and-add oracle.
    fn textbook16(mut a: u16, mut b: u16) -> u16 {
        let mut acc = 0u16;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let carry = a & 0x8000 != 0;
            a <<= 1;
            if carry {
                a ^= (PRIMITIVE_POLY_16 & 0xFFFF) as u16;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn table_mul_matches_textbook_on_sample() {
        let samples = [0u16, 1, 2, 3, 0x1B, 0x100, 0x8001, 0xFFFF, 0xABCD, 500];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf65536::mul_raw(a, b), textbook16(a, b), "{a:#x} * {b:#x}");
            }
        }
    }

    #[test]
    fn identity_and_zero() {
        for v in [1u16, 2, 0xFFFF, 0x8000] {
            let x = Gf65536::new(v);
            assert_eq!(x * Gf65536::ONE, x);
            assert_eq!(x * Gf65536::ZERO, Gf65536::ZERO);
            assert_eq!(x + x, Gf65536::ZERO);
        }
        assert!(Gf65536::ZERO.inv().is_none());
    }

    #[test]
    fn generator_reaches_sample_elements() {
        // Full-order check is expensive (65535 steps) but still fast.
        let g = Gf65536::generator();
        let mut x = Gf65536::ONE;
        let mut count = 0u32;
        loop {
            x *= g;
            count += 1;
            if x == Gf65536::ONE {
                break;
            }
            assert!(count <= 65535, "order exceeded field size");
        }
        assert_eq!(count, 65535, "2 must generate the full multiplicative group");
    }

    proptest! {
        #[test]
        fn prop_mul_matches_textbook(a in any::<u16>(), b in any::<u16>()) {
            prop_assert_eq!(Gf65536::mul_raw(a, b), textbook16(a, b));
        }

        #[test]
        fn prop_inverse(a in 1..=u16::MAX) {
            let x = Gf65536::new(a);
            prop_assert_eq!(x * x.inv().unwrap(), Gf65536::ONE);
        }

        #[test]
        fn prop_distributive(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
            let (a, b, c) = (Gf65536::new(a), Gf65536::new(b), Gf65536::new(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }
    }
}
