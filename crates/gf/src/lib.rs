//! Finite-field arithmetic for erasure-coded storage.
//!
//! This crate provides the arithmetic substrate used by the Reed-Solomon
//! codes in `ajx-erasure`: the field **GF(2⁸)** (the field the paper's
//! implementation uses for its "hand optimized code for field arithmetic",
//! §5.1), plus the small prime field **GF(257)** used to mirror the paper's
//! pedagogical 2-of-4 example `(a, b, a+b, a−b)` from §3.3 (which requires a
//! field of characteristic ≠ 2), and **GF(2¹⁶)** ([`Gf65536`]) for codes
//! wider than 256 nodes.
//!
//! Three levels of API are exposed:
//!
//! * [`Gf256`] / [`Gf257`] — scalar field elements implementing the [`Field`]
//!   trait (full operator overloads, inverses, exponentiation).
//! * [`slice`](mod@slice) — bulk kernels over byte slices (`add_assign`, `mul_assign`,
//!   `mul_add_assign`): these are the hot path of every encode, delta-update
//!   and decode. They use a per-call 256-entry product table, the same
//!   optimization the paper credits for running "10-20 times faster than
//!   textbook implementations" (§6.1).
//! * [`textbook`] — a deliberately naive shift-and-add implementation kept as
//!   the baseline for the Fig. 8(a) speedup claim and as a correctness oracle
//!   in tests.
//!
//! # Example
//!
//! ```
//! use ajx_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Addition is XOR in characteristic 2, so every element is its own negation.
//! assert_eq!(a + b, b + a);
//! assert_eq!(a - b, a + b);
//! // Multiplication distributes over addition.
//! let c = Gf256::new(7);
//! assert_eq!(c * (a + b), c * a + c * b);
//! // Every nonzero element has an inverse.
//! let inv = b.inv().expect("b is nonzero");
//! assert_eq!(b * inv, Gf256::ONE);
//! ```

// `deny` rather than `forbid`: the SIMD kernels in `kernel::x86` carry a
// scoped `#![allow(unsafe_code)]`; every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod gf256;
mod gf257;
mod gf65536;
pub mod kernel;
pub mod slice;
pub mod textbook;

pub use field::Field;
pub use gf256::Gf256;
pub use gf257::Gf257;
pub use gf65536::Gf65536;
