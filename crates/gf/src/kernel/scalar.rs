//! Scalar tier: one table-indexed load per byte.
//!
//! This is the seed implementation's technique — the paper's §5.1 "hand
//! optimized code for field arithmetic" — except the 256-entry product table
//! now comes from the compile-time [`MUL_TABLES`] array instead of being
//! rebuilt on every call, which removes ~256 multiplies of setup per kernel
//! invocation.

use super::MUL_TABLES;

pub(crate) fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    let table = &MUL_TABLES[c as usize];
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= table[s as usize];
    }
}

pub(crate) fn mul_assign(dst: &mut [u8], c: u8) {
    let table = &MUL_TABLES[c as usize];
    for d in dst.iter_mut() {
        *d = table[*d as usize];
    }
}

pub(crate) fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let table = &MUL_TABLES[c as usize];
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = table[(x ^ y) as usize];
    }
}
