//! Scalar tier: one table-indexed load per byte.
//!
//! This is the seed implementation's technique — the paper's §5.1 "hand
//! optimized code for field arithmetic" — except the 256-entry product table
//! now comes from the compile-time [`MUL_TABLES`] array instead of being
//! rebuilt on every call, which removes ~256 multiplies of setup per kernel
//! invocation.
//!
//! The GF(2¹⁶) variants (`*16`) read the per-call [`Split16`] partial-
//! product tables instead: four 16-entry `u16` lookups and three XORs per
//! word, branch-free — faster than log/exp (no zero test, 128-byte working
//! set) while still portable to any target.

use super::{Split16, MUL_TABLES};

pub(crate) fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    let table = &MUL_TABLES[c as usize];
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= table[s as usize];
    }
}

pub(crate) fn mul_assign(dst: &mut [u8], c: u8) {
    let table = &MUL_TABLES[c as usize];
    for d in dst.iter_mut() {
        *d = table[*d as usize];
    }
}

pub(crate) fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let table = &MUL_TABLES[c as usize];
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = table[(x ^ y) as usize];
    }
}

// ---- GF(2¹⁶): split-nibble table lookups over little-endian u16 words ----

/// `t₀[n₀] ⊕ t₁[n₁] ⊕ t₂[n₂] ⊕ t₃[n₃]` for one word.
#[inline(always)]
fn product16(t: &Split16, x: u16) -> u16 {
    let x = x as usize;
    t.w[0][x & 0xf] ^ t.w[1][(x >> 4) & 0xf] ^ t.w[2][(x >> 8) & 0xf] ^ t.w[3][x >> 12]
}

pub(crate) fn mul_add_assign16(dst: &mut [u8], t: &Split16, src: &[u8]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let p = product16(t, u16::from_le_bytes([s[0], s[1]]));
        d.copy_from_slice(&(p ^ u16::from_le_bytes([d[0], d[1]])).to_le_bytes());
    }
}

pub(crate) fn mul_assign16(dst: &mut [u8], t: &Split16) {
    for d in dst.chunks_exact_mut(2) {
        let p = product16(t, u16::from_le_bytes([d[0], d[1]]));
        d.copy_from_slice(&p.to_le_bytes());
    }
}

pub(crate) fn delta_into16(out: &mut [u8], t: &Split16, a: &[u8], b: &[u8]) {
    for ((o, x), y) in out
        .chunks_exact_mut(2)
        .zip(a.chunks_exact(2))
        .zip(b.chunks_exact(2))
    {
        let s = u16::from_le_bytes([x[0], x[1]]) ^ u16::from_le_bytes([y[0], y[1]]);
        o.copy_from_slice(&product16(t, s).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf65536;

    #[test]
    fn split_tables_reconstruct_full_product16() {
        for c in [1u16, 2, 0x100B, 0x8000, 0xABCD, 0xFFFF] {
            let t = Split16::new(c);
            for x in [0u16, 1, 0x000F, 0x00F0, 0x0F00, 0xF000, 0x1234, 0xFFFF] {
                assert_eq!(product16(&t, x), Gf65536::mul_raw(c, x), "c={c:#x} x={x:#x}");
            }
        }
    }
}
