//! SWAR tier: branch-free GF(2⁸) shift-and-add over wide groups of byte
//! lanes, portable safe Rust with no lookups and no `unsafe`.
//!
//! The product `c·x` is computed by classic shift-and-add over the bits of
//! `c`, applied to 32 byte lanes at a time. Lanewise doubling is expressed
//! per byte as `(x << 1) ^ (((x as i8) >> 7) as u8 & 0x1D)` — the arithmetic
//! shift broadcasts the carry bit into a 0x00/0xFF mask, which LLVM lowers
//! to a compare + add + and + xor on whatever vector unit the target has
//! (SSE2 `pcmpgtb`/`paddb`, NEON `cmlt`/`shl`), and to plain scalar code on
//! targets with none. The bit loop over `c` is resolved once per call
//! (coefficients are loop-invariant across a block), so its branches are
//! perfectly predicted.
//!
//! This tier needs no CPU feature detection and serves as the fast portable
//! floor on non-x86 targets; on x86 the explicit nibble-shuffle tiers in
//! [`x86`](super::x86) are several times faster still.

/// Byte lanes processed per step: two SSE2 vectors' worth, enough for the
/// autovectorizer to keep multiple independent chains in flight.
const LANES: usize = 32;

/// Lanewise `x ← 2·x` in GF(2⁸).
#[inline(always)]
fn double_bytes(x: &mut [u8; LANES]) {
    for b in x.iter_mut() {
        // ((b as i8) >> 7) is 0x00 or 0xFF per lane; reduce overflowing
        // lanes by the primitive polynomial's low byte 0x1D.
        let carry = (((*b as i8) >> 7) as u8) & 0x1D;
        *b = (*b << 1) ^ carry;
    }
}

/// Lanewise `acc ^= c·x`, destroying `x`.
#[inline(always)]
fn mul_acc_bytes(acc: &mut [u8; LANES], mut x: [u8; LANES], c: u8) {
    let mut cc = c;
    while cc != 0 {
        if cc & 1 == 1 {
            for i in 0..LANES {
                acc[i] ^= x[i];
            }
        }
        cc >>= 1;
        if cc != 0 {
            double_bytes(&mut x);
        }
    }
}

#[inline(always)]
fn load(bytes: &[u8]) -> [u8; LANES] {
    bytes.try_into().expect("LANES-byte chunk")
}

pub(crate) fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    let mid = dst.len() - dst.len() % LANES;
    let (dh, dt) = dst.split_at_mut(mid);
    let (sh, st) = src.split_at(mid);
    for (d, s) in dh.chunks_exact_mut(LANES).zip(sh.chunks_exact(LANES)) {
        let mut acc = load(d);
        mul_acc_bytes(&mut acc, load(s), c);
        d.copy_from_slice(&acc);
    }
    super::scalar::mul_add_assign(dt, c, st);
}

pub(crate) fn mul_assign(dst: &mut [u8], c: u8) {
    let mid = dst.len() - dst.len() % LANES;
    let (dh, dt) = dst.split_at_mut(mid);
    for d in dh.chunks_exact_mut(LANES) {
        let mut acc = [0u8; LANES];
        mul_acc_bytes(&mut acc, load(d), c);
        d.copy_from_slice(&acc);
    }
    super::scalar::mul_assign(dt, c);
}

pub(crate) fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let mid = out.len() - out.len() % LANES;
    let (oh, ot) = out.split_at_mut(mid);
    let (ah, at) = a.split_at(mid);
    let (bh, bt) = b.split_at(mid);
    for ((o, x), y) in oh
        .chunks_exact_mut(LANES)
        .zip(ah.chunks_exact(LANES))
        .zip(bh.chunks_exact(LANES))
    {
        let mut s = load(x);
        let yl = load(y);
        for i in 0..LANES {
            s[i] ^= yl[i];
        }
        let mut acc = [0u8; LANES];
        mul_acc_bytes(&mut acc, s, c);
        o.copy_from_slice(&acc);
    }
    super::scalar::delta_into(ot, c, at, bt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;

    #[test]
    fn lanewise_double_matches_scalar_double() {
        for x in 0..=255u8 {
            let mut lanes = [0u8; LANES];
            for (i, l) in lanes.iter_mut().enumerate() {
                *l = x.wrapping_add((i as u8).wrapping_mul(37));
            }
            let orig = lanes;
            double_bytes(&mut lanes);
            for i in 0..LANES {
                assert_eq!(lanes[i], textbook::mul(2, orig[i]), "lane {i} of {x:#x}");
            }
        }
    }

    #[test]
    fn lanewise_mul_matches_scalar_mul() {
        for c in [0u8, 1, 2, 3, 0x1d, 0x80, 0xff] {
            for x in 0..=255u8 {
                let mut lanes = [0u8; LANES];
                for (i, l) in lanes.iter_mut().enumerate() {
                    *l = x.wrapping_add((i as u8).wrapping_mul(37));
                }
                let mut acc = [0u8; LANES];
                mul_acc_bytes(&mut acc, lanes, c);
                for i in 0..LANES {
                    assert_eq!(acc[i], textbook::mul(c, lanes[i]), "c={c:#x} lane {i}");
                }
            }
        }
    }
}
