//! SWAR tier: branch-free GF(2⁸) shift-and-add over wide groups of byte
//! lanes, portable safe Rust with no lookups and no `unsafe`.
//!
//! The product `c·x` is computed by classic shift-and-add over the bits of
//! `c`, applied to 32 byte lanes at a time. Lanewise doubling is expressed
//! per byte as `(x << 1) ^ (((x as i8) >> 7) as u8 & 0x1D)` — the arithmetic
//! shift broadcasts the carry bit into a 0x00/0xFF mask, which LLVM lowers
//! to a compare + add + and + xor on whatever vector unit the target has
//! (SSE2 `pcmpgtb`/`paddb`, NEON `cmlt`/`shl`), and to plain scalar code on
//! targets with none. The bit loop over `c` is resolved once per call
//! (coefficients are loop-invariant across a block), so its branches are
//! perfectly predicted.
//!
//! This tier needs no CPU feature detection and serves as the fast portable
//! floor on non-x86 targets; on x86 the explicit nibble-shuffle tiers in
//! [`x86`](super::x86) are several times faster still.

/// Byte lanes processed per step: two SSE2 vectors' worth, enough for the
/// autovectorizer to keep multiple independent chains in flight.
const LANES: usize = 32;

/// Lanewise `x ← 2·x` in GF(2⁸).
#[inline(always)]
fn double_bytes(x: &mut [u8; LANES]) {
    for b in x.iter_mut() {
        // ((b as i8) >> 7) is 0x00 or 0xFF per lane; reduce overflowing
        // lanes by the primitive polynomial's low byte 0x1D.
        let carry = (((*b as i8) >> 7) as u8) & 0x1D;
        *b = (*b << 1) ^ carry;
    }
}

/// Lanewise `acc ^= c·x`, destroying `x`.
#[inline(always)]
fn mul_acc_bytes(acc: &mut [u8; LANES], mut x: [u8; LANES], c: u8) {
    let mut cc = c;
    while cc != 0 {
        if cc & 1 == 1 {
            for i in 0..LANES {
                acc[i] ^= x[i];
            }
        }
        cc >>= 1;
        if cc != 0 {
            double_bytes(&mut x);
        }
    }
}

#[inline(always)]
fn load(bytes: &[u8]) -> [u8; LANES] {
    bytes.try_into().expect("LANES-byte chunk")
}

pub(crate) fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    let mid = dst.len() - dst.len() % LANES;
    let (dh, dt) = dst.split_at_mut(mid);
    let (sh, st) = src.split_at(mid);
    for (d, s) in dh.chunks_exact_mut(LANES).zip(sh.chunks_exact(LANES)) {
        let mut acc = load(d);
        mul_acc_bytes(&mut acc, load(s), c);
        d.copy_from_slice(&acc);
    }
    super::scalar::mul_add_assign(dt, c, st);
}

pub(crate) fn mul_assign(dst: &mut [u8], c: u8) {
    let mid = dst.len() - dst.len() % LANES;
    let (dh, dt) = dst.split_at_mut(mid);
    for d in dh.chunks_exact_mut(LANES) {
        let mut acc = [0u8; LANES];
        mul_acc_bytes(&mut acc, load(d), c);
        d.copy_from_slice(&acc);
    }
    super::scalar::mul_assign(dt, c);
}

pub(crate) fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let mid = out.len() - out.len() % LANES;
    let (oh, ot) = out.split_at_mut(mid);
    let (ah, at) = a.split_at(mid);
    let (bh, bt) = b.split_at(mid);
    for ((o, x), y) in oh
        .chunks_exact_mut(LANES)
        .zip(ah.chunks_exact(LANES))
        .zip(bh.chunks_exact(LANES))
    {
        let mut s = load(x);
        let yl = load(y);
        for i in 0..LANES {
            s[i] ^= yl[i];
        }
        let mut acc = [0u8; LANES];
        mul_acc_bytes(&mut acc, s, c);
        o.copy_from_slice(&acc);
    }
    super::scalar::delta_into(ot, c, at, bt);
}

// ---- GF(2¹⁶): shift-and-add over u16 lanes ----
//
// Same structure as the byte tier, but each lane is a little-endian u16
// word and lanewise doubling reduces by the primitive polynomial's low 16
// bits, 0x100B. The arithmetic-shift carry trick is identical — LLVM
// lowers the [u16; 16] loop to 64-bit (or wider) vector shift/XOR ops over
// the lo/hi byte planes of the loaded words — so this stays the portable
// fast floor for wide codes on targets without PSHUFB.

/// `u16` lanes processed per step: 32 bytes, matching the byte tier.
const LANES16: usize = 16;

/// Lanewise `x ← 2·x` in GF(2¹⁶).
#[inline(always)]
fn double_words(x: &mut [u16; LANES16]) {
    for w in x.iter_mut() {
        // ((w as i16) >> 15) is 0x0000 or 0xFFFF per lane; reduce
        // overflowing lanes by the primitive polynomial's low half 0x100B.
        let carry = (((*w as i16) >> 15) as u16) & 0x100B;
        *w = (*w << 1) ^ carry;
    }
}

/// Lanewise `acc ^= c·x`, destroying `x`.
#[inline(always)]
fn mul_acc_words(acc: &mut [u16; LANES16], mut x: [u16; LANES16], c: u16) {
    let mut cc = c;
    while cc != 0 {
        if cc & 1 == 1 {
            for i in 0..LANES16 {
                acc[i] ^= x[i];
            }
        }
        cc >>= 1;
        if cc != 0 {
            double_words(&mut x);
        }
    }
}

#[inline(always)]
fn load16(bytes: &[u8]) -> [u16; LANES16] {
    let mut out = [0u16; LANES16];
    for (o, ch) in out.iter_mut().zip(bytes.chunks_exact(2)) {
        *o = u16::from_le_bytes([ch[0], ch[1]]);
    }
    out
}

#[inline(always)]
fn store16(bytes: &mut [u8], w: &[u16; LANES16]) {
    for (ch, v) in bytes.chunks_exact_mut(2).zip(w) {
        ch.copy_from_slice(&v.to_le_bytes());
    }
}

const STEP16: usize = 2 * LANES16;

pub(crate) fn mul_add_assign16(dst: &mut [u8], c: u16, t: &super::Split16, src: &[u8]) {
    let mid = dst.len() - dst.len() % STEP16;
    let (dh, dt) = dst.split_at_mut(mid);
    let (sh, st) = src.split_at(mid);
    for (d, s) in dh.chunks_exact_mut(STEP16).zip(sh.chunks_exact(STEP16)) {
        let mut acc = load16(d);
        mul_acc_words(&mut acc, load16(s), c);
        store16(d, &acc);
    }
    super::scalar::mul_add_assign16(dt, t, st);
}

pub(crate) fn mul_assign16(dst: &mut [u8], c: u16, t: &super::Split16) {
    let mid = dst.len() - dst.len() % STEP16;
    let (dh, dt) = dst.split_at_mut(mid);
    for d in dh.chunks_exact_mut(STEP16) {
        let mut acc = [0u16; LANES16];
        mul_acc_words(&mut acc, load16(d), c);
        store16(d, &acc);
    }
    super::scalar::mul_assign16(dt, t);
}

pub(crate) fn delta_into16(out: &mut [u8], c: u16, t: &super::Split16, a: &[u8], b: &[u8]) {
    let mid = out.len() - out.len() % STEP16;
    let (oh, ot) = out.split_at_mut(mid);
    let (ah, at) = a.split_at(mid);
    let (bh, bt) = b.split_at(mid);
    for ((o, x), y) in oh
        .chunks_exact_mut(STEP16)
        .zip(ah.chunks_exact(STEP16))
        .zip(bh.chunks_exact(STEP16))
    {
        let mut s = load16(x);
        let yl = load16(y);
        for i in 0..LANES16 {
            s[i] ^= yl[i];
        }
        let mut acc = [0u16; LANES16];
        mul_acc_words(&mut acc, s, c);
        store16(o, &acc);
    }
    super::scalar::delta_into16(ot, t, at, bt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;

    #[test]
    fn lanewise_double_matches_scalar_double() {
        for x in 0..=255u8 {
            let mut lanes = [0u8; LANES];
            for (i, l) in lanes.iter_mut().enumerate() {
                *l = x.wrapping_add((i as u8).wrapping_mul(37));
            }
            let orig = lanes;
            double_bytes(&mut lanes);
            for i in 0..LANES {
                assert_eq!(lanes[i], textbook::mul(2, orig[i]), "lane {i} of {x:#x}");
            }
        }
    }

    #[test]
    fn lanewise_mul_matches_scalar_mul() {
        for c in [0u8, 1, 2, 3, 0x1d, 0x80, 0xff] {
            for x in 0..=255u8 {
                let mut lanes = [0u8; LANES];
                for (i, l) in lanes.iter_mut().enumerate() {
                    *l = x.wrapping_add((i as u8).wrapping_mul(37));
                }
                let mut acc = [0u8; LANES];
                mul_acc_bytes(&mut acc, lanes, c);
                for i in 0..LANES {
                    assert_eq!(acc[i], textbook::mul(c, lanes[i]), "c={c:#x} lane {i}");
                }
            }
        }
    }

    #[test]
    fn lanewise_double16_matches_field_double() {
        use crate::Gf65536;
        for x in [0u16, 1, 0x7FFF, 0x8000, 0x8001, 0xABCD, 0xFFFF] {
            let mut lanes = [0u16; LANES16];
            for (i, l) in lanes.iter_mut().enumerate() {
                *l = x.wrapping_add((i as u16).wrapping_mul(0x1357));
            }
            let orig = lanes;
            double_words(&mut lanes);
            for i in 0..LANES16 {
                assert_eq!(lanes[i], Gf65536::mul_raw(2, orig[i]), "lane {i} of {x:#x}");
            }
        }
    }

    #[test]
    fn lanewise_mul16_matches_field_mul() {
        use crate::Gf65536;
        for c in [0u16, 1, 2, 3, 0x100B, 0x8000, 0xFFFF] {
            for x in [0u16, 1, 0x00FF, 0x0F0F, 0x8000, 0xBEEF, 0xFFFF] {
                let mut lanes = [0u16; LANES16];
                for (i, l) in lanes.iter_mut().enumerate() {
                    *l = x.wrapping_add((i as u16).wrapping_mul(0x2489));
                }
                let mut acc = [0u16; LANES16];
                mul_acc_words(&mut acc, lanes, c);
                for i in 0..LANES16 {
                    assert_eq!(acc[i], Gf65536::mul_raw(c, lanes[i]), "c={c:#x} lane {i}");
                }
            }
        }
    }
}
