//! x86-64 SIMD tier: split-nibble product tables applied with byte shuffles.
//!
//! A GF(2⁸) multiply by a fixed `c` is linear over XOR, so
//! `c·x = c·(x & 0x0F) ⊕ c·(x & 0xF0)`: two 16-entry lookups. PSHUFB
//! (`_mm_shuffle_epi8`) performs sixteen such lookups at once — the standard
//! technique from Plank et al., "Screaming Fast Galois Field Arithmetic
//! Using Intel SIMD Instructions" (FAST'13) and ISA-L. The AVX2 variant
//! doubles the width by broadcasting each 16-entry table into both 128-bit
//! lanes (PSHUFB never crosses lanes, so the lane copies behave like two
//! independent SSSE3 units).
//!
//! This is the **only** module in the crate allowed to use `unsafe`: raw
//! loads/stores and `#[target_feature]` calls. Safety rests on two
//! invariants, both enforced by the safe wrappers below:
//!
//! 1. every pointer dereference stays inside the bounds of the argument
//!    slices (the loops advance in exact step-width multiples and delegate
//!    ragged tails to safe scalar code);
//! 2. a `#[target_feature]` kernel is only reached through the dispatcher
//!    after `is_x86_feature_detected!` confirmed the feature (debug-asserted
//!    again here).
#![allow(unsafe_code)]

use super::NIB_TABLES;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

// ---- SSSE3: 16 bytes per step ----

pub(crate) fn mul_add_assign_ssse3(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: dispatcher (or the debug_assert above) has verified SSSE3.
    unsafe { mul_add_ssse3_impl(dst, c, src) }
}

pub(crate) fn mul_assign_ssse3(dst: &mut [u8], c: u8) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { mul_ssse3_impl(dst, c) }
}

pub(crate) fn delta_into_ssse3(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { delta_ssse3_impl(out, c, a, b) }
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3_impl(dst: &mut [u8], c: u8, src: &[u8]) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: NIB_TABLES rows are 32 bytes: lo table at +0, hi at +16.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = dst.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= len for both slices (equal lengths checked
        // by the public entry point); unaligned load/store intrinsics.
        unsafe {
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let prod = _mm_xor_si128(lo, hi);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, prod));
        }
        i += 16;
    }
    super::small_mul_add(&mut dst[n..], c, &src[n..]);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3_impl(dst: &mut [u8], c: u8) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: see mul_add_ssse3_impl.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = dst.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= dst.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(d, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(lo, hi));
        }
        i += 16;
    }
    super::small_mul(&mut dst[n..], c);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "ssse3")]
unsafe fn delta_ssse3_impl(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: see mul_add_ssse3_impl.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = out.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= len of all three equal-length slices.
        unsafe {
            let x = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let y = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let s = _mm_xor_si128(x, y);
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm_xor_si128(lo, hi));
        }
        i += 16;
    }
    super::small_delta(&mut out[n..], c, &a[n..], &b[n..]);
}

// ---- AVX2: 32 bytes per step ----

pub(crate) fn mul_add_assign_avx2(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: dispatcher (or the debug_assert above) has verified AVX2.
    unsafe { mul_add_avx2_impl(dst, c, src) }
}

pub(crate) fn mul_assign_avx2(dst: &mut [u8], c: u8) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { mul_avx2_impl(dst, c) }
}

pub(crate) fn delta_into_avx2(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { delta_avx2_impl(out, c, a, b) }
}

// SAFETY: caller must ensure AVX2 is available; the loads stay inside the
// 32-byte NIB_TABLES row.
#[target_feature(enable = "avx2")]
unsafe fn load_nib_tables_avx2(c: u8) -> (__m256i, __m256i) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: rows are 32 bytes; broadcast copies the 16-entry table into
    // both 128-bit lanes because VPSHUFB indexes within its own lane only.
    unsafe {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().add(16).cast()));
        (tlo, thi)
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2_impl(dst: &mut [u8], c: u8, src: &[u8]) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len for both equal-length slices.
        unsafe {
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let prod = _mm256_xor_si256(lo, hi);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, prod));
        }
        i += 32;
    }
    if n < dst.len() {
        mul_add_assign_ssse3(&mut dst[n..], c, &src[n..]);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2_impl(dst: &mut [u8], c: u8) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= dst.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(d, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(d, 4), mask));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(lo, hi));
        }
        i += 32;
    }
    if n < dst.len() {
        mul_assign_ssse3(&mut dst[n..], c);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "avx2")]
unsafe fn delta_avx2_impl(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = out.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len of all three equal-length slices.
        unsafe {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let s = _mm256_xor_si256(x, y);
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_xor_si256(lo, hi));
        }
        i += 32;
    }
    if n < out.len() {
        delta_into_ssse3(&mut out[n..], c, &a[n..], &b[n..]);
    }
}
