//! x86-64 SIMD tier: split-nibble product tables applied with byte shuffles.
//!
//! A GF(2⁸) multiply by a fixed `c` is linear over XOR, so
//! `c·x = c·(x & 0x0F) ⊕ c·(x & 0xF0)`: two 16-entry lookups. PSHUFB
//! (`_mm_shuffle_epi8`) performs sixteen such lookups at once — the standard
//! technique from Plank et al., "Screaming Fast Galois Field Arithmetic
//! Using Intel SIMD Instructions" (FAST'13) and ISA-L. The AVX2 variant
//! doubles the width by broadcasting each 16-entry table into both 128-bit
//! lanes (PSHUFB never crosses lanes, so the lane copies behave like two
//! independent SSSE3 units).
//!
//! This is the **only** module in the crate allowed to use `unsafe`: raw
//! loads/stores and `#[target_feature]` calls. Safety rests on two
//! invariants, both enforced by the safe wrappers below:
//!
//! 1. every pointer dereference stays inside the bounds of the argument
//!    slices (the loops advance in exact step-width multiples and delegate
//!    ragged tails to safe scalar code);
//! 2. a `#[target_feature]` kernel is only reached through the dispatcher
//!    after `is_x86_feature_detected!` confirmed the feature (debug-asserted
//!    again here).
#![allow(unsafe_code)]

use super::{Split16, NIB_TABLES};

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

// ---- SSSE3: 16 bytes per step ----

pub(crate) fn mul_add_assign_ssse3(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: dispatcher (or the debug_assert above) has verified SSSE3.
    unsafe { mul_add_ssse3_impl(dst, c, src) }
}

pub(crate) fn mul_assign_ssse3(dst: &mut [u8], c: u8) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { mul_ssse3_impl(dst, c) }
}

pub(crate) fn delta_into_ssse3(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { delta_ssse3_impl(out, c, a, b) }
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3_impl(dst: &mut [u8], c: u8, src: &[u8]) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: NIB_TABLES rows are 32 bytes: lo table at +0, hi at +16.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = dst.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= len for both slices (equal lengths checked
        // by the public entry point); unaligned load/store intrinsics.
        unsafe {
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let prod = _mm_xor_si128(lo, hi);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, prod));
        }
        i += 16;
    }
    super::small_mul_add(&mut dst[n..], c, &src[n..]);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3_impl(dst: &mut [u8], c: u8) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: see mul_add_ssse3_impl.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = dst.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= dst.len().
        unsafe {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(d, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(lo, hi));
        }
        i += 16;
    }
    super::small_mul(&mut dst[n..], c);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "ssse3")]
unsafe fn delta_ssse3_impl(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: see mul_add_ssse3_impl.
    let (tlo, thi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr().cast()),
            _mm_loadu_si128(nib.as_ptr().add(16).cast()),
        )
    };
    let mask = _mm_set1_epi8(0x0f);
    let n = out.len() / 16 * 16;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= len of all three equal-length slices.
        unsafe {
            let x = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let y = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let s = _mm_xor_si128(x, y);
            let lo = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
            let hi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm_xor_si128(lo, hi));
        }
        i += 16;
    }
    super::small_delta(&mut out[n..], c, &a[n..], &b[n..]);
}

// ---- AVX2: 32 bytes per step ----

pub(crate) fn mul_add_assign_avx2(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: dispatcher (or the debug_assert above) has verified AVX2.
    unsafe { mul_add_avx2_impl(dst, c, src) }
}

pub(crate) fn mul_assign_avx2(dst: &mut [u8], c: u8) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { mul_avx2_impl(dst, c) }
}

pub(crate) fn delta_into_avx2(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { delta_avx2_impl(out, c, a, b) }
}

// SAFETY: caller must ensure AVX2 is available; the loads stay inside the
// 32-byte NIB_TABLES row.
#[target_feature(enable = "avx2")]
unsafe fn load_nib_tables_avx2(c: u8) -> (__m256i, __m256i) {
    let nib = &NIB_TABLES[c as usize];
    // SAFETY: rows are 32 bytes; broadcast copies the 16-entry table into
    // both 128-bit lanes because VPSHUFB indexes within its own lane only.
    unsafe {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().add(16).cast()));
        (tlo, thi)
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2_impl(dst: &mut [u8], c: u8, src: &[u8]) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len for both equal-length slices.
        unsafe {
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let prod = _mm256_xor_si256(lo, hi);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, prod));
        }
        i += 32;
    }
    if n < dst.len() {
        mul_add_assign_ssse3(&mut dst[n..], c, &src[n..]);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2_impl(dst: &mut [u8], c: u8) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= dst.len().
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(d, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(d, 4), mask));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(lo, hi));
        }
        i += 32;
    }
    if n < dst.len() {
        mul_assign_ssse3(&mut dst[n..], c);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "avx2")]
unsafe fn delta_avx2_impl(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callee's only
    // requirement.
    let (tlo, thi) = unsafe { load_nib_tables_avx2(c) };
    let mask = _mm256_set1_epi8(0x0f);
    let n = out.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len of all three equal-length slices.
        unsafe {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let s = _mm256_xor_si256(x, y);
            let lo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_xor_si256(lo, hi));
        }
        i += 32;
    }
    if n < out.len() {
        delta_into_ssse3(&mut out[n..], c, &a[n..], &b[n..]);
    }
}

// ---- GF(2¹⁶): split-nibble tables over the lo/hi byte planes ----
//
// A 16-bit symbol has four nibbles; `c·x` is the XOR of four 16-entry
// lookups (see `Split16`). Each lookup yields a 16-bit partial product, so
// the tables are kept as separate low-byte and high-byte planes — eight
// PSHUFB registers total. Per step the interleaved little-endian words are
// **deinterleaved** into a lo-byte vector and a hi-byte vector with
// PACKUSWB (the 16-bit lanes hold 0..255, so saturation never triggers),
// the eight shuffles run on the four nibble vectors, and PUNPCKLBW/HBW
// re-interleave the product planes — an exact inverse of the pack because
// both operate lane-locally. Ragged tails (fewer than a full step of
// words) fall back to the scalar 16-bit tier with the same tables.

// ---- SSSE3: 32 bytes (16 words) per step ----

pub(crate) fn mul_add_assign16_ssse3(dst: &mut [u8], t: &Split16, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: dispatcher (or the debug_assert above) has verified SSSE3.
    unsafe { mul_add16_ssse3_impl(dst, t, src) }
}

pub(crate) fn mul_assign16_ssse3(dst: &mut [u8], t: &Split16) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { mul16_ssse3_impl(dst, t) }
}

pub(crate) fn delta_into16_ssse3(out: &mut [u8], t: &Split16, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as above.
    unsafe { delta16_ssse3_impl(out, t, a, b) }
}

// SAFETY: caller must ensure SSSE3 is available; the loads stay inside the
// 16-byte rows of the Split16 byte planes.
#[target_feature(enable = "ssse3")]
unsafe fn load_tables16_sse(t: &Split16) -> ([__m128i; 4], [__m128i; 4]) {
    let mut tl = [_mm_setzero_si128(); 4];
    let mut th = [_mm_setzero_si128(); 4];
    for ((tlk, thk), (lok, hik)) in tl.iter_mut().zip(&mut th).zip(t.lo.iter().zip(&t.hi)) {
        // SAFETY: `lo[k]`/`hi[k]` are [u8; 16] — exactly one 128-bit load.
        unsafe {
            *tlk = _mm_loadu_si128(lok.as_ptr().cast());
            *thk = _mm_loadu_si128(hik.as_ptr().cast());
        }
    }
    (tl, th)
}

// SAFETY: caller must ensure SSSE3 is available; no memory is dereferenced
// (register-only arithmetic on the two loaded word vectors).
#[target_feature(enable = "ssse3")]
unsafe fn split_nibbles16_sse(v0: __m128i, v1: __m128i) -> [__m128i; 4] {
    let mask = _mm_set1_epi8(0x0f);
    let m00ff = _mm_set1_epi16(0x00ff);
    // Deinterleave the LE words into byte planes: lanes hold 0..255, so
    // the unsigned-saturating pack is exact.
    let lo = _mm_packus_epi16(_mm_and_si128(v0, m00ff), _mm_and_si128(v1, m00ff));
    let hi = _mm_packus_epi16(_mm_srli_epi16(v0, 8), _mm_srli_epi16(v1, 8));
    [
        _mm_and_si128(lo, mask),
        _mm_and_si128(_mm_srli_epi64(lo, 4), mask),
        _mm_and_si128(hi, mask),
        _mm_and_si128(_mm_srli_epi64(hi, 4), mask),
    ]
}

// SAFETY: caller must ensure SSSE3 is available; no memory is dereferenced
// (register-only arithmetic on the four nibble vectors).
#[target_feature(enable = "ssse3")]
unsafe fn product16_from_nibbles_sse(
    tl: &[__m128i; 4],
    th: &[__m128i; 4],
    nib: &[__m128i; 4],
) -> (__m128i, __m128i) {
    let rlo = _mm_xor_si128(
        _mm_xor_si128(_mm_shuffle_epi8(tl[0], nib[0]), _mm_shuffle_epi8(tl[1], nib[1])),
        _mm_xor_si128(_mm_shuffle_epi8(tl[2], nib[2]), _mm_shuffle_epi8(tl[3], nib[3])),
    );
    let rhi = _mm_xor_si128(
        _mm_xor_si128(_mm_shuffle_epi8(th[0], nib[0]), _mm_shuffle_epi8(th[1], nib[1])),
        _mm_xor_si128(_mm_shuffle_epi8(th[2], nib[2]), _mm_shuffle_epi8(th[3], nib[3])),
    );
    // Re-interleave the product planes; unpack is the exact lane-local
    // inverse of the pack in `split_nibbles16_sse`, restoring word order.
    (_mm_unpacklo_epi8(rlo, rhi), _mm_unpackhi_epi8(rlo, rhi))
}

// SAFETY: caller must ensure SSSE3 is available; no memory is dereferenced
// (register-only arithmetic on the two loaded word vectors).
#[target_feature(enable = "ssse3")]
unsafe fn product16_sse(
    tl: &[__m128i; 4],
    th: &[__m128i; 4],
    v0: __m128i,
    v1: __m128i,
) -> (__m128i, __m128i) {
    // SAFETY: this fn's SSSE3 target-feature satisfies the callees' only
    // requirement.
    unsafe {
        let nib = split_nibbles16_sse(v0, v1);
        product16_from_nibbles_sse(tl, th, &nib)
    }
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul_add16_ssse3_impl(dst: &mut [u8], t: &Split16, src: &[u8]) {
    // SAFETY: this fn's SSSE3 target-feature satisfies the callees' only
    // requirement.
    let (tl, th) = unsafe { load_tables16_sse(t) };
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len of both equal-length slices.
        unsafe {
            let v0 = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v1 = _mm_loadu_si128(src.as_ptr().add(i + 16).cast());
            let (p0, p1) = product16_sse(&tl, &th, v0, v1);
            let d0 = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let d1 = _mm_loadu_si128(dst.as_ptr().add(i + 16).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d0, p0));
            _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), _mm_xor_si128(d1, p1));
        }
        i += 32;
    }
    super::scalar::mul_add_assign16(&mut dst[n..], t, &src[n..]);
}

pub(crate) fn mul_add_pair16_ssse3(
    d0: &mut [u8],
    t0: &Split16,
    d1: &mut [u8],
    t1: &Split16,
    src: &[u8],
) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: dispatcher (or the debug_assert above) has verified SSSE3.
    unsafe { mul_add_pair16_ssse3_impl(d0, t0, d1, t1, src) }
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrapper above
// checks it); every dereference below stays inside the equal-length
// `d0`/`d1`/`src` slices.
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_pair16_ssse3_impl(
    d0: &mut [u8],
    t0: &Split16,
    d1: &mut [u8],
    t1: &Split16,
    src: &[u8],
) {
    // Two destination rows share one source walk: the deinterleave and
    // nibble extraction of each 32-byte chunk runs once, then each row
    // applies its own tables — the dominant shuffle work — to the shared
    // nibbles. Cuts both the shuffle-port traffic and the source reads of
    // a p=2 encode versus two independent passes.
    // SAFETY: this fn's SSSE3 target-feature satisfies the callees' only requirement.
    let ((tl0, th0), (tl1, th1)) = unsafe { (load_tables16_sse(t0), load_tables16_sse(t1)) };
    let n = src.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len of the three equal-length slices.
        unsafe {
            let v0 = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let v1 = _mm_loadu_si128(src.as_ptr().add(i + 16).cast());
            let nib = split_nibbles16_sse(v0, v1);
            let (p0, p1) = product16_from_nibbles_sse(&tl0, &th0, &nib);
            let a0 = _mm_loadu_si128(d0.as_ptr().add(i).cast());
            let a1 = _mm_loadu_si128(d0.as_ptr().add(i + 16).cast());
            _mm_storeu_si128(d0.as_mut_ptr().add(i).cast(), _mm_xor_si128(a0, p0));
            _mm_storeu_si128(d0.as_mut_ptr().add(i + 16).cast(), _mm_xor_si128(a1, p1));
            let (q0, q1) = product16_from_nibbles_sse(&tl1, &th1, &nib);
            let b0 = _mm_loadu_si128(d1.as_ptr().add(i).cast());
            let b1 = _mm_loadu_si128(d1.as_ptr().add(i + 16).cast());
            _mm_storeu_si128(d1.as_mut_ptr().add(i).cast(), _mm_xor_si128(b0, q0));
            _mm_storeu_si128(d1.as_mut_ptr().add(i + 16).cast(), _mm_xor_si128(b1, q1));
        }
        i += 32;
    }
    super::scalar::mul_add_assign16(&mut d0[n..], t0, &src[n..]);
    super::scalar::mul_add_assign16(&mut d1[n..], t1, &src[n..]);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "ssse3")]
unsafe fn mul16_ssse3_impl(dst: &mut [u8], t: &Split16) {
    // SAFETY: see mul_add16_ssse3_impl.
    let (tl, th) = unsafe { load_tables16_sse(t) };
    let n = dst.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= dst.len().
        unsafe {
            let v0 = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let v1 = _mm_loadu_si128(dst.as_ptr().add(i + 16).cast());
            let (p0, p1) = product16_sse(&tl, &th, v0, v1);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), p0);
            _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), p1);
        }
        i += 32;
    }
    super::scalar::mul_assign16(&mut dst[n..], t);
}

// SAFETY: caller must ensure SSSE3 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "ssse3")]
unsafe fn delta16_ssse3_impl(out: &mut [u8], t: &Split16, a: &[u8], b: &[u8]) {
    // SAFETY: see mul_add16_ssse3_impl.
    let (tl, th) = unsafe { load_tables16_sse(t) };
    let n = out.len() / 32 * 32;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= len of all three equal-length slices.
        unsafe {
            let x0 = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let x1 = _mm_loadu_si128(a.as_ptr().add(i + 16).cast());
            let y0 = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let y1 = _mm_loadu_si128(b.as_ptr().add(i + 16).cast());
            let (p0, p1) =
                product16_sse(&tl, &th, _mm_xor_si128(x0, y0), _mm_xor_si128(x1, y1));
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), p0);
            _mm_storeu_si128(out.as_mut_ptr().add(i + 16).cast(), p1);
        }
        i += 32;
    }
    super::scalar::delta_into16(&mut out[n..], t, &a[n..], &b[n..]);
}

// ---- AVX2: 64 bytes (32 words) per step ----

pub(crate) fn mul_add_assign16_avx2(dst: &mut [u8], t: &Split16, src: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: dispatcher (or the debug_assert above) has verified AVX2.
    unsafe { mul_add16_avx2_impl(dst, t, src) }
}

pub(crate) fn mul_assign16_avx2(dst: &mut [u8], t: &Split16) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { mul16_avx2_impl(dst, t) }
}

pub(crate) fn delta_into16_avx2(out: &mut [u8], t: &Split16, a: &[u8], b: &[u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as above.
    unsafe { delta16_avx2_impl(out, t, a, b) }
}

// SAFETY: caller must ensure AVX2 is available; the loads stay inside the
// 16-byte rows of the Split16 byte planes.
#[target_feature(enable = "avx2")]
unsafe fn load_tables16_avx2(t: &Split16) -> ([__m256i; 4], [__m256i; 4]) {
    let mut tl = [_mm256_setzero_si256(); 4];
    let mut th = [_mm256_setzero_si256(); 4];
    for ((tlk, thk), (lok, hik)) in tl.iter_mut().zip(&mut th).zip(t.lo.iter().zip(&t.hi)) {
        // SAFETY: `lo[k]`/`hi[k]` are [u8; 16]; broadcast copies each
        // 16-entry table into both 128-bit lanes because VPSHUFB indexes
        // within its own lane only.
        unsafe {
            *tlk = _mm256_broadcastsi128_si256(_mm_loadu_si128(lok.as_ptr().cast()));
            *thk = _mm256_broadcastsi128_si256(_mm_loadu_si128(hik.as_ptr().cast()));
        }
    }
    (tl, th)
}

// SAFETY: caller must ensure AVX2 is available; no memory is dereferenced
// (register-only arithmetic on the two loaded word vectors).
#[target_feature(enable = "avx2")]
unsafe fn split_nibbles16_avx2(v0: __m256i, v1: __m256i) -> [__m256i; 4] {
    let mask = _mm256_set1_epi8(0x0f);
    let m00ff = _mm256_set1_epi16(0x00ff);
    let lo = _mm256_packus_epi16(_mm256_and_si256(v0, m00ff), _mm256_and_si256(v1, m00ff));
    let hi = _mm256_packus_epi16(_mm256_srli_epi16(v0, 8), _mm256_srli_epi16(v1, 8));
    [
        _mm256_and_si256(lo, mask),
        _mm256_and_si256(_mm256_srli_epi64(lo, 4), mask),
        _mm256_and_si256(hi, mask),
        _mm256_and_si256(_mm256_srli_epi64(hi, 4), mask),
    ]
}

// SAFETY: caller must ensure AVX2 is available; no memory is dereferenced
// (register-only arithmetic). VPACKUSWB/VPUNPCK{L,H}BW operate per
// 128-bit lane, so the final unpack exactly inverts the pack lane by lane
// and word order is preserved end to end.
#[target_feature(enable = "avx2")]
unsafe fn product16_from_nibbles_avx2(
    tl: &[__m256i; 4],
    th: &[__m256i; 4],
    nib: &[__m256i; 4],
) -> (__m256i, __m256i) {
    let rlo = _mm256_xor_si256(
        _mm256_xor_si256(
            _mm256_shuffle_epi8(tl[0], nib[0]),
            _mm256_shuffle_epi8(tl[1], nib[1]),
        ),
        _mm256_xor_si256(
            _mm256_shuffle_epi8(tl[2], nib[2]),
            _mm256_shuffle_epi8(tl[3], nib[3]),
        ),
    );
    let rhi = _mm256_xor_si256(
        _mm256_xor_si256(
            _mm256_shuffle_epi8(th[0], nib[0]),
            _mm256_shuffle_epi8(th[1], nib[1]),
        ),
        _mm256_xor_si256(
            _mm256_shuffle_epi8(th[2], nib[2]),
            _mm256_shuffle_epi8(th[3], nib[3]),
        ),
    );
    (_mm256_unpacklo_epi8(rlo, rhi), _mm256_unpackhi_epi8(rlo, rhi))
}

// SAFETY: caller must ensure AVX2 is available; no memory is dereferenced
// (register-only arithmetic on the two loaded word vectors).
#[target_feature(enable = "avx2")]
unsafe fn product16_avx2(
    tl: &[__m256i; 4],
    th: &[__m256i; 4],
    v0: __m256i,
    v1: __m256i,
) -> (__m256i, __m256i) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callees' only
    // requirement.
    unsafe {
        let nib = split_nibbles16_avx2(v0, v1);
        product16_from_nibbles_avx2(tl, th, &nib)
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst`/`src` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul_add16_avx2_impl(dst: &mut [u8], t: &Split16, src: &[u8]) {
    // SAFETY: this fn's AVX2 target-feature satisfies the callees' only
    // requirement.
    let (tl, th) = unsafe { load_tables16_avx2(t) };
    let n = dst.len() / 64 * 64;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 64 <= n <= len of both equal-length slices.
        unsafe {
            let v0 = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v1 = _mm256_loadu_si256(src.as_ptr().add(i + 32).cast());
            let (p0, p1) = product16_avx2(&tl, &th, v0, v1);
            let d0 = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let d1 = _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d0, p0));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(d1, p1));
        }
        i += 64;
    }
    if n < dst.len() {
        mul_add_assign16_ssse3(&mut dst[n..], t, &src[n..]);
    }
}

pub(crate) fn mul_add_pair16_avx2(
    d0: &mut [u8],
    t0: &Split16,
    d1: &mut [u8],
    t1: &Split16,
    src: &[u8],
) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: dispatcher (or the debug_assert above) has verified AVX2.
    unsafe { mul_add_pair16_avx2_impl(d0, t0, d1, t1, src) }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrapper above
// checks it); every dereference below stays inside the equal-length
// `d0`/`d1`/`src` slices.
#[target_feature(enable = "avx2")]
unsafe fn mul_add_pair16_avx2_impl(
    d0: &mut [u8],
    t0: &Split16,
    d1: &mut [u8],
    t1: &Split16,
    src: &[u8],
) {
    // Two destination rows share one source walk: each 64-byte chunk is
    // deinterleaved and nibble-split once, then both rows apply their own
    // tables to the shared nibbles — saving the pack/shift/mask prologue
    // and the second set of source loads that two independent passes pay.
    // SAFETY: this fn's AVX2 target-feature satisfies the callees' only requirement.
    let ((tl0, th0), (tl1, th1)) = unsafe { (load_tables16_avx2(t0), load_tables16_avx2(t1)) };
    let n = src.len() / 64 * 64;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 64 <= n <= len of the three equal-length slices.
        unsafe {
            let v0 = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let v1 = _mm256_loadu_si256(src.as_ptr().add(i + 32).cast());
            let nib = split_nibbles16_avx2(v0, v1);
            let (p0, p1) = product16_from_nibbles_avx2(&tl0, &th0, &nib);
            let a0 = _mm256_loadu_si256(d0.as_ptr().add(i).cast());
            let a1 = _mm256_loadu_si256(d0.as_ptr().add(i + 32).cast());
            _mm256_storeu_si256(d0.as_mut_ptr().add(i).cast(), _mm256_xor_si256(a0, p0));
            _mm256_storeu_si256(d0.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(a1, p1));
            let (q0, q1) = product16_from_nibbles_avx2(&tl1, &th1, &nib);
            let b0 = _mm256_loadu_si256(d1.as_ptr().add(i).cast());
            let b1 = _mm256_loadu_si256(d1.as_ptr().add(i + 32).cast());
            _mm256_storeu_si256(d1.as_mut_ptr().add(i).cast(), _mm256_xor_si256(b0, q0));
            _mm256_storeu_si256(d1.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(b1, q1));
        }
        i += 64;
    }
    if n < src.len() {
        mul_add_pair16_ssse3(&mut d0[n..], t0, &mut d1[n..], t1, &src[n..]);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference below stays inside `dst` bounds.
#[target_feature(enable = "avx2")]
unsafe fn mul16_avx2_impl(dst: &mut [u8], t: &Split16) {
    // SAFETY: see mul_add16_avx2_impl.
    let (tl, th) = unsafe { load_tables16_avx2(t) };
    let n = dst.len() / 64 * 64;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 64 <= n <= dst.len().
        unsafe {
            let v0 = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let v1 = _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast());
            let (p0, p1) = product16_avx2(&tl, &th, v0, v1);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), p0);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), p1);
        }
        i += 64;
    }
    if n < dst.len() {
        mul_assign16_ssse3(&mut dst[n..], t);
    }
}

// SAFETY: caller must ensure AVX2 is available (the safe wrappers above
// check it); every dereference stays inside the three equal-length slices.
#[target_feature(enable = "avx2")]
unsafe fn delta16_avx2_impl(out: &mut [u8], t: &Split16, a: &[u8], b: &[u8]) {
    // SAFETY: see mul_add16_avx2_impl.
    let (tl, th) = unsafe { load_tables16_avx2(t) };
    let n = out.len() / 64 * 64;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 64 <= n <= len of all three equal-length slices.
        unsafe {
            let x0 = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let x1 = _mm256_loadu_si256(a.as_ptr().add(i + 32).cast());
            let y0 = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let y1 = _mm256_loadu_si256(b.as_ptr().add(i + 32).cast());
            let (p0, p1) =
                product16_avx2(&tl, &th, _mm256_xor_si256(x0, y0), _mm256_xor_si256(x1, y1));
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), p0);
            _mm256_storeu_si256(out.as_mut_ptr().add(i + 32).cast(), p1);
        }
        i += 64;
    }
    if n < out.len() {
        delta_into16_ssse3(&mut out[n..], t, &a[n..], &b[n..]);
    }
}
