//! Tiered GF(2⁸) **and GF(2¹⁶)** bulk-multiply kernel engine.
//!
//! The protocol's hot path is `dst ^= c·src` over whole blocks (encode rows,
//! delta updates, decode back-substitution). This module provides that kernel
//! at four implementation tiers, selected **once** per process:
//!
//! | backend  | technique                                   | width      |
//! |----------|---------------------------------------------|------------|
//! | `scalar` | per-coefficient 256-entry product table     | 1 B/step   |
//! | `swar`   | branchless lanewise shift-add on `u64`      | 8 B/step   |
//! | `ssse3`  | split-nibble tables via `_mm_shuffle_epi8`  | 16 B/step  |
//! | `avx2`   | same tables via `_mm256_shuffle_epi8`       | 32 B/step  |
//!
//! All GF(2⁸) coefficient tables — the full 256-entry product table per
//! coefficient used by the scalar tier, and the 16+16-entry low/high-nibble
//! tables used by the SIMD tiers — are **generated at compile time** for all
//! 255 nontrivial coefficients ([`MUL_TABLES`], [`NIB_TABLES`]). No GF(2⁸)
//! kernel call ever builds a table at runtime; the old per-call
//! [`Gf256::build_mul_table`](crate::Gf256::build_mul_table) cost is gone
//! entirely.
//!
//! # The GF(2¹⁶) family
//!
//! Wide codes ([`Gf65536`](crate::Gf65536), stripes past 256 blocks) get the
//! same four tiers through the `*16` kernels ([`mul_add_assign16`],
//! [`mul_assign16`], [`delta_into16`], [`mul_add_multi16`]). Blocks stay
//! plain byte slices interpreted as **little-endian `u16` words**, so every
//! `*16` kernel requires even slice lengths (odd lengths panic here; the
//! erasure layer rejects them with a typed error first). Compile-time tables
//! are infeasible at 2¹⁶ coefficients, so each call decomposes its constant
//! `c` into four 4-bit × 16-bit partial-product tables ([`Split16`]) —
//! `c·n`, `c·(n<<4)`, `c·(n<<8)`, `c·(n<<12)` for `n` in `0..16` — built
//! once per call (64 log/exp multiplies) and amortized over the block; the
//! SIMD tiers consume the same tables split into low/high byte planes via
//! PSHUFB, the scalar tier reads the `u16` entries directly. Sub-step
//! ("odd") tails always fall back to the scalar 16-bit path, never to a
//! byte-field kernel.
//!
//! # Backend selection
//!
//! [`active_backend`] picks the widest backend the CPU supports (via
//! `is_x86_feature_detected!`) the first time any kernel runs, and caches the
//! choice in a `OnceLock`. The `GF_BACKEND` environment variable
//! (`scalar`|`swar`|`ssse3`|`avx2`) overrides detection — requesting a
//! backend the CPU cannot run panics at startup rather than faulting later.
//! Per-backend entry points (`*_with`) bypass dispatch for differential
//! testing and benchmarking.
//!
//! # Safety
//!
//! `unsafe` is confined to [`x86`] (raw SIMD intrinsics behind
//! `#[target_feature]`); every other module in this crate remains
//! `#![deny(unsafe_code)]`-clean, and the dispatcher guarantees an x86 kernel
//! is only ever invoked after the corresponding CPUID feature check.

use std::sync::OnceLock;

pub(crate) mod scalar;
pub(crate) mod swar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

use crate::gf256::{EXP, LOG};
use crate::gf65536::Gf65536;

/// Slices shorter than this skip table lookups entirely and multiply each
/// byte directly through the log/exp tables: for a handful of bytes the
/// 768-byte log/exp working set is cheaper to touch than a cold 256-byte
/// product-table row, and the SIMD setup (broadcasts, masks) never pays for
/// itself.
pub const SMALL_SLICE_LEN: usize = 16;

/// GF(2¹⁶) slices shorter than this (in bytes) skip the [`Split16`] build —
/// 64 log/exp multiplies — and multiply each `u16` word directly through
/// the GF(2¹⁶) log/exp tables instead. At 32 words the table build starts
/// paying for itself.
pub const SMALL_SLICE_LEN16: usize = 64;

const fn build_full_tables() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut c = 1usize;
    while c < 256 {
        let log_c = LOG[c] as usize;
        let mut x = 1usize;
        while x < 256 {
            t[c][x] = EXP[log_c + LOG[x] as usize];
            x += 1;
        }
        c += 1;
    }
    t
}

const fn build_nib_tables() -> [[u8; 32]; 256] {
    let mut t = [[0u8; 32]; 256];
    let mut c = 1usize;
    while c < 256 {
        let log_c = LOG[c] as usize;
        let mut n = 1usize;
        while n < 16 {
            // low-nibble products c·n and high-nibble products c·(n<<4);
            // byte product = lo ^ hi by linearity of · over XOR.
            t[c][n] = EXP[log_c + LOG[n] as usize];
            t[c][16 + n] = EXP[log_c + LOG[n << 4] as usize];
            n += 1;
        }
        c += 1;
    }
    t
}

/// `MUL_TABLES[c][x] = c·x` — full product tables for every coefficient,
/// generated at compile time (64 KiB of read-only data).
pub static MUL_TABLES: [[u8; 256]; 256] = build_full_tables();

/// `NIB_TABLES[c][0..16] = c·n`, `NIB_TABLES[c][16..32] = c·(n<<4)` — the
/// split-nibble tables consumed by PSHUFB-style SIMD kernels (8 KiB).
pub static NIB_TABLES: [[u8; 32]; 256] = build_nib_tables();

/// One implementation tier of the multiply kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Per-coefficient 256-entry table, one byte per step.
    Scalar,
    /// Portable branchless shift-add over `u64` lanes, 8 bytes per step.
    Swar,
    /// SSSE3 `_mm_shuffle_epi8` nibble tables, 16 bytes per step.
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    /// AVX2 `_mm256_shuffle_epi8` nibble tables, 32 bytes per step.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// The backend's `GF_BACKEND` name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => "ssse3",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a `GF_BACKEND` value. Unknown names return `None`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" | "table" => Some(Backend::Scalar),
            "swar" => Some(Backend::Swar),
            #[cfg(target_arch = "x86_64")]
            "ssse3" => Some(Backend::Ssse3),
            #[cfg(target_arch = "x86_64")]
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether this CPU can execute the backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        }
    }
}

/// Every backend this CPU supports, widest last.
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar, Backend::Swar];
    #[cfg(target_arch = "x86_64")]
    {
        if Backend::Ssse3.is_supported() {
            v.push(Backend::Ssse3);
        }
        if Backend::Avx2.is_supported() {
            v.push(Backend::Avx2);
        }
    }
    v
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

/// The backend used by the dispatching kernels, chosen once per process.
///
/// Honors `GF_BACKEND` (`scalar`|`swar`|`ssse3`|`avx2`) if set, otherwise
/// picks the widest supported tier.
///
/// # Panics
///
/// Panics on the first call if `GF_BACKEND` names an unknown backend or one
/// this CPU cannot execute — failing fast beats faulting in a SIMD kernel.
pub fn active_backend() -> Backend {
    *ACTIVE.get_or_init(|| match std::env::var("GF_BACKEND") {
        Ok(name) => {
            let b = Backend::from_name(&name)
                .unwrap_or_else(|| panic!("GF_BACKEND={name:?} is not a known backend"));
            assert!(
                b.is_supported(),
                "GF_BACKEND={name:?} is not supported by this CPU"
            );
            b
        }
        Err(_) => *available_backends().last().expect("scalar always present"),
    })
}

/// `dst[i] ^= c·src[i]` on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    mul_add_assign_with(active_backend(), dst, c, src);
}

/// `dst[i] ^= c·src[i]` on an explicit backend (differential tests, benches).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_assign_with(backend: Backend, dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_assign requires equal-length blocks"
    );
    match c {
        0 => {}
        1 => add_assign(dst, src),
        _ => {
            if dst.len() < SMALL_SLICE_LEN {
                return small_mul_add(dst, c, src);
            }
            match backend {
                Backend::Scalar => scalar::mul_add_assign(dst, c, src),
                Backend::Swar => swar::mul_add_assign(dst, c, src),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::mul_add_assign_ssse3(dst, c, src),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::mul_add_assign_avx2(dst, c, src),
            }
        }
    }
}

/// `dst[i] = c·dst[i]` on the active backend.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: u8) {
    mul_assign_with(active_backend(), dst, c);
}

/// `dst[i] = c·dst[i]` on an explicit backend.
pub fn mul_assign_with(backend: Backend, dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            if dst.len() < SMALL_SLICE_LEN {
                return small_mul(dst, c);
            }
            match backend {
                Backend::Scalar => scalar::mul_assign(dst, c),
                Backend::Swar => swar::mul_assign(dst, c),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::mul_assign_ssse3(dst, c),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::mul_assign_avx2(dst, c),
            }
        }
    }
}

/// `out[i] = c·(a[i] ^ b[i])` on the active backend — fused subtract-scale.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    delta_into_with(active_backend(), out, c, a, b);
}

/// `out[i] = c·(a[i] ^ b[i])` on an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn delta_into_with(backend: Backend, out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "delta_into requires equal-length blocks");
    assert_eq!(out.len(), a.len(), "delta_into requires equal-length blocks");
    match c {
        0 => out.fill(0),
        1 => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x ^ y;
            }
        }
        _ => {
            if out.len() < SMALL_SLICE_LEN {
                return small_delta(out, c, a, b);
            }
            match backend {
                Backend::Scalar => scalar::delta_into(out, c, a, b),
                Backend::Swar => swar::delta_into(out, c, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::delta_into_ssse3(out, c, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::delta_into_avx2(out, c, a, b),
            }
        }
    }
}

/// `dsts[j][i] ^= cs[j]·src[i]` for all rows `j` — the fused multi-
/// destination kernel behind full encode. Streams `src` once, tile by tile,
/// through all destination rows while the tile is hot in L1, instead of
/// re-reading `src` from L2/DRAM once per row.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, or any row length differs from
/// `src`.
#[inline]
pub fn mul_add_multi(dsts: &mut [&mut [u8]], cs: &[u8], src: &[u8]) {
    mul_add_multi_with(active_backend(), dsts, cs, src);
}

/// Tile size for [`mul_add_multi`]: comfortably inside a 32 KiB L1d next to
/// one destination tile and the lookup tables.
const MULTI_TILE: usize = 8 * 1024;

/// [`mul_add_multi`] on an explicit backend.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, or any row length differs from
/// `src`.
pub fn mul_add_multi_with(backend: Backend, dsts: &mut [&mut [u8]], cs: &[u8], src: &[u8]) {
    assert_eq!(
        dsts.len(),
        cs.len(),
        "mul_add_multi requires one coefficient per destination row"
    );
    for d in dsts.iter() {
        assert_eq!(
            d.len(),
            src.len(),
            "mul_add_multi requires equal-length blocks"
        );
    }
    let len = src.len();
    let mut start = 0;
    while start < len {
        let end = (start + MULTI_TILE).min(len);
        for (d, &c) in dsts.iter_mut().zip(cs) {
            mul_add_assign_with(backend, &mut d[start..end], c, &src[start..end]);
        }
        start = end;
    }
}

/// `dst[i] ^= src[i]` — plain XOR; backend-independent because LLVM already
/// vectorizes it optimally.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign requires equal-length blocks"
    );
    let mid = dst.len() - dst.len() % 8;
    let (dh, dt) = dst.split_at_mut(mid);
    let (sh, st) = src.split_at(mid);
    for (d, s) in dh.iter_mut().zip(sh) {
        *d ^= *s;
    }
    for (d, s) in dt.iter_mut().zip(st) {
        *d ^= *s;
    }
}

// ---- GF(2¹⁶) kernel family ----

/// The four 4-bit × 16-bit partial-product tables of one GF(2¹⁶) constant.
///
/// A 16-bit symbol splits into four nibbles, `x = n₀ ⊕ n₁·2⁴ ⊕ n₂·2⁸ ⊕
/// n₃·2¹²`, and multiplication by a fixed `c` is linear over XOR, so
/// `c·x = t₀[n₀] ⊕ t₁[n₁] ⊕ t₂[n₂] ⊕ t₃[n₃]` with `tᵢ[n] = c·(n·2⁴ⁱ)`.
/// Each table has 16 `u16` entries; [`Split16::new`] builds all four (64
/// log/exp multiplies), once per kernel call, amortized over the block —
/// compile-time tables are infeasible for 65 535 constants. The entries are
/// also kept pre-split into low/high **byte planes** so the PSHUFB tiers
/// can load them straight into shuffle registers.
#[derive(Clone, Copy)]
pub struct Split16 {
    /// `w[t][n] = c·(n << 4t)` as raw `u16`.
    pub(crate) w: [[u16; 16]; 4],
    /// Low byte of each `w` entry — the PSHUFB table for the result's
    /// low-byte plane.
    pub(crate) lo: [[u8; 16]; 4],
    /// High byte of each `w` entry — the table for the high-byte plane.
    pub(crate) hi: [[u8; 16]; 4],
}

impl Split16 {
    const ZERO: Split16 = Split16 {
        w: [[0; 16]; 4],
        lo: [[0; 16]; 4],
        hi: [[0; 16]; 4],
    };

    /// Builds the partial-product tables of `c`.
    pub fn new(c: u16) -> Split16 {
        let mut t = Split16::ZERO;
        for shift in 0..4 {
            for n in 1..16u16 {
                let p = Gf65536::mul_raw(c, n << (4 * shift));
                t.w[shift][n as usize] = p;
                t.lo[shift][n as usize] = p as u8;
                t.hi[shift][n as usize] = (p >> 8) as u8;
            }
        }
        t
    }
}

#[inline]
fn assert_even(len: usize) {
    assert!(
        len.is_multiple_of(2),
        "GF(2^16) kernels require even-length blocks (little-endian u16 words)"
    );
}

/// `dst ^= c·src` over little-endian `u16` words, on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths or an odd length.
#[inline]
pub fn mul_add_assign16(dst: &mut [u8], c: u16, src: &[u8]) {
    mul_add_assign16_with(active_backend(), dst, c, src);
}

/// [`mul_add_assign16`] on an explicit backend (differential tests, benches).
///
/// # Panics
///
/// Panics if the slices have different lengths or an odd length.
pub fn mul_add_assign16_with(backend: Backend, dst: &mut [u8], c: u16, src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_assign16 requires equal-length blocks"
    );
    assert_even(dst.len());
    match c {
        0 => {}
        1 => add_assign(dst, src),
        _ => {
            if dst.len() < SMALL_SLICE_LEN16 {
                return small_mul_add16(dst, c, src);
            }
            let t = Split16::new(c);
            mul_add16_tier(backend, dst, c, &t, src);
        }
    }
}

/// `dst = c·dst` over little-endian `u16` words, on the active backend.
///
/// # Panics
///
/// Panics on an odd slice length.
#[inline]
pub fn mul_assign16(dst: &mut [u8], c: u16) {
    mul_assign16_with(active_backend(), dst, c);
}

/// [`mul_assign16`] on an explicit backend.
///
/// # Panics
///
/// Panics on an odd slice length.
pub fn mul_assign16_with(backend: Backend, dst: &mut [u8], c: u16) {
    assert_even(dst.len());
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            if dst.len() < SMALL_SLICE_LEN16 {
                return small_mul16(dst, c);
            }
            let t = Split16::new(c);
            match backend {
                Backend::Scalar => scalar::mul_assign16(dst, &t),
                Backend::Swar => swar::mul_assign16(dst, c, &t),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::mul_assign16_ssse3(dst, &t),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::mul_assign16_avx2(dst, &t),
            }
        }
    }
}

/// `out = c·(a ^ b)` over little-endian `u16` words — fused subtract-scale
/// on the active backend.
///
/// # Panics
///
/// Panics if the slice lengths differ or are odd.
#[inline]
pub fn delta_into16(out: &mut [u8], c: u16, a: &[u8], b: &[u8]) {
    delta_into16_with(active_backend(), out, c, a, b);
}

/// [`delta_into16`] on an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths differ or are odd.
pub fn delta_into16_with(backend: Backend, out: &mut [u8], c: u16, a: &[u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "delta_into16 requires equal-length blocks");
    assert_eq!(
        out.len(),
        a.len(),
        "delta_into16 requires equal-length blocks"
    );
    assert_even(out.len());
    match c {
        0 => out.fill(0),
        1 => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x ^ y;
            }
        }
        _ => {
            if out.len() < SMALL_SLICE_LEN16 {
                return small_delta16(out, c, a, b);
            }
            let t = Split16::new(c);
            match backend {
                Backend::Scalar => scalar::delta_into16(out, &t, a, b),
                Backend::Swar => swar::delta_into16(out, c, &t, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::delta_into16_ssse3(out, &t, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::delta_into16_avx2(out, &t, a, b),
            }
        }
    }
}

/// `dsts[j] ^= cs[j]·src` over little-endian `u16` words for all rows `j` —
/// the fused multi-destination kernel behind wide-code encode and decode.
///
/// Rows are processed in batches of [`ROW_BATCH16`]: the batch's
/// [`Split16`] tables are built once on the stack (no heap allocation),
/// then `src` is streamed tile by tile through every row of the batch while
/// the tile is hot in L1.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, any row length differs from
/// `src`, or the length is odd.
#[inline]
pub fn mul_add_multi16(dsts: &mut [&mut [u8]], cs: &[u16], src: &[u8]) {
    mul_add_multi16_with(active_backend(), dsts, cs, src);
}

/// Rows per table-build batch in [`mul_add_multi16`]: 8 × 256-byte
/// [`Split16`] tables fit comfortably on the stack and in L1 next to the
/// source tile.
pub const ROW_BATCH16: usize = 8;

/// [`mul_add_multi16`] on an explicit backend.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, any row length differs from
/// `src`, or the length is odd.
pub fn mul_add_multi16_with(backend: Backend, dsts: &mut [&mut [u8]], cs: &[u16], src: &[u8]) {
    assert_eq!(
        dsts.len(),
        cs.len(),
        "mul_add_multi16 requires one coefficient per destination row"
    );
    for d in dsts.iter() {
        assert_eq!(
            d.len(),
            src.len(),
            "mul_add_multi16 requires equal-length blocks"
        );
    }
    assert_even(src.len());
    let len = src.len();
    for (rows, row_cs) in dsts.chunks_mut(ROW_BATCH16).zip(cs.chunks(ROW_BATCH16)) {
        let mut tabs = [Split16::ZERO; ROW_BATCH16];
        for (t, &c) in tabs.iter_mut().zip(row_cs) {
            if c > 1 && len >= SMALL_SLICE_LEN16 {
                *t = Split16::new(c);
            }
        }
        let mut start = 0;
        while start < len {
            // MULTI_TILE is even, so tile boundaries never split a word.
            let end = (start + MULTI_TILE).min(len);
            let s = &src[start..end];
            let mut j = 0;
            while j < rows.len() {
                let c = row_cs[j];
                // Two consecutive general rows share one source walk: the
                // pair kernel deinterleaves and nibble-splits each chunk
                // once and applies both rows' tables to it (a measurable
                // win on the shuffle tiers, where that prologue competes
                // with the table lookups for the same execution ports).
                if c > 1 && len >= SMALL_SLICE_LEN16 && j + 1 < rows.len() && row_cs[j + 1] > 1 {
                    let (head, tail) = rows.split_at_mut(j + 1);
                    mul_add16_pair_tier(
                        backend,
                        (&mut head[j][start..end], c, &tabs[j]),
                        (&mut tail[0][start..end], row_cs[j + 1], &tabs[j + 1]),
                        s,
                    );
                    j += 2;
                    continue;
                }
                let d = &mut rows[j][start..end];
                match c {
                    0 => {}
                    1 => add_assign(d, s),
                    _ if len < SMALL_SLICE_LEN16 => small_mul_add16(d, c, s),
                    _ => mul_add16_tier(backend, d, c, &tabs[j], s),
                }
                j += 1;
            }
            start = end;
        }
    }
}

/// Dispatches a `d ^= c·src` tile **pair** sharing one source walk. The
/// shuffle tiers split each source chunk into nibble vectors once and run
/// both rows' table lookups on them; scalar and SWAR tiers have no shared
/// prologue worth hoisting and simply run row by row.
fn mul_add16_pair_tier(
    backend: Backend,
    r0: (&mut [u8], u16, &Split16),
    r1: (&mut [u8], u16, &Split16),
    src: &[u8],
) {
    let (d0, c0, t0) = r0;
    let (d1, c1, t1) = r1;
    match backend {
        Backend::Scalar => {
            scalar::mul_add_assign16(d0, t0, src);
            scalar::mul_add_assign16(d1, t1, src);
        }
        Backend::Swar => {
            swar::mul_add_assign16(d0, c0, t0, src);
            swar::mul_add_assign16(d1, c1, t1, src);
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Ssse3 => x86::mul_add_pair16_ssse3(d0, t0, d1, t1, src),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::mul_add_pair16_avx2(d0, t0, d1, t1, src),
    }
}

/// Dispatches one `dst ^= c·src` tile to the backend's 16-bit kernel with
/// prebuilt tables (`c` itself is only needed by the SWAR shift-add loop).
fn mul_add16_tier(backend: Backend, dst: &mut [u8], c: u16, t: &Split16, src: &[u8]) {
    match backend {
        Backend::Scalar => scalar::mul_add_assign16(dst, t, src),
        Backend::Swar => swar::mul_add_assign16(dst, c, t, src),
        #[cfg(target_arch = "x86_64")]
        Backend::Ssse3 => x86::mul_add_assign16_ssse3(dst, t, src),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::mul_add_assign16_avx2(dst, t, src),
    }
}

// ---- GF(2¹⁶) small-slice fast path: direct log/exp, no table build ----

fn small_mul_add16(dst: &mut [u8], c: u16, src: &[u8]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let x = u16::from_le_bytes([s[0], s[1]]);
        if x != 0 {
            let p = Gf65536::mul_raw(c, x) ^ u16::from_le_bytes([d[0], d[1]]);
            d.copy_from_slice(&p.to_le_bytes());
        }
    }
}

fn small_mul16(dst: &mut [u8], c: u16) {
    for d in dst.chunks_exact_mut(2) {
        let x = u16::from_le_bytes([d[0], d[1]]);
        if x != 0 {
            d.copy_from_slice(&Gf65536::mul_raw(c, x).to_le_bytes());
        }
    }
}

fn small_delta16(out: &mut [u8], c: u16, a: &[u8], b: &[u8]) {
    for ((o, x), y) in out
        .chunks_exact_mut(2)
        .zip(a.chunks_exact(2))
        .zip(b.chunks_exact(2))
    {
        let s = u16::from_le_bytes([x[0], x[1]]) ^ u16::from_le_bytes([y[0], y[1]]);
        o.copy_from_slice(&Gf65536::mul_raw(c, s).to_le_bytes());
    }
}

// ---- small-slice fast path (satellite: direct log/exp, no table row) ----

#[inline]
fn small_mul_add(dst: &mut [u8], c: u8, src: &[u8]) {
    let log_c = LOG[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[log_c + LOG[s as usize] as usize];
        }
    }
}

#[inline]
fn small_mul(dst: &mut [u8], c: u8) {
    let log_c = LOG[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[log_c + LOG[*d as usize] as usize];
        }
    }
}

#[inline]
fn small_delta(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let log_c = LOG[c as usize] as usize;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        let s = x ^ y;
        *o = if s == 0 {
            0
        } else {
            EXP[log_c + LOG[s as usize] as usize]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use proptest::prelude::*;

    fn oracle_mul_add(dst: &[u8], c: u8, src: &[u8]) -> Vec<u8> {
        dst.iter()
            .zip(src)
            .map(|(&d, &s)| d ^ textbook::mul(c, s))
            .collect()
    }

    #[test]
    fn static_tables_match_textbook() {
        for c in 0..=255usize {
            for (x, &entry) in MUL_TABLES[c].iter().enumerate() {
                assert_eq!(entry, textbook::mul(c as u8, x as u8));
            }
            for n in 0..16usize {
                assert_eq!(NIB_TABLES[c][n], textbook::mul(c as u8, n as u8));
                assert_eq!(NIB_TABLES[c][16 + n], textbook::mul(c as u8, (n << 4) as u8));
            }
        }
    }

    #[test]
    fn nibble_split_reconstructs_full_product() {
        for c in 1..=255usize {
            for x in 0..=255usize {
                let lo = NIB_TABLES[c][x & 0x0f];
                let hi = NIB_TABLES[c][16 + (x >> 4)];
                assert_eq!(lo ^ hi, MUL_TABLES[c][x], "c={c} x={x}");
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in available_backends() {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert!(b.is_supported());
        }
        assert_eq!(Backend::from_name("no-such-backend"), None);
    }

    #[test]
    fn active_backend_is_supported() {
        assert!(active_backend().is_supported());
    }

    #[test]
    fn every_backend_handles_all_lengths_and_coefficients() {
        // Deliberately covers lengths straddling every kernel's step width
        // (1, 8, 16, 32) and the small-slice threshold.
        let lens = [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 1024];
        for backend in available_backends() {
            for &len in &lens {
                let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let dst0: Vec<u8> = (0..len).map(|i| (i * 101 + 5) as u8).collect();
                for c in [0u8, 1, 2, 3, 0x1d, 0x80, 0xfe, 0xff] {
                    let mut dst = dst0.clone();
                    mul_add_assign_with(backend, &mut dst, c, &src);
                    assert_eq!(
                        dst,
                        oracle_mul_add(&dst0, c, &src),
                        "mul_add backend={} len={len} c={c}",
                        backend.name()
                    );

                    let mut d2 = dst0.clone();
                    mul_assign_with(backend, &mut d2, c);
                    let want: Vec<u8> = dst0.iter().map(|&x| textbook::mul(c, x)).collect();
                    assert_eq!(d2, want, "mul backend={} len={len} c={c}", backend.name());

                    let mut out = vec![0xA5u8; len];
                    delta_into_with(backend, &mut out, c, &dst0, &src);
                    let want: Vec<u8> = dst0
                        .iter()
                        .zip(&src)
                        .map(|(&x, &y)| textbook::mul(c, x ^ y))
                        .collect();
                    assert_eq!(out, want, "delta backend={} len={len} c={c}", backend.name());
                }
            }
        }
    }

    #[test]
    fn mul_add_multi_matches_row_by_row() {
        let len = 10_000; // several tiles plus a ragged tail
        let src: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
        let cs = [0u8, 1, 0x53, 0xCA];
        for backend in available_backends() {
            let mut rows: Vec<Vec<u8>> = (0..cs.len())
                .map(|j| (0..len).map(|i| (i * 3 + j) as u8).collect())
                .collect();
            let want: Vec<Vec<u8>> = rows
                .iter()
                .zip(&cs)
                .map(|(row, &c)| oracle_mul_add(row, c, &src))
                .collect();
            let mut views: Vec<&mut [u8]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
            mul_add_multi_with(backend, &mut views, &cs, &src);
            assert_eq!(rows, want, "backend={}", backend.name());
        }
    }

    // ---- GF(2¹⁶) family ----

    /// Per-word oracle: `dst[i] ^= c·src[i]` through the log/exp tables.
    fn oracle_mul_add16(dst: &[u8], c: u16, src: &[u8]) -> Vec<u8> {
        dst.chunks_exact(2)
            .zip(src.chunks_exact(2))
            .flat_map(|(d, s)| {
                let p = Gf65536::mul_raw(c, u16::from_le_bytes([s[0], s[1]]));
                (p ^ u16::from_le_bytes([d[0], d[1]])).to_le_bytes()
            })
            .collect()
    }

    fn words16(len: usize, mul: usize, add: usize) -> Vec<u8> {
        (0..len / 2)
            .flat_map(|i| ((i * mul + add) as u16).to_le_bytes())
            .collect()
    }

    const TEST_CS16: [u16; 8] = [0, 1, 2, 3, 0x100B, 0x8000, 0xABCD, 0xFFFF];

    #[test]
    fn every_backend_handles_all_even_lengths16() {
        // Even lengths straddling every 16-bit kernel's step width (2, 32,
        // 32, 64 bytes) and the SMALL_SLICE_LEN16 threshold.
        let lens = [0usize, 2, 6, 14, 30, 32, 34, 62, 64, 66, 126, 128, 254, 2048];
        for backend in available_backends() {
            for &len in &lens {
                let src = words16(len, 0x1357, 0x0101);
                let dst0 = words16(len, 0x4243, 0x00FF);
                for c in TEST_CS16 {
                    let mut dst = dst0.clone();
                    mul_add_assign16_with(backend, &mut dst, c, &src);
                    assert_eq!(
                        dst,
                        oracle_mul_add16(&dst0, c, &src),
                        "mul_add16 backend={} len={len} c={c:#x}",
                        backend.name()
                    );

                    let mut d2 = dst0.clone();
                    mul_assign16_with(backend, &mut d2, c);
                    let want: Vec<u8> = dst0
                        .chunks_exact(2)
                        .flat_map(|d| {
                            Gf65536::mul_raw(c, u16::from_le_bytes([d[0], d[1]])).to_le_bytes()
                        })
                        .collect();
                    assert_eq!(d2, want, "mul16 backend={} len={len} c={c:#x}", backend.name());

                    let mut out = vec![0xA5u8; len];
                    delta_into16_with(backend, &mut out, c, &dst0, &src);
                    let want: Vec<u8> = dst0
                        .chunks_exact(2)
                        .zip(src.chunks_exact(2))
                        .flat_map(|(x, y)| {
                            let s = u16::from_le_bytes([x[0], x[1]])
                                ^ u16::from_le_bytes([y[0], y[1]]);
                            Gf65536::mul_raw(c, s).to_le_bytes()
                        })
                        .collect();
                    assert_eq!(
                        out,
                        want,
                        "delta16 backend={} len={len} c={c:#x}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mul_add_multi16_matches_row_by_row() {
        let len = 20_002; // several tiles plus a ragged (even) tail
        let src = words16(len, 13, 7);
        // More rows than ROW_BATCH16 so the batch loop runs twice.
        let cs = [0u16, 1, 0x53AB, 0xCAFE, 2, 0x8000, 0xFFFF, 3, 0x1234, 0x100B];
        for backend in available_backends() {
            let mut rows: Vec<Vec<u8>> = (0..cs.len()).map(|j| words16(len, 3, j)).collect();
            let want: Vec<Vec<u8>> = rows
                .iter()
                .zip(&cs)
                .map(|(row, &c)| oracle_mul_add16(row, c, &src))
                .collect();
            let mut views: Vec<&mut [u8]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
            mul_add_multi16_with(backend, &mut views, &cs, &src);
            assert_eq!(rows, want, "backend={}", backend.name());
        }
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn mul_add_assign16_rejects_odd_length() {
        let mut dst = vec![0u8; 7];
        mul_add_assign16(&mut dst, 0xABCD, &[0u8; 7]);
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn mul_assign16_rejects_odd_length() {
        let mut dst = vec![0u8; 3];
        mul_assign16(&mut dst, 0xABCD);
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn mul_add_multi16_rejects_odd_length() {
        let mut row = vec![0u8; 5];
        let mut views: Vec<&mut [u8]> = vec![row.as_mut_slice()];
        mul_add_multi16(&mut views, &[0xABCD], &[0u8; 5]);
    }

    proptest! {
        #[test]
        fn prop_all_backends_agree_with_textbook(
            c in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..300),
            seed in any::<u8>(),
        ) {
            let src: Vec<u8> = data.iter().map(|&x| x.wrapping_add(seed)).collect();
            let want = oracle_mul_add(&data, c, &src);
            for backend in available_backends() {
                let mut dst = data.clone();
                mul_add_assign_with(backend, &mut dst, c, &src);
                prop_assert_eq!(&dst, &want, "backend={}", backend.name());
            }
        }

        #[test]
        fn prop_all_backends_agree_with_gf65536_tables(
            c in any::<u16>(),
            words in proptest::collection::vec(any::<u16>(), 0..200),
            seed in any::<u16>(),
        ) {
            let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let src: Vec<u8> = words
                .iter()
                .flat_map(|w| w.wrapping_add(seed).to_le_bytes())
                .collect();
            let want = oracle_mul_add16(&data, c, &src);
            for backend in available_backends() {
                let mut dst = data.clone();
                mul_add_assign16_with(backend, &mut dst, c, &src);
                prop_assert_eq!(&dst, &want, "backend={}", backend.name());
            }
        }
    }
}
