//! Tiered GF(2⁸) bulk-multiply kernel engine.
//!
//! The protocol's hot path is `dst ^= c·src` over whole blocks (encode rows,
//! delta updates, decode back-substitution). This module provides that kernel
//! at four implementation tiers, selected **once** per process:
//!
//! | backend  | technique                                   | width      |
//! |----------|---------------------------------------------|------------|
//! | `scalar` | per-coefficient 256-entry product table     | 1 B/step   |
//! | `swar`   | branchless lanewise shift-add on `u64`      | 8 B/step   |
//! | `ssse3`  | split-nibble tables via `_mm_shuffle_epi8`  | 16 B/step  |
//! | `avx2`   | same tables via `_mm256_shuffle_epi8`       | 32 B/step  |
//!
//! All coefficient tables — the full 256-entry product table per coefficient
//! used by the scalar tier, and the 16+16-entry low/high-nibble tables used
//! by the SIMD tiers — are **generated at compile time** for all 255
//! nontrivial coefficients ([`MUL_TABLES`], [`NIB_TABLES`]). No kernel call
//! ever builds a table at runtime; the old per-call
//! [`Gf256::build_mul_table`](crate::Gf256::build_mul_table) cost is gone
//! entirely.
//!
//! # Backend selection
//!
//! [`active_backend`] picks the widest backend the CPU supports (via
//! `is_x86_feature_detected!`) the first time any kernel runs, and caches the
//! choice in a `OnceLock`. The `GF_BACKEND` environment variable
//! (`scalar`|`swar`|`ssse3`|`avx2`) overrides detection — requesting a
//! backend the CPU cannot run panics at startup rather than faulting later.
//! Per-backend entry points (`*_with`) bypass dispatch for differential
//! testing and benchmarking.
//!
//! # Safety
//!
//! `unsafe` is confined to [`x86`] (raw SIMD intrinsics behind
//! `#[target_feature]`); every other module in this crate remains
//! `#![deny(unsafe_code)]`-clean, and the dispatcher guarantees an x86 kernel
//! is only ever invoked after the corresponding CPUID feature check.

use std::sync::OnceLock;

pub(crate) mod scalar;
pub(crate) mod swar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

use crate::gf256::{EXP, LOG};

/// Slices shorter than this skip table lookups entirely and multiply each
/// byte directly through the log/exp tables: for a handful of bytes the
/// 768-byte log/exp working set is cheaper to touch than a cold 256-byte
/// product-table row, and the SIMD setup (broadcasts, masks) never pays for
/// itself.
pub const SMALL_SLICE_LEN: usize = 16;

const fn build_full_tables() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut c = 1usize;
    while c < 256 {
        let log_c = LOG[c] as usize;
        let mut x = 1usize;
        while x < 256 {
            t[c][x] = EXP[log_c + LOG[x] as usize];
            x += 1;
        }
        c += 1;
    }
    t
}

const fn build_nib_tables() -> [[u8; 32]; 256] {
    let mut t = [[0u8; 32]; 256];
    let mut c = 1usize;
    while c < 256 {
        let log_c = LOG[c] as usize;
        let mut n = 1usize;
        while n < 16 {
            // low-nibble products c·n and high-nibble products c·(n<<4);
            // byte product = lo ^ hi by linearity of · over XOR.
            t[c][n] = EXP[log_c + LOG[n] as usize];
            t[c][16 + n] = EXP[log_c + LOG[n << 4] as usize];
            n += 1;
        }
        c += 1;
    }
    t
}

/// `MUL_TABLES[c][x] = c·x` — full product tables for every coefficient,
/// generated at compile time (64 KiB of read-only data).
pub static MUL_TABLES: [[u8; 256]; 256] = build_full_tables();

/// `NIB_TABLES[c][0..16] = c·n`, `NIB_TABLES[c][16..32] = c·(n<<4)` — the
/// split-nibble tables consumed by PSHUFB-style SIMD kernels (8 KiB).
pub static NIB_TABLES: [[u8; 32]; 256] = build_nib_tables();

/// One implementation tier of the multiply kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Per-coefficient 256-entry table, one byte per step.
    Scalar,
    /// Portable branchless shift-add over `u64` lanes, 8 bytes per step.
    Swar,
    /// SSSE3 `_mm_shuffle_epi8` nibble tables, 16 bytes per step.
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    /// AVX2 `_mm256_shuffle_epi8` nibble tables, 32 bytes per step.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// The backend's `GF_BACKEND` name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => "ssse3",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a `GF_BACKEND` value. Unknown names return `None`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" | "table" => Some(Backend::Scalar),
            "swar" => Some(Backend::Swar),
            #[cfg(target_arch = "x86_64")]
            "ssse3" => Some(Backend::Ssse3),
            #[cfg(target_arch = "x86_64")]
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether this CPU can execute the backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        }
    }
}

/// Every backend this CPU supports, widest last.
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar, Backend::Swar];
    #[cfg(target_arch = "x86_64")]
    {
        if Backend::Ssse3.is_supported() {
            v.push(Backend::Ssse3);
        }
        if Backend::Avx2.is_supported() {
            v.push(Backend::Avx2);
        }
    }
    v
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

/// The backend used by the dispatching kernels, chosen once per process.
///
/// Honors `GF_BACKEND` (`scalar`|`swar`|`ssse3`|`avx2`) if set, otherwise
/// picks the widest supported tier.
///
/// # Panics
///
/// Panics on the first call if `GF_BACKEND` names an unknown backend or one
/// this CPU cannot execute — failing fast beats faulting in a SIMD kernel.
pub fn active_backend() -> Backend {
    *ACTIVE.get_or_init(|| match std::env::var("GF_BACKEND") {
        Ok(name) => {
            let b = Backend::from_name(&name)
                .unwrap_or_else(|| panic!("GF_BACKEND={name:?} is not a known backend"));
            assert!(
                b.is_supported(),
                "GF_BACKEND={name:?} is not supported by this CPU"
            );
            b
        }
        Err(_) => *available_backends().last().expect("scalar always present"),
    })
}

/// `dst[i] ^= c·src[i]` on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    mul_add_assign_with(active_backend(), dst, c, src);
}

/// `dst[i] ^= c·src[i]` on an explicit backend (differential tests, benches).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_assign_with(backend: Backend, dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_assign requires equal-length blocks"
    );
    match c {
        0 => {}
        1 => add_assign(dst, src),
        _ => {
            if dst.len() < SMALL_SLICE_LEN {
                return small_mul_add(dst, c, src);
            }
            match backend {
                Backend::Scalar => scalar::mul_add_assign(dst, c, src),
                Backend::Swar => swar::mul_add_assign(dst, c, src),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::mul_add_assign_ssse3(dst, c, src),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::mul_add_assign_avx2(dst, c, src),
            }
        }
    }
}

/// `dst[i] = c·dst[i]` on the active backend.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: u8) {
    mul_assign_with(active_backend(), dst, c);
}

/// `dst[i] = c·dst[i]` on an explicit backend.
pub fn mul_assign_with(backend: Backend, dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            if dst.len() < SMALL_SLICE_LEN {
                return small_mul(dst, c);
            }
            match backend {
                Backend::Scalar => scalar::mul_assign(dst, c),
                Backend::Swar => swar::mul_assign(dst, c),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::mul_assign_ssse3(dst, c),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::mul_assign_avx2(dst, c),
            }
        }
    }
}

/// `out[i] = c·(a[i] ^ b[i])` on the active backend — fused subtract-scale.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn delta_into(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    delta_into_with(active_backend(), out, c, a, b);
}

/// `out[i] = c·(a[i] ^ b[i])` on an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn delta_into_with(backend: Backend, out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "delta_into requires equal-length blocks");
    assert_eq!(out.len(), a.len(), "delta_into requires equal-length blocks");
    match c {
        0 => out.fill(0),
        1 => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x ^ y;
            }
        }
        _ => {
            if out.len() < SMALL_SLICE_LEN {
                return small_delta(out, c, a, b);
            }
            match backend {
                Backend::Scalar => scalar::delta_into(out, c, a, b),
                Backend::Swar => swar::delta_into(out, c, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Ssse3 => x86::delta_into_ssse3(out, c, a, b),
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => x86::delta_into_avx2(out, c, a, b),
            }
        }
    }
}

/// `dsts[j][i] ^= cs[j]·src[i]` for all rows `j` — the fused multi-
/// destination kernel behind full encode. Streams `src` once, tile by tile,
/// through all destination rows while the tile is hot in L1, instead of
/// re-reading `src` from L2/DRAM once per row.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, or any row length differs from
/// `src`.
#[inline]
pub fn mul_add_multi(dsts: &mut [&mut [u8]], cs: &[u8], src: &[u8]) {
    mul_add_multi_with(active_backend(), dsts, cs, src);
}

/// Tile size for [`mul_add_multi`]: comfortably inside a 32 KiB L1d next to
/// one destination tile and the lookup tables.
const MULTI_TILE: usize = 8 * 1024;

/// [`mul_add_multi`] on an explicit backend.
///
/// # Panics
///
/// Panics if `dsts` and `cs` lengths differ, or any row length differs from
/// `src`.
pub fn mul_add_multi_with(backend: Backend, dsts: &mut [&mut [u8]], cs: &[u8], src: &[u8]) {
    assert_eq!(
        dsts.len(),
        cs.len(),
        "mul_add_multi requires one coefficient per destination row"
    );
    for d in dsts.iter() {
        assert_eq!(
            d.len(),
            src.len(),
            "mul_add_multi requires equal-length blocks"
        );
    }
    let len = src.len();
    let mut start = 0;
    while start < len {
        let end = (start + MULTI_TILE).min(len);
        for (d, &c) in dsts.iter_mut().zip(cs) {
            mul_add_assign_with(backend, &mut d[start..end], c, &src[start..end]);
        }
        start = end;
    }
}

/// `dst[i] ^= src[i]` — plain XOR; backend-independent because LLVM already
/// vectorizes it optimally.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign requires equal-length blocks"
    );
    let mid = dst.len() - dst.len() % 8;
    let (dh, dt) = dst.split_at_mut(mid);
    let (sh, st) = src.split_at(mid);
    for (d, s) in dh.iter_mut().zip(sh) {
        *d ^= *s;
    }
    for (d, s) in dt.iter_mut().zip(st) {
        *d ^= *s;
    }
}

// ---- small-slice fast path (satellite: direct log/exp, no table row) ----

#[inline]
fn small_mul_add(dst: &mut [u8], c: u8, src: &[u8]) {
    let log_c = LOG[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[log_c + LOG[s as usize] as usize];
        }
    }
}

#[inline]
fn small_mul(dst: &mut [u8], c: u8) {
    let log_c = LOG[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[log_c + LOG[*d as usize] as usize];
        }
    }
}

#[inline]
fn small_delta(out: &mut [u8], c: u8, a: &[u8], b: &[u8]) {
    let log_c = LOG[c as usize] as usize;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        let s = x ^ y;
        *o = if s == 0 {
            0
        } else {
            EXP[log_c + LOG[s as usize] as usize]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use proptest::prelude::*;

    fn oracle_mul_add(dst: &[u8], c: u8, src: &[u8]) -> Vec<u8> {
        dst.iter()
            .zip(src)
            .map(|(&d, &s)| d ^ textbook::mul(c, s))
            .collect()
    }

    #[test]
    fn static_tables_match_textbook() {
        for c in 0..=255usize {
            for (x, &entry) in MUL_TABLES[c].iter().enumerate() {
                assert_eq!(entry, textbook::mul(c as u8, x as u8));
            }
            for n in 0..16usize {
                assert_eq!(NIB_TABLES[c][n], textbook::mul(c as u8, n as u8));
                assert_eq!(NIB_TABLES[c][16 + n], textbook::mul(c as u8, (n << 4) as u8));
            }
        }
    }

    #[test]
    fn nibble_split_reconstructs_full_product() {
        for c in 1..=255usize {
            for x in 0..=255usize {
                let lo = NIB_TABLES[c][x & 0x0f];
                let hi = NIB_TABLES[c][16 + (x >> 4)];
                assert_eq!(lo ^ hi, MUL_TABLES[c][x], "c={c} x={x}");
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in available_backends() {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert!(b.is_supported());
        }
        assert_eq!(Backend::from_name("no-such-backend"), None);
    }

    #[test]
    fn active_backend_is_supported() {
        assert!(active_backend().is_supported());
    }

    #[test]
    fn every_backend_handles_all_lengths_and_coefficients() {
        // Deliberately covers lengths straddling every kernel's step width
        // (1, 8, 16, 32) and the small-slice threshold.
        let lens = [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 1024];
        for backend in available_backends() {
            for &len in &lens {
                let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let dst0: Vec<u8> = (0..len).map(|i| (i * 101 + 5) as u8).collect();
                for c in [0u8, 1, 2, 3, 0x1d, 0x80, 0xfe, 0xff] {
                    let mut dst = dst0.clone();
                    mul_add_assign_with(backend, &mut dst, c, &src);
                    assert_eq!(
                        dst,
                        oracle_mul_add(&dst0, c, &src),
                        "mul_add backend={} len={len} c={c}",
                        backend.name()
                    );

                    let mut d2 = dst0.clone();
                    mul_assign_with(backend, &mut d2, c);
                    let want: Vec<u8> = dst0.iter().map(|&x| textbook::mul(c, x)).collect();
                    assert_eq!(d2, want, "mul backend={} len={len} c={c}", backend.name());

                    let mut out = vec![0xA5u8; len];
                    delta_into_with(backend, &mut out, c, &dst0, &src);
                    let want: Vec<u8> = dst0
                        .iter()
                        .zip(&src)
                        .map(|(&x, &y)| textbook::mul(c, x ^ y))
                        .collect();
                    assert_eq!(out, want, "delta backend={} len={len} c={c}", backend.name());
                }
            }
        }
    }

    #[test]
    fn mul_add_multi_matches_row_by_row() {
        let len = 10_000; // several tiles plus a ragged tail
        let src: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
        let cs = [0u8, 1, 0x53, 0xCA];
        for backend in available_backends() {
            let mut rows: Vec<Vec<u8>> = (0..cs.len())
                .map(|j| (0..len).map(|i| (i * 3 + j) as u8).collect())
                .collect();
            let want: Vec<Vec<u8>> = rows
                .iter()
                .zip(&cs)
                .map(|(row, &c)| oracle_mul_add(row, c, &src))
                .collect();
            let mut views: Vec<&mut [u8]> = rows.iter_mut().map(|r| r.as_mut_slice()).collect();
            mul_add_multi_with(backend, &mut views, &cs, &src);
            assert_eq!(rows, want, "backend={}", backend.name());
        }
    }

    proptest! {
        #[test]
        fn prop_all_backends_agree_with_textbook(
            c in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..300),
            seed in any::<u8>(),
        ) {
            let src: Vec<u8> = data.iter().map(|&x| x.wrapping_add(seed)).collect();
            let want = oracle_mul_add(&data, c, &src);
            for backend in available_backends() {
                let mut dst = data.clone();
                mul_add_assign_with(backend, &mut dst, c, &src);
                prop_assert_eq!(&dst, &want, "backend={}", backend.name());
            }
        }
    }
}
