//! Textbook GF(2⁸) multiplication: shift-and-add with on-the-fly reduction.
//!
//! This module exists for two reasons:
//!
//! 1. It is the *baseline* for the paper's §6.1 claim that their optimized
//!    field arithmetic "runs 10-20 times faster than textbook
//!    implementations" — `benches/ec_kernels.rs` measures both paths.
//! 2. It is an independent oracle: the table-driven [`crate::Gf256`] is
//!    verified against it exhaustively (all 65 536 products) in tests.

use crate::gf256::PRIMITIVE_POLY;

/// Multiplies two GF(2⁸) elements by Russian-peasant shift-and-add.
///
/// Each of the 8 iterations conditionally XORs the multiplicand and reduces
/// by the primitive polynomial — no tables, no precomputation.
#[inline]
pub fn mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= (PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

/// `dst[i] ^= c · src[i]` computed with [`mul`] per byte — the slow path the
/// optimized kernels in [`crate::slice`] are benchmarked against.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_assign(dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_assign requires equal-length blocks"
    );
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= mul(c, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_one() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
        }
    }

    #[test]
    fn mul_is_commutative_exhaustively() {
        for a in 0..=255u8 {
            for b in a..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn slice_form_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        let mut dst = vec![0u8; 256];
        mul_add_assign(&mut dst, 0x1D, &src);
        for (i, &d) in dst.iter().enumerate() {
            assert_eq!(d, mul(0x1D, i as u8));
        }
    }
}
