//! The parallel stripe-rebuild engine: bulk recovery after a node failure.
//!
//! Fig. 6 recovery repairs one stripe at a time with ~5 serial rounds of
//! per-node RPCs — correct, but painfully slow for the common bulk case: a
//! storage node died, it was remapped to a fresh INIT replacement, and now
//! *every* stripe needs its block on that node reconstructed while the
//! rest of the stripe sits quietly in `NORM`. This module batches that
//! case aggressively:
//!
//! * stripes are processed in chunks of [`REBUILD_CHUNK`], and up to
//!   `cfg.rebuild_width` chunks run concurrently on a scoped thread pool
//!   (same shape as the client's write pipelining);
//! * within a chunk, each protocol round (probe, `TryLock`, `GetState`,
//!   `Reconstruct`, `Finalize`) sends **one batched message per storage
//!   node** covering every stripe in the chunk — per-stripe round trips
//!   collapse to per-node round trips;
//! * decode plans come from the config's shared [`ajx_erasure::PlanCache`]
//!   (the Vandermonde inversion for "everyone but node X" happens once,
//!   not once per stripe) and all scratch goes through the thread-local
//!   buffer pool.
//!
//! The fast path only handles the unambiguous case. Because all `n` locks
//! are taken at `L1` before states are read, no swap or add can land in
//! between — the states are frozen, which is why (unlike Fig. 6, which
//! weakens locks to `L0` to drain writers) no `GetRecent` re-check is
//! needed before reconstructing. Anything harder — a lost lock race, an
//! adopted crashed recovery (`RECONS`), writes still draining (fewer than
//! `k + slack` consistent blocks), transport trouble — is handed to the
//! serial Fig. 6 fallback, whose re-entrant `trylock` takes over whatever
//! locks the fast path still holds.

use crate::client::Client;
use crate::error::ProtocolError;
use crate::rpc::{call_many, expect_reply};
use ajx_storage::{Epoch, GetStateReply, LMode, NodeId, OpMode, Reply, Request, StripeId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Stripes per batched round: bounds peak memory (a chunk keeps up to
/// `REBUILD_CHUNK × n` blocks alive in its reconstruct round) while
/// amortizing the per-message framing well.
const REBUILD_CHUNK: usize = 32;

/// What a [`Client::rebuild_stripes`] call accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Stripes examined.
    pub stripes: usize,
    /// Stripes probed healthy and skipped without locking anything.
    pub skipped: usize,
    /// Stripes repaired by the batched fast path.
    pub rebuilt: usize,
    /// Stripes handed to serial Fig. 6 recovery (lost lock races, adopted
    /// crashed recoveries, draining writes, transport trouble).
    pub recovered: usize,
    /// Block-content bytes this call moved over the wire, both directions
    /// (headers and metadata-only messages excluded) — the repair-bandwidth
    /// figure `BENCH_recovery.json` compares across code families.
    pub repair_bytes: u64,
    /// Request/reply round trips this call completed.
    pub round_trips: u64,
}

impl RebuildReport {
    fn absorb(&mut self, other: RebuildReport) {
        self.stripes += other.stripes;
        self.skipped += other.skipped;
        self.rebuilt += other.rebuilt;
        self.recovered += other.recovered;
    }
}

/// Entry point behind [`Client::rebuild_stripes`].
pub(crate) fn rebuild_stripes(
    client: &Client,
    stripes: &[StripeId],
) -> Result<RebuildReport, ProtocolError> {
    // Byte accounting: everything this call sends and receives goes
    // through the one client endpoint, so a snapshot delta is exactly the
    // rebuild's traffic (payload counters skip headers and metadata-only
    // rounds by construction).
    let before = client.endpoint().stats().snapshot();
    let mut report = rebuild_all_chunks(client, stripes)?;
    let spent = client.endpoint().stats().snapshot().since(&before);
    report.repair_bytes = spent.payload_sent + spent.payload_received;
    report.round_trips = spent.round_trips;
    Ok(report)
}

fn rebuild_all_chunks(
    client: &Client,
    stripes: &[StripeId],
) -> Result<RebuildReport, ProtocolError> {
    let chunks: Vec<&[StripeId]> = stripes.chunks(REBUILD_CHUNK).collect();
    let width = client.config().rebuild_width.max(1).min(chunks.len());
    if width <= 1 {
        let mut report = RebuildReport::default();
        let mut first_err: Option<ProtocolError> = None;
        for chunk in &chunks {
            match rebuild_chunk(client, chunk) {
                Ok(r) => report.absorb(r),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        return match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        };
    }
    let next = AtomicUsize::new(0);
    let report: Mutex<RebuildReport> = Mutex::new(RebuildReport::default());
    let first_err: Mutex<Option<ProtocolError>> = Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|_| loop {
                let w = next.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(w) else { break };
                match rebuild_chunk(client, chunk) {
                    Ok(r) => report.lock().absorb(r),
                    Err(e) => {
                        let mut slot = first_err.lock();
                        slot.get_or_insert(e);
                    }
                }
            });
        }
    })
    .expect("rebuild worker panicked");
    match first_err.into_inner() {
        Some(e) => Err(e),
        None => Ok(report.into_inner()),
    }
}

/// Repairs one chunk of stripes with batched per-node rounds.
fn rebuild_chunk(client: &Client, chunk: &[StripeId]) -> Result<RebuildReport, ProtocolError> {
    let cfg = client.config();
    let endpoint = client.endpoint();
    let caller = client.id();
    let n = cfg.n();
    let k = cfg.k();
    let node_of = |s: StripeId, t: usize| NodeId(cfg.layout.node_for(s.0, t) as u32);
    let mut report = RebuildReport {
        stripes: chunk.len(),
        ..RebuildReport::default()
    };
    let mut fallback: BTreeSet<usize> = BTreeSet::new();

    // ---- Probe round: find the stripes that actually need work. --------
    // One batched Probe per storage node; a stripe is healthy only if all
    // n of its blocks report NORM and unlocked.
    let mut needs = vec![false; chunk.len()];
    {
        let pairs: Vec<(usize, usize)> = (0..chunk.len())
            .flat_map(|x| (0..n).map(move |t| (x, t)))
            .collect();
        let groups = group_by_node(chunk, pairs, node_of);
        let calls = batched_calls(&groups, |&(x, _)| Request::Probe { stripe: chunk[x] });
        for ((_, xs), res) in groups.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for (&(x, _), sub) in xs.iter().zip(unbatch(reply, xs.len())?) {
                        match sub {
                            Reply::Probe { opmode, lmode, .. } => {
                                if opmode != OpMode::Norm || lmode != LMode::Unl {
                                    needs[x] = true;
                                }
                            }
                            other => {
                                return Err(ProtocolError::unexpected("Reply::Probe", &other))
                            }
                        }
                    }
                }
                // An unreachable node marks all its stripes for rebuild —
                // with auto-remap the retry already replaced it with an
                // INIT node, without it the fallback recovery will decide.
                Err(_) => xs.iter().for_each(|&(x, _)| needs[x] = true),
            }
        }
    }
    report.skipped = needs.iter().filter(|&&b| !b).count();
    let mut live: Vec<usize> = (0..chunk.len()).filter(|&x| needs[x]).collect();

    // ---- Phase 1: batched TryLock L1, strictly in index order. ----------
    // Index order across stripes' blocks is what keeps concurrent
    // recoveries deadlock-free (Fig. 6); batching per node *within* one
    // index round preserves it, since every live stripe's t-th lock is
    // acquired before any (t+1)-th is attempted.
    let mut acquired: Vec<Vec<(usize, LMode)>> = vec![Vec::new(); chunk.len()];
    for t in 0..n {
        if live.is_empty() {
            break;
        }
        let groups = group_by_node(chunk, live.iter().map(|&x| (x, t)).collect(), node_of);
        let calls = batched_calls(&groups, |&(x, _)| Request::TryLock {
            stripe: chunk[x],
            lm: LMode::L1,
            caller,
        });
        let mut dropped: BTreeSet<usize> = BTreeSet::new();
        let mut lost: Vec<usize> = Vec::new();
        for ((_, xs), res) in groups.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for (&(x, _), sub) in xs.iter().zip(unbatch(reply, xs.len())?) {
                        let r = expect_reply!(sub, Reply::TryLock);
                        if r.ok {
                            acquired[x].push((t, r.old_lmode));
                        } else {
                            lost.push(x);
                        }
                    }
                }
                // Transport trouble: keep whatever locks these stripes
                // hold (trylock is re-entrant for the holder, so the
                // fallback recovery walks right over them) and bail out of
                // the fast path for them.
                Err(_) => dropped.extend(xs.iter().map(|&(x, _)| x)),
            }
        }
        // Lost races release what they took, restoring the previous lock
        // modes (Fig. 6 line 5) — batched per node, best-effort: the race
        // winner's finalize or our own fallback supersedes a lost restore.
        if !lost.is_empty() {
            let mut rel: BTreeMap<NodeId, Vec<Request>> = BTreeMap::new();
            for &x in &lost {
                for &(l, old) in &acquired[x] {
                    rel.entry(node_of(chunk[x], l))
                        .or_default()
                        .push(Request::SetLock {
                            stripe: chunk[x],
                            lm: old,
                            caller,
                        });
                }
                acquired[x].clear();
            }
            let rels: Vec<(NodeId, Request)> =
                rel.into_iter().map(|(node, reqs)| (node, batch(reqs))).collect();
            let _ = call_many(endpoint, cfg, rels);
            dropped.extend(lost);
        }
        if !dropped.is_empty() {
            live.retain(|x| !dropped.contains(x));
            fallback.extend(dropped);
        }
    }

    // ---- Phase 2a: one batched metadata-only round across all stripes. --
    // `GetMeta` carries the tid bookkeeping, opmode, and epoch of every
    // block but **no block content** — classification is free of payload
    // bytes, and the states are frozen under the L1 locks.
    let mut states: Vec<Vec<Option<GetStateReply>>> = vec![vec![]; chunk.len()];
    for &x in &live {
        states[x] = (0..n).map(|_| None).collect();
    }
    if !live.is_empty() {
        let pairs: Vec<(usize, usize)> = live
            .iter()
            .flat_map(|&x| (0..n).map(move |t| (x, t)))
            .collect();
        let groups = group_by_node(chunk, pairs, node_of);
        let calls = batched_calls(&groups, |&(x, _)| Request::GetMeta { stripe: chunk[x] });
        let mut dropped: BTreeSet<usize> = BTreeSet::new();
        for ((_, xs), res) in groups.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for (&(x, t), sub) in xs.iter().zip(unbatch(reply, xs.len())?) {
                        states[x][t] = Some(expect_reply!(sub, Reply::GetState));
                    }
                }
                Err(_) => dropped.extend(xs.iter().map(|&(x, _)| x)),
            }
        }
        if !dropped.is_empty() {
            live.retain(|x| !dropped.contains(x));
            fallback.extend(dropped);
        }
    }

    // ---- Classify: fast path only for the unambiguous, frozen case. -----
    // All n blocks are held at L1, so no swap or add can have landed since
    // the states were read — no GetRecent re-check is needed (recovery
    // needs one only because it weakens locks to L0 to drain writers; the
    // fast path never weakens). A RECONS node (adopted crashed recovery)
    // or fewer than k + slack consistent blocks (writes mid-drain) go to
    // the serial fallback, which drains and adopts correctly.
    //
    // For each consistent stripe the lost indices (everything outside the
    // consistent set) get a per-index repair plan from the code family:
    // ~`k/g + 1` shares on an LRC, `k` on Reed-Solomon. Only the union of
    // the plans' share indices is fetched with blocks in phase 2b — the
    // bytes-on-wire win this engine exists for.
    struct FastJob {
        x: usize,
        cset: Vec<usize>,
        plans: Vec<std::sync::Arc<ajx_erasure::RepairPlan>>,
        /// Highest epoch any of the stripe's n nodes reported in the meta
        /// round: Finalize must outbid *every* node, not just the ones it
        /// reconstructs (`finalize` sets the epoch unconditionally).
        epoch: Epoch,
    }
    let mut jobs: Vec<FastJob> = Vec::new();
    for &x in &live {
        let sts: Vec<GetStateReply> = states[x]
            .iter_mut()
            .map(|s| s.take().expect("live stripes have all n states"))
            .collect();
        if sts.iter().any(|s| s.opmode == OpMode::Recons) {
            fallback.insert(x);
            continue;
        }
        let init_count = sts.iter().filter(|s| s.opmode == OpMode::Init).count();
        let slack = (cfg.t_d as i64 - init_count as i64).max(0) as usize;
        let cset = crate::recovery::find_consistent(&sts, k);
        if cset.len() < k + slack {
            fallback.insert(x);
            continue;
        }
        let epoch = sts.iter().map(|s| s.epoch).max().unwrap_or(Epoch(0));
        let in_cset: BTreeSet<usize> = cset.iter().copied().collect();
        let lost: Vec<usize> = (0..n).filter(|t| !in_cset.contains(t)).collect();
        let plans: Option<Vec<_>> = lost
            .iter()
            .map(|&t| cfg.plan_cache.repair(&cfg.code, t, &cset))
            .collect();
        match plans {
            Some(plans) => jobs.push(FastJob { x, cset, plans, epoch }),
            // The consistent set cannot repair some lost index (an LRC
            // rank deficit past its guarantee): serial recovery decides.
            None => {
                fallback.insert(x);
            }
        }
    }

    // ---- Phase 2b: fetch blocks only from the union of repair shares. ---
    let mut blocks: BTreeMap<(usize, usize), Vec<u8>> = BTreeMap::new();
    if !jobs.is_empty() {
        let pairs: Vec<(usize, usize)> = jobs
            .iter()
            .flat_map(|job| {
                let fetch: BTreeSet<usize> =
                    job.plans.iter().flat_map(|p| p.indices()).collect();
                fetch.into_iter().map(move |t| (job.x, t))
            })
            .collect();
        let groups = group_by_node(chunk, pairs, node_of);
        let calls = batched_calls(&groups, |&(x, _)| Request::GetState { stripe: chunk[x] });
        let mut dropped: BTreeSet<usize> = BTreeSet::new();
        for ((_, xs), res) in groups.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for (&(x, t), sub) in xs.iter().zip(unbatch(reply, xs.len())?) {
                        let s = expect_reply!(sub, Reply::GetState);
                        match s.block {
                            Some(b) => {
                                blocks.insert((x, t), b);
                            }
                            None => {
                                dropped.insert(x);
                            }
                        }
                    }
                }
                Err(_) => dropped.extend(xs.iter().map(|&(x, _)| x)),
            }
        }
        if !dropped.is_empty() {
            jobs.retain(|job| !dropped.contains(&job.x));
            fallback.extend(dropped);
        }
    }

    // ---- Phase 3: batched Reconstruct (lost blocks only), Finalize all. --
    // Once a stripe's reconstructs are dispatched its locks must survive
    // errors (see recovery.rs): a failed round sends the stripe to the
    // fallback *without* unlocking, and the fallback's recovery adopts the
    // saved RECONS set.
    let fast: Vec<usize> = jobs.iter().map(|job| job.x).collect();
    let mut epochs: BTreeMap<usize, Epoch> = BTreeMap::new();
    let mut alive: BTreeSet<usize> = fast.iter().copied().collect();
    {
        let mut by_node: BTreeMap<NodeId, Vec<(usize, Request)>> = BTreeMap::new();
        let mut bad: BTreeSet<usize> = BTreeSet::new();
        for job in &jobs {
            epochs.insert(job.x, job.epoch);
            for plan in &job.plans {
                let shares: Vec<&[u8]> = plan
                    .indices()
                    .filter_map(|t| blocks.get(&(job.x, t)).map(Vec::as_slice))
                    .collect();
                let len = shares.first().map_or(0, |s| s.len());
                let mut out = crate::pool::take(len);
                // Malformed node replies (ragged blocks) — cannot happen
                // with well-behaved nodes, but the fallback handles it.
                if plan.reconstruct_into(&shares, &mut out).is_err() {
                    crate::pool::give(out);
                    bad.insert(job.x);
                    break;
                }
                by_node
                    .entry(node_of(chunk[job.x], plan.lost()))
                    .or_default()
                    .push((
                        job.x,
                        Request::Reconstruct {
                            stripe: chunk[job.x],
                            cset: job.cset.clone(),
                            block: out,
                        },
                    ));
            }
        }
        for b in blocks.into_values() {
            crate::pool::give(b);
        }
        if !bad.is_empty() {
            for (_, xs_reqs) in by_node.iter_mut() {
                xs_reqs.retain(|(x, _)| !bad.contains(x));
            }
            alive.retain(|x| !bad.contains(x));
            for &x in &bad {
                epochs.remove(&x);
            }
            fallback.extend(bad);
        }
        let mut calls: Vec<(NodeId, Request)> = Vec::with_capacity(by_node.len());
        let mut xs_per_call: Vec<Vec<usize>> = Vec::with_capacity(by_node.len());
        for (node, xs_reqs) in by_node {
            let (xs, reqs): (Vec<usize>, Vec<Request>) = xs_reqs.into_iter().unzip();
            calls.push((node, batch(reqs)));
            xs_per_call.push(xs);
        }
        for (xs, res) in xs_per_call.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for (&x, sub) in xs.iter().zip(unbatch(reply, xs.len())?) {
                        let ep = expect_reply!(sub, Reply::Reconstruct);
                        let slot = epochs.entry(x).or_insert(Epoch(0));
                        *slot = (*slot).max(ep);
                    }
                }
                Err(_) => {
                    for &x in xs {
                        alive.remove(&x);
                    }
                }
            }
        }
    }
    {
        let finalizable: Vec<(usize, usize)> = alive
            .iter()
            .flat_map(|&x| (0..n).map(move |t| (x, t)))
            .collect();
        let groups = group_by_node(chunk, finalizable, node_of);
        let calls = batched_calls(&groups, |&(x, _)| Request::Finalize {
            stripe: chunk[x],
            epoch: epochs[&x].next(),
        });
        for ((_, xs), res) in groups.iter().zip(call_many(endpoint, cfg, calls)) {
            match res {
                Ok(reply) => {
                    for sub in unbatch(reply, xs.len())? {
                        if !matches!(sub, Reply::Ack) {
                            return Err(ProtocolError::unexpected("Reply::Ack", &sub));
                        }
                    }
                }
                Err(_) => {
                    for &(x, _) in xs {
                        alive.remove(&x);
                    }
                }
            }
        }
    }
    report.rebuilt = alive.len();
    fallback.extend(fast.into_iter().filter(|x| !alive.contains(x)));

    // ---- Serial fallback: full Fig. 6 recovery, one stripe at a time. ---
    let mut first_err: Option<ProtocolError> = None;
    for &x in &fallback {
        match client.recover_stripe(chunk[x]) {
            Ok(()) => report.recovered += 1,
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Groups per-stripe work items `(chunk index, in-stripe index)` by the
/// storage node that owns them, deterministically (BTreeMap order).
fn group_by_node(
    chunk: &[StripeId],
    pairs: Vec<(usize, usize)>,
    node_of: impl Fn(StripeId, usize) -> NodeId,
) -> Vec<(NodeId, Vec<(usize, usize)>)> {
    let mut by_node: BTreeMap<NodeId, Vec<(usize, usize)>> = BTreeMap::new();
    for (x, t) in pairs {
        by_node.entry(node_of(chunk[x], t)).or_default().push((x, t));
    }
    by_node.into_iter().collect()
}

/// Builds one request per node group, batching multi-request groups.
fn batched_calls(
    groups: &[(NodeId, Vec<(usize, usize)>)],
    mut req: impl FnMut(&(usize, usize)) -> Request,
) -> Vec<(NodeId, Request)> {
    groups
        .iter()
        .map(|(node, xs)| (*node, batch(xs.iter().map(&mut req).collect())))
        .collect()
}

/// Collapses a singleton into a bare request (no batch framing on the wire).
fn batch(mut reqs: Vec<Request>) -> Request {
    if reqs.len() == 1 {
        reqs.pop().expect("len checked")
    } else {
        Request::Batch(reqs)
    }
}

/// Splits a reply back into per-member replies, mirroring [`batch`].
fn unbatch(reply: Reply, members: usize) -> Result<Vec<Reply>, ProtocolError> {
    if members == 1 {
        return Ok(vec![reply]);
    }
    match reply {
        Reply::Batch(rs) if rs.len() == members => Ok(rs),
        other => Err(ProtocolError::unexpected("Reply::Batch", &other)),
    }
}
