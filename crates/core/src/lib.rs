//! The AJX client protocol — the primary contribution of *Using Erasure
//! Codes Efficiently for Storage in a Distributed System* (Aguilera,
//! Janakiraman & Xu, DSN 2005), reproduced in Rust.
//!
//! The protocol stores data across `n` thin storage nodes under a k-of-n
//! erasure code and, in the common failure-free case, needs **no locks, no
//! two-phase commit, and no version logs**: a `READ` is one round trip to
//! one node, and a `WRITE` is a `swap` at the data node plus a commutative
//! `add` of `α_ji·(v − w)` at each redundant node (Fig. 3/Fig. 5). Crashed
//! nodes are repaired by an online three-phase recovery (Fig. 6) that any
//! client can run — or pick up after a recovering client itself crashes.
//!
//! Crate layout:
//!
//! * [`Client`] — `READ`/`WRITE` (Figs. 4-5), recovery entry points,
//!   garbage collection (Fig. 7), and the §3.10 monitoring sweep.
//! * [`ProtocolConfig`] / [`UpdateStrategy`] — configuration, including the
//!   serial / parallel / hybrid / broadcast redundant-update schemes
//!   (Fig. 1's AJX-ser / AJX-par / AJX-bcast).
//! * [`recovery`] — Fig. 6's three-phase recovery, `find_consistent`, and
//!   the lock-free degraded read (DESIGN.md §8).
//! * [`RebuildReport`] / [`Client::rebuild_node`] — the batched, bounded-
//!   concurrency stripe-rebuild engine for bulk repair after a node loss.
//! * [`resilience`] — the §4 theorems relating redundancy `n − k` to the
//!   tolerated client (`t_p`) and storage (`t_d`) crash counts.
//!
//! # Quickstart
//!
//! ```
//! use ajx_core::{Client, ProtocolConfig, UpdateStrategy};
//! use ajx_transport::{Network, NetworkConfig};
//! use ajx_storage::ClientId;
//!
//! # fn main() -> Result<(), ajx_core::ProtocolError> {
//! // A 3-of-5 Reed-Solomon code over five storage nodes, 1 KB blocks.
//! let cfg = ProtocolConfig::new(3, 5, 1024)
//!     .expect("valid code")
//!     .with_strategy(UpdateStrategy::Parallel);
//! cfg.validate().expect("within the paper's correctness bounds");
//!
//! let net = Network::new(NetworkConfig {
//!     n_nodes: cfg.n(),
//!     block_size: cfg.block_size,
//!     ..NetworkConfig::default()
//! });
//! let client = Client::new(net.client(ClientId(1)), cfg);
//!
//! client.write_block(7, vec![0xAB; 1024])?;
//! assert_eq!(client.read_block(7)?, vec![0xAB; 1024]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
mod client;
mod config;
mod error;
pub mod mux;
mod pool;
mod rebuild;
pub mod recovery;
pub mod resilience;
mod rpc;

pub use backoff::{BackoffPolicy, BackoffSession, Jitter};
pub use client::{Client, GcReport, MonitorReport};
pub use config::{ProtocolConfig, UpdateStrategy};
pub use error::ProtocolError;
pub use mux::{run_mux_workload, MuxOptions, MuxReport};
pub use rebuild::RebuildReport;
pub use recovery::{find_consistent, RecoveryOutcome};
