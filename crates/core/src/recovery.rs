//! The online recovery procedure of §3.8 / Fig. 6, and the
//! [`find_consistent`] analysis it relies on.
//!
//! Recovery is run by *any client* that stumbles on a failed or locked
//! block. It has three phases: (1) lock all `n` stripe-blocks in index
//! order, (2) find `k + slack` blocks mutually consistent under the erasure
//! code (letting outstanding `add`s drain through the weakened L0 lock if
//! needed), (3) decode, rewrite every node, bump the epoch, and unlock.
//! A crashed recovery is picked up by the next client via the `RECONS`
//! opmode and the saved `recons_set`.

use crate::config::ProtocolConfig;
use crate::error::ProtocolError;
use crate::rpc::{call, call_many, expect_reply};
use ajx_erasure::CodeError;
use ajx_storage::{
    ClientId, Epoch, GetStateReply, LMode, NodeId, OpMode, Reply, Request, StripeId, Tid,
};
use ajx_transport::ClientEndpoint;
use std::collections::BTreeSet;

/// What a recovery attempt accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// This client completed recovery; the stripe is consistent and in a
    /// fresh epoch.
    Completed,
    /// Another client holds the recovery locks; the caller should retry its
    /// original operation after a pause.
    LostRace,
}

/// Implements Fig. 6's `find_consistent`: the largest set `S` of in-stripe
/// indices whose blocks are mutually consistent under the erasure code,
/// judged purely from tid bookkeeping.
///
/// `states[t]` is node `t`'s `get_state` reply (`t < k` data, else
/// redundant). Only `NORM` nodes are candidates (condition 1). Condition 2
/// requires all redundant members to agree on their filtered recent-tid set
/// `f̂`; condition 3 requires each data member's `f̂` to equal the
/// redundant set's tids originated at that data block.
///
/// `Ĝ` — the tids excused from comparison — is the union of *all*
/// candidates' oldlists: the two-phase GC of Fig. 7 guarantees a tid reaches
/// any oldlist only after its write completed at every node, so a larger
/// union never excuses a genuinely missing update (this realizes the paper's
/// "if tid is in some oldlist of any node, then the write has occurred at
/// all nodes").
///
/// Candidacy is judged on `opmode` alone: a `NORM` node always holds a
/// block, so a `NORM` reply with `block == None` is a metadata-only
/// `GetMeta` answer — its tid bookkeeping is exactly as authoritative as a
/// full reply's, which is what lets rebuild and degraded reads classify
/// the stripe without moving every block.
pub fn find_consistent(states: &[GetStateReply], k: usize) -> Vec<usize> {
    let candidates: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.opmode == OpMode::Norm)
        .map(|(t, _)| t)
        .collect();

    let ghat: BTreeSet<Tid> = candidates
        .iter()
        .flat_map(|&t| states[t].oldlist.iter().map(|e| e.tid))
        .collect();
    let f = |t: usize| -> BTreeSet<Tid> {
        states[t]
            .recentlist
            .iter()
            .map(|e| e.tid)
            .filter(|tid| !ghat.contains(tid))
            .collect()
    };

    let data_nodes: Vec<usize> = candidates.iter().copied().filter(|&t| t < k).collect();
    let red_nodes: Vec<usize> = candidates.iter().copied().filter(|&t| t >= k).collect();

    // Group redundant candidates by their filtered tid set (condition 2).
    let mut groups: Vec<(BTreeSet<Tid>, Vec<usize>)> = Vec::new();
    for &r in &red_nodes {
        let fr = f(r);
        match groups.iter_mut().find(|(set, _)| *set == fr) {
            Some((_, members)) => members.push(r),
            None => groups.push((fr, vec![r])),
        }
    }
    // The redundant-free set (conditions 2 and 3 vacuous): all data nodes.
    let mut best: Vec<usize> = data_nodes.clone();

    for (fset, members) in groups {
        let mut s = members;
        for &j in &data_nodes {
            // Condition 3: Ĥ(r, j) — the group's tids originated at data
            // block j — must equal f̂(j).
            let h: BTreeSet<Tid> = fset.iter().copied().filter(|t| t.block == j).collect();
            if h == f(j) {
                s.push(j);
            }
        }
        if s.len() > best.len() {
            best = s;
        }
    }
    best.sort_unstable();
    best
}

/// Runs one recovery attempt for `stripe` (Fig. 6's `recover()`).
///
/// On any error after locks were taken, a best-effort unlock is issued
/// before the error propagates: a *live* client that errors out of
/// recovery (e.g. persistent timeouts through a partition) gets no
/// failure notification, so locks it leaves behind would never expire and
/// the stripe would be bricked for everyone. The unlock itself is
/// fire-and-forget — nodes that cannot be reached stay locked until this
/// client retries (re-entrant `trylock`) or is declared failed.
///
/// # Errors
///
/// [`ProtocolError::Unrecoverable`] if no `k` consistent blocks can be
/// assembled (failure bounds of §4 exceeded); transport errors if this
/// client is killed mid-recovery (the crash-during-recovery scenario —
/// the locks it leaves behind expire and another client picks up).
pub(crate) fn recover(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    caller: ClientId,
    stripe: StripeId,
) -> Result<RecoveryOutcome, ProtocolError> {
    let mut reconstructing = false;
    let outcome = recover_inner(endpoint, cfg, caller, stripe, &mut reconstructing);
    if outcome.is_err() && !reconstructing {
        best_effort_unlock(endpoint, cfg, caller, stripe);
    }
    // Once any `reconstruct` was dispatched the stripe MUST stay locked:
    // some node may hold RECONS state pointing at the pre-recovery blocks,
    // and the next recovery will decode from that saved consistent set
    // (Fig. 6 line 9) *without re-checking it*. Unlocking here would let
    // new writes mutate those blocks first and the re-decode would
    // fabricate data. The locks are released by a recovery that finishes
    // the job, or expire when this client is declared failed (§2).
    outcome
}

fn recover_inner(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    caller: ClientId,
    stripe: StripeId,
    reconstructing: &mut bool,
) -> Result<RecoveryOutcome, ProtocolError> {
    let n = cfg.n();
    let k = cfg.k();
    let node_of = |t: usize| NodeId(cfg.layout.node_for(stripe.0, t) as u32);

    // ---- Phase 1: lock all blocks in index order (deadlock-free). ----
    let mut acquired: Vec<(usize, LMode)> = Vec::new();
    for t in 0..n {
        let reply = call(
            endpoint,
            cfg,
            node_of(t),
            Request::TryLock {
                stripe,
                lm: LMode::L1,
                caller,
            },
        )?;
        let r = expect_reply!(reply, Reply::TryLock);
        if r.ok {
            acquired.push((t, r.old_lmode));
        } else {
            // Someone else is recovering: release what we took, restoring
            // the previous lock modes (Fig. 6 line 5).
            let releases: Vec<_> = acquired
                .iter()
                .map(|&(l, old)| {
                    (
                        node_of(l),
                        Request::SetLock {
                            stripe,
                            lm: old,
                            caller,
                        },
                    )
                })
                .collect();
            for res in call_many(endpoint, cfg, releases) {
                res?;
            }
            return Ok(RecoveryOutcome::LostRace);
        }
    }

    // ---- Phase 2: read states; find a consistent set. ----
    let mut states: Vec<GetStateReply> = Vec::with_capacity(n);
    for t in 0..n {
        let reply = call(endpoint, cfg, node_of(t), Request::GetState { stripe })?;
        states.push(expect_reply!(reply, Reply::GetState));
    }

    let cset: Vec<usize> = if let Some(h) = states
        .iter()
        .position(|s| s.opmode == OpMode::Recons)
    {
        // A previous recovery crashed in phase 3: adopt its consistent set,
        // minus nodes that have failed since (Fig. 6 line 9).
        states[h]
            .recons_set
            .iter()
            .copied()
            .filter(|&j| states[j].opmode != OpMode::Init)
            .collect()
    } else {
        let init_count = states.iter().filter(|s| s.opmode == OpMode::Init).count();
        let slack = (cfg.t_d as i64 - init_count as i64).max(0) as usize;
        // We first aim for k + slack consistent blocks so that `slack`
        // further node failures during recovery remain survivable (Fig. 6
        // line 13); if draining outstanding adds cannot get there (their
        // writers may be dead, §3.10), we settle for any k.
        let mut required = k + slack;
        let mut cset = find_consistent(&states, k);
        let mut patience = 0u32;
        let mut backoff = cfg
            .backoff
            .session((u64::from(caller.0) << 40) ^ (stripe.0 << 8) ^ 5);
        loop {
            if cset.len() >= required {
                // Re-acquire full locks before new adds slip in (Fig. 6
                // line 19); drop members whose recentlist moved meanwhile.
                let relocks: Vec<_> = (k..n)
                    .map(|t| {
                        (
                            node_of(t),
                            Request::GetRecent {
                                stripe,
                                lm: LMode::L1,
                                caller,
                            },
                        )
                    })
                    .collect();
                let lists: Vec<_> = call_many(endpoint, cfg, relocks)
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?;
                for (t, reply) in (k..n).zip(lists) {
                    let list = expect_reply!(reply, Reply::GetRecent);
                    if list != states[t].recentlist {
                        cset.retain(|&j| j != t);
                    }
                }
                if cset.len() >= required {
                    break;
                }
            }
            patience += 1;
            if patience > cfg.drain_patience {
                if required > k {
                    // Outstanding writes are not completing (dead
                    // clients): give up on the slack margin.
                    required = k;
                    patience = 0;
                    continue;
                }
                unlock_all(endpoint, cfg, caller, stripe, n)?;
                return Err(ProtocolError::Unrecoverable {
                    stripe,
                    reason: format!(
                        "only {} consistent blocks found, {k} required",
                        cset.len()
                    ),
                });
            }
            // Weaken redundant locks to L0 so outstanding adds can land
            // and make blocks consistent (Fig. 6 lines 14-18).
            let weaken: Vec<_> = (k..n)
                .map(|t| {
                    (
                        node_of(t),
                        Request::SetLock {
                            stripe,
                            lm: LMode::L0,
                            caller,
                        },
                    )
                })
                .collect();
            for res in call_many(endpoint, cfg, weaken) {
                res?;
            }
            for _ in 0..8 {
                let reads: Vec<_> = (k..n)
                    .map(|t| (node_of(t), Request::GetState { stripe }))
                    .collect();
                for (t, res) in (k..n).zip(call_many(endpoint, cfg, reads)) {
                    states[t] = expect_reply!(res?, Reply::GetState);
                }
                cset = find_consistent(&states, k);
                if cset.len() >= required {
                    break;
                }
                backoff.pause();
            }
        }
        cset
    };

    if cset.len() < k {
        unlock_all(endpoint, cfg, caller, stripe, n)?;
        return Err(ProtocolError::Unrecoverable {
            stripe,
            reason: format!(
                "consistent set has {} blocks but the code needs {k}",
                cset.len()
            ),
        });
    }

    // ---- Phase 3: decode, rewrite, advance epoch, unlock. ----
    // Family-aware member choice: for Reed-Solomon any k members decode
    // (first k); for an LRC some k-subsets are rank-deficient, so the code
    // picks a decodable one from the whole consistent set.
    let Some(key) = cfg.code.select_decode_indices(&cset) else {
        unlock_all(endpoint, cfg, caller, stripe, n)?;
        return Err(ProtocolError::Unrecoverable {
            stripe,
            reason: format!("consistent set {cset:?} does not determine the data"),
        });
    };
    let blocks = reconstruct_blocks(cfg, &key, &mut states)?;

    // `blocks` owns the reconstructed stripe and has no further use: move
    // each block into its Reconstruct request rather than cloning n blocks.
    let writes: Vec<_> = blocks
        .into_iter()
        .enumerate()
        .map(|(t, block)| {
            (
                node_of(t),
                Request::Reconstruct {
                    stripe,
                    cset: cset.clone(),
                    block,
                },
            )
        })
        .collect();
    // Point of no return: from the first `reconstruct` onwards the locks
    // must survive any error (see `recover`).
    *reconstructing = true;
    let mut max_epoch = Epoch(0);
    for res in call_many(endpoint, cfg, writes) {
        let ep = expect_reply!(res?, Reply::Reconstruct);
        max_epoch = max_epoch.max(ep);
    }

    let finals: Vec<_> = (0..n)
        .map(|t| {
            (
                node_of(t),
                Request::Finalize {
                    stripe,
                    epoch: max_epoch.next(),
                },
            )
        })
        .collect();
    for res in call_many(endpoint, cfg, finals) {
        res?;
    }
    Ok(RecoveryOutcome::Completed)
}

/// Decodes the full stripe from the consistent members `key` (exactly `k`
/// in-stripe indices) and re-encodes the redundancy, returning all `n`
/// blocks in index order.
///
/// This is the shared decode heart of phase 3 and the rebuild engine: the
/// Vandermonde inversion comes from `cfg.plan_cache` (computed once per
/// erasure pattern, not once per stripe), scratch buffers come from the
/// thread-local [`crate::pool`], and the fetched state blocks are handed
/// back to that pool once decoded — steady-state reconstruction of a long
/// run of stripes allocates nothing.
pub(crate) fn reconstruct_blocks(
    cfg: &ProtocolConfig,
    key: &[usize],
    states: &mut [GetStateReply],
) -> Result<Vec<Vec<u8>>, CodeError> {
    let k = cfg.k();
    let p = cfg.n() - k;
    let plan = cfg.plan_cache.plan(&cfg.code, key)?;
    let len = key
        .first()
        .and_then(|&t| states[t].block.as_ref())
        .map_or(0, |b| b.len());
    let mut data: Vec<Vec<u8>> = (0..k).map(|_| crate::pool::take(len)).collect();
    let mut red: Vec<Vec<u8>> = (0..p).map(|_| crate::pool::take(len)).collect();
    let decoded = {
        // A `None` block (impossible for consistent members) surfaces as a
        // WrongBlockCount error from `decode_into`, not a panic.
        let shares: Vec<&[u8]> = key
            .iter()
            .filter_map(|&t| states[t].block.as_deref())
            .collect();
        let mut out: Vec<&mut [u8]> = data.iter_mut().map(|b| b.as_mut_slice()).collect();
        plan.decode_into(&shares, &mut out)
    }
    .and_then(|()| {
        let mut out: Vec<&mut [u8]> = red.iter_mut().map(|b| b.as_mut_slice()).collect();
        cfg.code.encode_into(&data, &mut out)
    });
    give_blocks(states);
    data.extend(red);
    match decoded {
        Ok(()) => Ok(data),
        Err(e) => {
            for b in data {
                crate::pool::give(b);
            }
            Err(e)
        }
    }
}

/// Returns every fetched state block to the thread-local buffer pool.
fn give_blocks(states: &mut [GetStateReply]) {
    for s in states.iter_mut() {
        if let Some(b) = s.block.take() {
            crate::pool::give(b);
        }
    }
}

/// Decides whether a degraded read of data block `i` can be served
/// lock-free from one round of `GetState`/`GetMeta` replies (DESIGN.md §8),
/// and if so returns the full validated consistent set — the caller asks
/// [`CodeFamily::repair_plan`](ajx_erasure::CodeFamily::repair_plan) for
/// the cheapest share subset to actually decode from.
///
/// `states` must be `n` entries in in-stripe index order; node `i` itself
/// and unreachable peers are represented by `INIT` placeholders (never
/// candidates). The read is safe only when every tid question has one
/// answer:
///
/// 1. **No node is in `RECONS`** — a crashed recovery pins a saved
///    consistent set that this reader has not adopted; decoding around it
///    could disagree with the recovery's eventual outcome.
/// 2. **`find_consistent` yields ≥ k members including a redundant node**
///    — fewer means a write is mid-drain (or too many failures), and a
///    data-only set says nothing about block `i`.
/// 3. **Block-`i` tid agreement** — every candidate's view of outstanding
///    block-`i` writes (recentlist tids with `tid.block == i`, minus the
///    GC'd `Ĝ`) must match the chosen set's view. A write that *completed*
///    put its add on all redundant nodes, so candidates always agree on
///    it; disagreement can only come from a write still draining, which is
///    exactly when lock-free decoding of block `i` is ambiguous.
///
/// Returns `None` on any ambiguity: the caller falls back to Fig. 6
/// recovery, which drains and settles the question under locks.
pub(crate) fn degraded_plan(states: &[GetStateReply], k: usize, i: usize) -> Option<Vec<usize>> {
    if states.iter().any(|s| s.opmode == OpMode::Recons) {
        return None;
    }
    let cset = find_consistent(states, k);
    if cset.len() < k {
        return None;
    }
    let candidates: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.opmode == OpMode::Norm)
        .map(|(t, _)| t)
        .collect();
    let ghat: BTreeSet<Tid> = candidates
        .iter()
        .flat_map(|&t| states[t].oldlist.iter().map(|e| e.tid))
        .collect();
    let block_i_tids = |t: usize| -> BTreeSet<Tid> {
        states[t]
            .recentlist
            .iter()
            .map(|e| e.tid)
            .filter(|tid| tid.block == i && !ghat.contains(tid))
            .collect()
    };
    let visible: BTreeSet<Tid> = candidates.iter().flat_map(|&t| block_i_tids(t)).collect();
    // A set of ≥ k members that excludes `i` must contain a redundant node;
    // its filtered block-`i` tids are what the decode will reflect.
    let r = cset.iter().copied().find(|&t| t >= k)?;
    if block_i_tids(r) != visible {
        return None;
    }
    Some(cset)
}

/// Lock-free degraded read of data block `i` (DESIGN.md §8 and §12): one
/// batched round to the `n − 1` peers — full `GetState` to the code's
/// cheapest expected repair set, metadata-only `GetMeta` to the rest —
/// [`degraded_plan`] on the replies, and a client-side single-block decode
/// via the repair-plan cache. No locks are taken and no recovery is
/// triggered.
///
/// On an LRC the optimistic repair set is the lost block's local group
/// (~`k/g + 1` blocks instead of `k`), so the common-case read moves far
/// fewer payload bytes. If the validated consistent set forces a different
/// repair set, the missing blocks are fetched in a second round, guarded
/// against concurrent mutation by tid-bookkeeping equality with the round
/// that [`degraded_plan`] validated.
///
/// Returns `Ok(None)` whenever the lock-free path is not safe (peers
/// unreachable, writes draining, crashed recovery in progress) — the
/// caller then falls back to [`recover`]. Transport errors are folded into
/// `Ok(None)` too: a peer we cannot reach is simply not a candidate.
pub(crate) fn degraded_read(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    stripe: StripeId,
    i: usize,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let n = cfg.n();
    let k = cfg.k();
    let node_of = |t: usize| NodeId(cfg.layout.node_for(stripe.0, t) as u32);
    let peers: Vec<usize> = (0..n).filter(|&t| t != i).collect();
    // Optimistic guess: every peer healthy and consistent — which blocks
    // would the cheapest repair of `i` read? Those get a full `GetState`;
    // the rest answer metadata-only.
    let optimistic: BTreeSet<usize> = cfg
        .plan_cache
        .repair(&cfg.code, i, &peers)
        .map(|p| p.indices().collect())
        .unwrap_or_default();
    let calls: Vec<(NodeId, Request)> = peers
        .iter()
        .map(|&t| {
            let req = if optimistic.contains(&t) {
                Request::GetState { stripe }
            } else {
                Request::GetMeta { stripe }
            };
            (node_of(t), req)
        })
        .collect();
    let placeholder = || GetStateReply {
        opmode: OpMode::Init,
        recons_set: vec![],
        oldlist: vec![],
        recentlist: vec![],
        block: None,
        epoch: Epoch(0),
    };
    let mut states: Vec<GetStateReply> = (0..n).map(|_| placeholder()).collect();
    for (&t, res) in peers.iter().zip(call_many(endpoint, cfg, calls)) {
        if let Ok(Reply::GetState(s)) = res {
            states[t] = s;
        }
    }
    let Some(cset) = degraded_plan(&states, k, i) else {
        give_blocks(&mut states);
        return Ok(None);
    };
    // The consistent set is validated; now pick the cheapest repair inside
    // it. A set that cannot repair `i` at all (LRC rank deficit) is as
    // ambiguous as any other failure: fall back.
    let Some(plan) = cfg.plan_cache.repair(&cfg.code, i, &cset) else {
        give_blocks(&mut states);
        return Ok(None);
    };
    // Second round for plan members the optimistic guess did not fetch.
    // The late block is only usable if the node's tid bookkeeping did not
    // move since the round `degraded_plan` validated — any drift means a
    // write or recovery is interleaving, so fall back (TOCTOU guard).
    let missing: Vec<usize> = plan
        .indices()
        .filter(|&t| states[t].block.is_none())
        .collect();
    if !missing.is_empty() {
        let fetch: Vec<(NodeId, Request)> = missing
            .iter()
            .map(|&t| (node_of(t), Request::GetState { stripe }))
            .collect();
        for (&t, res) in missing.iter().zip(call_many(endpoint, cfg, fetch)) {
            match res {
                Ok(Reply::GetState(s))
                    if s.opmode == states[t].opmode
                        && s.recentlist == states[t].recentlist
                        && s.oldlist == states[t].oldlist
                        && s.epoch == states[t].epoch =>
                {
                    states[t] = s;
                }
                _ => {
                    give_blocks(&mut states);
                    return Ok(None);
                }
            }
        }
    }
    let shares: Vec<&[u8]> = plan
        .indices()
        .filter_map(|t| states[t].block.as_deref())
        .collect();
    let len = shares.first().map_or(0, |s| s.len());
    let mut out = crate::pool::take(len);
    // Decode errors mean ragged or missing shares — not a state the
    // protocol produces, but the conservative answer is the same as for
    // any other ambiguity: fall back to recovery.
    let decoded = match plan.reconstruct_into(&shares, &mut out) {
        Ok(()) => Some(out),
        Err(_) => {
            crate::pool::give(out);
            None
        }
    };
    drop(shares);
    give_blocks(&mut states);
    Ok(decoded)
}

fn unlock_all(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    caller: ClientId,
    stripe: StripeId,
    n: usize,
) -> Result<(), ProtocolError> {
    let releases: Vec<_> = (0..n)
        .map(|t| {
            (
                NodeId(cfg.layout.node_for(stripe.0, t) as u32),
                Request::SetLock {
                    stripe,
                    lm: LMode::Unl,
                    caller,
                },
            )
        })
        .collect();
    for res in call_many(endpoint, cfg, releases) {
        res?;
    }
    Ok(())
}

/// Fire-and-forget unlock for error paths: release whatever locks this
/// client still holds without letting a second failure mask the original
/// error. Unreachable nodes are simply skipped.
fn best_effort_unlock(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    caller: ClientId,
    stripe: StripeId,
) {
    let releases: Vec<_> = (0..cfg.n())
        .map(|t| {
            (
                NodeId(cfg.layout.node_for(stripe.0, t) as u32),
                Request::SetLock {
                    stripe,
                    lm: LMode::Unl,
                    caller,
                },
            )
        })
        .collect();
    let _ = endpoint.call_many(releases);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_storage::TidEntry;

    fn tid(seq: u64, block: usize) -> Tid {
        Tid::new(seq, block, ClientId(1))
    }

    fn entry(seq: u64, block: usize, time: u64) -> TidEntry {
        TidEntry {
            tid: tid(seq, block),
            time,
        }
    }

    fn state(
        opmode: OpMode,
        recent: Vec<TidEntry>,
        old: Vec<TidEntry>,
        block: Option<Vec<u8>>,
    ) -> GetStateReply {
        GetStateReply {
            opmode,
            recons_set: vec![],
            oldlist: old,
            recentlist: recent,
            block,
            epoch: Epoch(0),
        }
    }

    fn norm(recent: Vec<TidEntry>) -> GetStateReply {
        state(OpMode::Norm, recent, vec![], Some(vec![0]))
    }

    #[test]
    fn all_quiet_stripe_is_fully_consistent() {
        // k = 2, n = 4, no outstanding writes anywhere.
        let states = vec![norm(vec![]), norm(vec![]), norm(vec![]), norm(vec![])];
        assert_eq!(find_consistent(&states, 2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn completed_write_everywhere_is_consistent() {
        let t = entry(1, 0, 1);
        let states = vec![
            norm(vec![t]),
            norm(vec![]),
            norm(vec![t]),
            norm(vec![t]),
        ];
        assert_eq!(find_consistent(&states, 2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn partial_write_splits_the_redundant_nodes() {
        // Write to block 0 reached data node 0 and redundant node 2, but
        // not redundant node 3: nodes {0, 1, 2} are consistent (new value),
        // and {1, 3} is the old-value alternative; the larger wins.
        let t = entry(1, 0, 1);
        let states = vec![
            norm(vec![t]),
            norm(vec![]),
            norm(vec![t]),
            norm(vec![]),
        ];
        assert_eq!(find_consistent(&states, 2), vec![0, 1, 2]);
    }

    #[test]
    fn swap_without_any_adds_excludes_the_data_node() {
        // The write reached only the data node: redundancy agrees on "no
        // write", so the consistent set is everyone else.
        let t = entry(1, 0, 1);
        let states = vec![
            norm(vec![t]),
            norm(vec![]),
            norm(vec![]),
            norm(vec![]),
        ];
        assert_eq!(find_consistent(&states, 2), vec![1, 2, 3]);
    }

    #[test]
    fn init_nodes_are_never_candidates() {
        let states = vec![
            norm(vec![]),
            state(OpMode::Init, vec![], vec![], None),
            norm(vec![]),
            norm(vec![]),
        ];
        assert_eq!(find_consistent(&states, 2), vec![0, 2, 3]);
    }

    #[test]
    fn oldlist_membership_excuses_recentlist_differences() {
        // tid was GC'd to oldlist at node 2 but still in recentlist at
        // node 3: Ĝ contains it, so both count as having it.
        let t = entry(1, 0, 1);
        let states = vec![
            norm(vec![]),
            norm(vec![]),
            state(OpMode::Norm, vec![], vec![t], Some(vec![0])),
            norm(vec![t]),
        ];
        assert_eq!(find_consistent(&states, 2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_concurrent_partial_writes_pick_the_largest_alternative() {
        // Writes to blocks 0 and 1; block-0's write landed on both
        // redundant nodes, block-1's only on node 3.
        let t0 = entry(1, 0, 1);
        let t1 = entry(2, 1, 1);
        let states = vec![
            norm(vec![t0]),
            norm(vec![t1]),
            norm(vec![t0]),
            norm(vec![TidEntry { tid: t0.tid, time: 2 }, t1]),
        ];
        // {0, 2} agree on {t0}; node 3 has {t0, t1} which matches data
        // {0, 1} jointly: S = {0, 1, 3}. {0, 2} ∪ {} = {0,2} smaller.
        let got = find_consistent(&states, 2);
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn no_redundant_agreement_still_returns_data_nodes() {
        // Both redundant nodes saw different partial histories; the data
        // nodes alone form the best consistent set.
        let t0 = entry(1, 0, 1);
        let t1 = entry(2, 1, 1);
        let states = vec![
            norm(vec![t0]),
            norm(vec![t1]),
            norm(vec![t0]),
            norm(vec![t1]),
        ];
        // Group {2}: fset {t0} matches data 0 (f={t0}) but not data 1 →
        // S = {0, 2}; group {3}: S = {1, 3}; data-only S = {0, 1}. All
        // size 2; any is acceptable — we just need *a* maximal one.
        let got = find_consistent(&states, 2);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_input_gives_empty_set() {
        assert!(find_consistent(&[], 2).is_empty());
    }

    fn absent() -> GetStateReply {
        state(OpMode::Init, vec![], vec![], None)
    }

    #[test]
    fn degraded_plan_quiet_stripe_decodes_from_first_k_members() {
        // k = 2, n = 4, node 0 crashed (placeholder), nobody writing.
        let states = vec![absent(), norm(vec![]), norm(vec![]), norm(vec![])];
        assert_eq!(degraded_plan(&states, 2, 0), Some(vec![1, 2, 3]));
    }

    #[test]
    fn degraded_plan_refuses_while_a_recovery_is_reconstructing() {
        let mut states = vec![absent(), norm(vec![]), norm(vec![]), norm(vec![])];
        states[3].opmode = OpMode::Recons;
        states[3].block = None;
        assert_eq!(degraded_plan(&states, 2, 0), None);
    }

    #[test]
    fn degraded_plan_needs_k_consistent_members() {
        // Only one peer reachable: nothing to decode from.
        let states = vec![absent(), norm(vec![]), absent(), absent()];
        assert_eq!(degraded_plan(&states, 2, 0), None);
    }

    #[test]
    fn degraded_plan_refuses_a_data_only_consistent_set() {
        // Redundant nodes disagree with each other and with the data
        // nodes, so the best set is data-only — it cannot answer for the
        // missing block i even if it reaches k members.
        let t0 = entry(1, 1, 1);
        let t1 = entry(2, 2, 1);
        let states = vec![
            absent(),
            norm(vec![]),
            norm(vec![]),
            norm(vec![t0]),
            norm(vec![t1]),
        ];
        // k = 3: candidates 1,2 are data; 3,4 are redundant but split.
        assert_eq!(degraded_plan(&states, 3, 0), None);
    }

    #[test]
    fn degraded_plan_rejects_a_draining_write_the_chosen_set_missed() {
        // n = 5, k = 2, reading block 0. A write to block 0 swapped at the
        // (now crashed) data node and added only at redundant node 2; the
        // larger consistent set {1, 3, 4} has not seen it. The union view
        // {t} disagrees with the chosen set's view {} → ambiguous.
        let t = entry(1, 0, 1);
        let states = vec![
            absent(),
            norm(vec![]),
            norm(vec![t]),
            norm(vec![]),
            norm(vec![]),
        ];
        assert_eq!(degraded_plan(&states, 2, 0), None);
    }

    #[test]
    fn degraded_plan_accepts_when_the_chosen_set_carries_the_write() {
        // Same shape, n = 4: the group holding the write ties the empty
        // group at size 2 but is found first via data node 1; either way
        // the chosen set must agree with the union view to decode.
        let t = entry(1, 0, 1);
        let states = vec![absent(), norm(vec![]), norm(vec![t]), norm(vec![t])];
        // Redundant group {2, 3} agrees on {t}; union view is {t}: safe.
        assert_eq!(degraded_plan(&states, 2, 0), Some(vec![1, 2, 3]));
    }

    #[test]
    fn degraded_plan_ignores_drains_for_other_blocks() {
        // A write to block 1 is mid-drain, but we are reading block 0:
        // block-0 tid views all agree (empty), so the read is safe as long
        // as find_consistent still yields k members agreeing on block 1.
        let t = entry(1, 1, 1);
        let states = vec![
            absent(),
            norm(vec![t]),
            norm(vec![t]),
            norm(vec![]),
        ];
        // Group {2} matches data node 1 → S = {1, 2}; group {3} does not.
        assert_eq!(degraded_plan(&states, 2, 0), Some(vec![1, 2]));
    }

    #[test]
    fn degraded_plan_gcd_writes_are_not_ambiguous() {
        // The write completed long ago and was GC'd to an oldlist at node
        // 2 while node 3 still lists it: Ĝ excuses it on both sides.
        let t = entry(1, 0, 1);
        let states = vec![
            absent(),
            norm(vec![]),
            state(OpMode::Norm, vec![], vec![t], Some(vec![0])),
            norm(vec![t]),
        ];
        assert_eq!(degraded_plan(&states, 2, 0), Some(vec![1, 2, 3]));
    }

    #[test]
    fn metadata_only_norm_replies_are_candidates() {
        // A `GetMeta` answer is a NORM reply with no block: it must count
        // for consistency analysis exactly like a full reply, or the
        // byte-thrifty rebuild/degraded-read rounds would shrink the set.
        let meta = |recent: Vec<TidEntry>| state(OpMode::Norm, recent, vec![], None);
        let states = vec![norm(vec![]), meta(vec![]), norm(vec![]), meta(vec![])];
        assert_eq!(find_consistent(&states, 2), vec![0, 1, 2, 3]);
        let states = vec![absent(), meta(vec![]), norm(vec![]), norm(vec![])];
        assert_eq!(degraded_plan(&states, 2, 0), Some(vec![1, 2, 3]));
    }
}
