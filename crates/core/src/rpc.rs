//! Typed RPC helpers: thin wrappers over the transport that unwrap reply
//! variants and implement the §3.5 directory behaviour (auto-remap of
//! crashed nodes) so the protocol code reads like the paper's pseudocode.

use crate::config::ProtocolConfig;
use crate::error::ProtocolError;
use ajx_storage::{NodeId, Reply, Request};
use ajx_transport::{ClientEndpoint, RpcError};

/// Issues `req`, transparently remapping a crashed node once (§3.5: "clients
/// simply access some logical node, which gets remapped on failures") and
/// re-sending *idempotent* requests that failed indeterminately (timeout /
/// lost reply / torn-down worker) up to the configured retry budget, with
/// backoff between attempts.
///
/// Non-idempotent requests (`swap`, `add`) are never re-sent: the first
/// copy may have executed, and executing twice corrupts the write. Their
/// timeouts surface to the protocol layer, which owns the recovery story.
///
/// # Errors
///
/// Propagates transport errors that remapping and the retry budget cannot
/// fix (client killed, unknown node, node crashed again immediately,
/// persistent timeouts).
pub(crate) fn call(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    node: NodeId,
    req: Request,
) -> Result<Reply, ProtocolError> {
    let mut backoff = cfg
        .backoff
        .session(u64::from(endpoint.id().0) << 32 | u64::from(node.0));
    let mut resends = 0u32;
    loop {
        match endpoint.call(node, req.clone()) {
            Ok(reply) => return Ok(reply),
            Err(RpcError::NodeDown(_)) if cfg.auto_remap => {
                // A crash is determinate — no reason to burn retry budget.
                endpoint.network().remap_node(node, cfg.remap_garbage);
                return endpoint.call(node, req).map_err(ProtocolError::from);
            }
            Err(e)
                if e.is_indeterminate()
                    && req.is_idempotent()
                    && resends < cfg.backoff.rpc_retry_budget =>
            {
                resends += 1;
                backoff.pause();
            }
            // Busy is shed *before* the node's queue — determinate, so
            // even non-idempotent requests are safely resent after the
            // same jittered backoff as a timeout. No remap: the node is
            // healthy, just saturated.
            Err(RpcError::Busy(_)) if resends < cfg.backoff.rpc_retry_budget => {
                resends += 1;
                backoff.pause();
            }
            Err(e) => return Err(ProtocolError::from(e)),
        }
    }
}

/// Parallel fan-out (`pfor`) with the same auto-remap and idempotent-retry
/// semantics per call. Failed calls are retried serially after the batch —
/// the slow path only exists under faults.
pub(crate) fn call_many(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    calls: Vec<(NodeId, Request)>,
) -> Vec<Result<Reply, ProtocolError>> {
    let retry_targets: Vec<(NodeId, Request)> = calls.clone();
    let first = endpoint.call_many(calls);
    first
        .into_iter()
        .zip(retry_targets)
        .map(|(res, (node, req))| match res {
            Ok(reply) => Ok(reply),
            Err(RpcError::NodeDown(_)) if cfg.auto_remap => {
                endpoint.network().remap_node(node, cfg.remap_garbage);
                endpoint.call(node, req).map_err(ProtocolError::from)
            }
            Err(e)
                if e.is_indeterminate()
                    && req.is_idempotent()
                    && cfg.backoff.rpc_retry_budget > 0 =>
            {
                call(endpoint, cfg, node, req)
            }
            // Shed by a full queue, never executed: retry any request.
            Err(RpcError::Busy(_)) if cfg.backoff.rpc_retry_budget > 0 => {
                call(endpoint, cfg, node, req)
            }
            Err(e) => Err(ProtocolError::from(e)),
        })
        .collect()
}

/// Unwraps a reply variant; a cross-variant mismatch returns
/// [`ProtocolError::UnexpectedReply`] from the enclosing function — a
/// malformed reply is a node-side fault and must not crash the client.
macro_rules! expect_reply {
    ($reply:expr, $variant:path) => {
        match $reply {
            $variant(inner) => inner,
            other => {
                return Err($crate::error::ProtocolError::unexpected(
                    stringify!($variant),
                    &other,
                ))
            }
        }
    };
}
pub(crate) use expect_reply;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ajx_storage::{ClientId, StripeId};
    use ajx_transport::{Network, NetworkConfig};

    fn setup(auto_remap: bool) -> (std::sync::Arc<Network>, ClientEndpoint, ProtocolConfig) {
        let mut cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        cfg.auto_remap = auto_remap;
        let net = Network::new(NetworkConfig {
            n_nodes: 4,
            block_size: 16,
            ..NetworkConfig::default()
        });
        let ep = net.client(ClientId(1));
        (net, ep, cfg)
    }

    #[test]
    fn call_remaps_a_crashed_node_transparently() {
        let (net, ep, cfg) = setup(true);
        net.crash_node(NodeId(2));
        // The directory behaviour (§3.5): the call lands on the fresh
        // INIT replacement instead of erroring.
        let reply = call(&ep, &cfg, NodeId(2), Request::Read { stripe: StripeId(0) }).unwrap();
        match reply {
            Reply::Read(r) => assert!(r.block.is_none(), "INIT node returns ⊥"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(net.node_is_up(NodeId(2)));
    }

    #[test]
    fn call_without_auto_remap_surfaces_node_down() {
        let (net, ep, cfg) = setup(false);
        net.crash_node(NodeId(1));
        let err = call(&ep, &cfg, NodeId(1), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::NodeDown(_))
        ));
        assert!(!net.node_is_up(NodeId(1)), "no remap requested");
    }

    #[test]
    fn call_many_remaps_only_the_down_targets() {
        let (net, ep, cfg) = setup(true);
        net.crash_node(NodeId(0));
        net.crash_node(NodeId(3));
        let calls: Vec<_> = (0..4)
            .map(|i| (NodeId(i), Request::Read { stripe: StripeId(0) }))
            .collect();
        let replies = call_many(&ep, &cfg, calls);
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(Result::is_ok));
        // Remapped nodes answer ⊥; healthy nodes answer content.
        for (i, r) in replies.into_iter().enumerate() {
            let Reply::Read(read) = r.unwrap() else { panic!() };
            if i == 0 || i == 3 {
                assert!(read.block.is_none(), "node {i} is INIT after remap");
            } else {
                assert!(read.block.is_some(), "node {i} untouched");
            }
        }
    }

    /// A network whose default link drops every request, with a short call
    /// timeout and a zero-sleep backoff policy carrying `budget` re-sends.
    fn setup_black_hole(
        budget: u32,
        auto_remap: bool,
    ) -> (std::sync::Arc<Network>, ClientEndpoint, ProtocolConfig) {
        use std::time::Duration;
        let mut cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        cfg.auto_remap = auto_remap;
        cfg.backoff = crate::backoff::BackoffPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            multiplier: 2,
            jitter: crate::backoff::Jitter::None,
            rpc_retry_budget: budget,
            busy_retry_budget: budget,
        };
        let net = Network::new(NetworkConfig {
            n_nodes: 4,
            block_size: 16,
            call_timeout: Some(Duration::from_millis(20)),
            ..NetworkConfig::default()
        });
        let ep = net.client(ClientId(1));
        (net, ep, cfg)
    }

    fn drop_all_requests() -> ajx_transport::LinkFaults {
        ajx_transport::LinkFaults {
            drop_req: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn idempotent_timeout_is_retried_up_to_the_budget() {
        let (net, ep, cfg) = setup_black_hole(3, true);
        net.faults().set_link(ClientId(1), NodeId(0), drop_all_requests());
        net.faults().set_tracing(true);
        let err = call(&ep, &cfg, NodeId(0), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::Timeout(_))
        ));
        let drops = net
            .faults()
            .take_trace()
            .iter()
            .filter(|l| l.contains("drop-req"))
            .count();
        assert_eq!(drops, 4, "initial send plus three budgeted re-sends");
    }

    #[test]
    fn non_idempotent_timeout_is_never_resent() {
        let (net, ep, cfg) = setup_black_hole(3, true);
        net.faults().set_link(ClientId(1), NodeId(0), drop_all_requests());
        net.faults().set_tracing(true);
        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![7; 16],
            ntid: ajx_storage::Tid::new(1, 0, ClientId(1)),
        };
        let err = call(&ep, &cfg, NodeId(0), swap).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::Timeout(_))
        ));
        let drops = net
            .faults()
            .take_trace()
            .iter()
            .filter(|l| l.contains("drop-req"))
            .count();
        assert_eq!(drops, 1, "a swap may already have executed; one send only");
    }

    #[test]
    fn timeout_is_not_misdiagnosed_as_a_crash_and_remapped() {
        let (net, ep, cfg) = setup_black_hole(1, true);
        // Seed node 0 with content before the link goes bad.
        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![9; 16],
            ntid: ajx_storage::Tid::new(1, 0, ClientId(1)),
        };
        call(&ep, &cfg, NodeId(0), swap).unwrap();
        net.faults().set_link(ClientId(1), NodeId(0), drop_all_requests());
        let err = call(&ep, &cfg, NodeId(0), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::Timeout(_))
        ));
        // Heal the link: the node must still hold its block. A remap (the
        // old NodeDown handling) would have wiped it to an INIT replacement.
        net.faults().clear();
        let reply = call(&ep, &cfg, NodeId(0), Request::Read { stripe: StripeId(0) }).unwrap();
        let Reply::Read(read) = reply else { panic!() };
        assert_eq!(read.block.as_deref(), Some(&[9u8; 16][..]));
    }

    #[test]
    fn busy_retries_even_non_idempotent_requests_then_succeeds() {
        use std::time::Duration;
        let mut cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        cfg.backoff = crate::backoff::BackoffPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            multiplier: 2,
            jitter: crate::backoff::Jitter::None,
            rpc_retry_budget: 3,
            busy_retry_budget: 3,
        };
        let net = Network::new(NetworkConfig {
            n_nodes: 4,
            block_size: 16,
            server_threads: 1,
            node_queue_depth: Some(1),
            ..NetworkConfig::default()
        });
        let ep = net.client(ClientId(1));
        // Saturate node 0 deterministically: the paused worker holds one
        // job, a second fills the depth-1 queue.
        net.pause_node(NodeId(0));
        let mut held = ep.submit_call(NodeId(0), Request::Read { stripe: StripeId(0) });
        while net.node_queue_len(NodeId(0)) > 0 {
            std::thread::yield_now();
        }
        let mut queued = ep.submit_call(NodeId(0), Request::Read { stripe: StripeId(0) });

        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![7; 16],
            ntid: ajx_storage::Tid::new(1, 0, ClientId(1)),
        };
        let sent_before = ep.stats().snapshot().msgs_sent;
        // Busy is determinate, so even the non-idempotent swap burns the
        // whole retry budget (unlike a timeout, which sends it once) —
        // and surfaces as Busy, not as a remap-triggering NodeDown.
        let err = call(&ep, &cfg, NodeId(0), swap.clone()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::Busy(_))
        ));
        assert_eq!(
            ep.stats().snapshot().msgs_sent - sent_before,
            4,
            "initial send plus three budgeted re-sends"
        );
        assert!(net.node_is_up(NodeId(0)), "saturation must not trigger remap");

        // Once the node drains, the same swap goes through.
        net.resume_node(NodeId(0));
        for call_slot in [&mut held, &mut queued] {
            while ep.poll_call(call_slot).is_none() {
                std::thread::yield_now();
            }
        }
        let reply = call(&ep, &cfg, NodeId(0), swap).unwrap();
        assert!(matches!(reply, Reply::Swap(_)));
    }

    #[test]
    fn killed_client_error_is_not_remapped_away() {
        let (_net, ep, cfg) = setup(true);
        ep.kill_after(0);
        let err = call(&ep, &cfg, NodeId(0), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::ClientKilled)
        ));
    }
}
