//! Typed RPC helpers: thin wrappers over the transport that unwrap reply
//! variants and implement the §3.5 directory behaviour (auto-remap of
//! crashed nodes) so the protocol code reads like the paper's pseudocode.

use crate::config::ProtocolConfig;
use crate::error::ProtocolError;
use ajx_storage::{NodeId, Reply, Request};
use ajx_transport::{ClientEndpoint, RpcError};

/// Issues `req`, transparently remapping a crashed node once (§3.5: "clients
/// simply access some logical node, which gets remapped on failures").
///
/// # Errors
///
/// Propagates transport errors that remapping cannot fix (client killed,
/// unknown node, node crashed again immediately).
pub(crate) fn call(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    node: NodeId,
    req: Request,
) -> Result<Reply, ProtocolError> {
    match endpoint.call(node, req.clone()) {
        Ok(reply) => Ok(reply),
        Err(RpcError::NodeDown(_)) if cfg.auto_remap => {
            endpoint.network().remap_node(node, cfg.remap_garbage);
            endpoint.call(node, req).map_err(ProtocolError::from)
        }
        Err(e) => Err(ProtocolError::from(e)),
    }
}

/// Parallel fan-out (`pfor`) with the same auto-remap semantics per call.
pub(crate) fn call_many(
    endpoint: &ClientEndpoint,
    cfg: &ProtocolConfig,
    calls: Vec<(NodeId, Request)>,
) -> Vec<Result<Reply, ProtocolError>> {
    let retry_targets: Vec<(NodeId, Request)> = calls.clone();
    let first = endpoint.call_many(calls);
    first
        .into_iter()
        .zip(retry_targets)
        .map(|(res, (node, req))| match res {
            Ok(reply) => Ok(reply),
            Err(RpcError::NodeDown(_)) if cfg.auto_remap => {
                endpoint.network().remap_node(node, cfg.remap_garbage);
                endpoint.call(node, req).map_err(ProtocolError::from)
            }
            Err(e) => Err(ProtocolError::from(e)),
        })
        .collect()
}

/// Unwraps a reply variant, panicking on a cross-variant mismatch — that
/// would be an internal protocol bug, not a runtime condition.
macro_rules! expect_reply {
    ($reply:expr, $variant:path) => {
        match $reply {
            $variant(inner) => inner,
            other => unreachable!(
                "storage node answered {:?} to a {} request",
                other,
                stringify!($variant)
            ),
        }
    };
}
pub(crate) use expect_reply;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ajx_storage::{ClientId, StripeId};
    use ajx_transport::{Network, NetworkConfig};

    fn setup(auto_remap: bool) -> (std::sync::Arc<Network>, ClientEndpoint, ProtocolConfig) {
        let mut cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        cfg.auto_remap = auto_remap;
        let net = Network::new(NetworkConfig {
            n_nodes: 4,
            block_size: 16,
            ..NetworkConfig::default()
        });
        let ep = net.client(ClientId(1));
        (net, ep, cfg)
    }

    #[test]
    fn call_remaps_a_crashed_node_transparently() {
        let (net, ep, cfg) = setup(true);
        net.crash_node(NodeId(2));
        // The directory behaviour (§3.5): the call lands on the fresh
        // INIT replacement instead of erroring.
        let reply = call(&ep, &cfg, NodeId(2), Request::Read { stripe: StripeId(0) }).unwrap();
        match reply {
            Reply::Read(r) => assert!(r.block.is_none(), "INIT node returns ⊥"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(net.node_is_up(NodeId(2)));
    }

    #[test]
    fn call_without_auto_remap_surfaces_node_down() {
        let (net, ep, cfg) = setup(false);
        net.crash_node(NodeId(1));
        let err = call(&ep, &cfg, NodeId(1), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::NodeDown(_))
        ));
        assert!(!net.node_is_up(NodeId(1)), "no remap requested");
    }

    #[test]
    fn call_many_remaps_only_the_down_targets() {
        let (net, ep, cfg) = setup(true);
        net.crash_node(NodeId(0));
        net.crash_node(NodeId(3));
        let calls: Vec<_> = (0..4)
            .map(|i| (NodeId(i), Request::Read { stripe: StripeId(0) }))
            .collect();
        let replies = call_many(&ep, &cfg, calls);
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(Result::is_ok));
        // Remapped nodes answer ⊥; healthy nodes answer content.
        for (i, r) in replies.into_iter().enumerate() {
            let Reply::Read(read) = r.unwrap() else { panic!() };
            if i == 0 || i == 3 {
                assert!(read.block.is_none(), "node {i} is INIT after remap");
            } else {
                assert!(read.block.is_some(), "node {i} untouched");
            }
        }
    }

    #[test]
    fn killed_client_error_is_not_remapped_away() {
        let (_net, ep, cfg) = setup(true);
        ep.kill_after(0);
        let err = call(&ep, &cfg, NodeId(0), Request::Read { stripe: StripeId(0) }).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ProtocolError::Rpc(RpcError::ClientKilled)
        ));
    }
}
