//! A small thread-local block-buffer pool for the multi-block data path.
//!
//! The batched read/write paths stage one buffer per (block × redundant
//! node) for deltas and read-modify-write edges. Allocating those afresh
//! per call would put the allocator on the per-block critical path the
//! PR 1 kernels just got off of. Instead, buffers circulate: a `swap`
//! reply's old block is [`give`]n back once its deltas are computed, and
//! the next delta [`take`]s it — so in steady state a sequential writer
//! touches the allocator only to grow the pool to its high-water mark.
//!
//! The pool is thread-local (no locks, no cross-thread traffic) and
//! bounded, so a burst cannot pin memory forever. Buffers of any size are
//! accepted; `take` reuses capacity via `clear` + `resize`, which also
//! zero-fills — callers get the same all-zeroes contract as `vec![0; n]`.
//!
//! **Stale-byte audit.** A recycled buffer's spare capacity keeps the
//! previous user's bytes, so the zeroing discipline in [`take`] is the
//! only thing standing between the pool and cross-request data leaks:
//! `clear()` drops the logical length to zero and `resize(len, 0)` writes
//! a fresh zero into *every* byte of the new length, whether the buffer
//! grew or shrank. Stale bytes survive only past `len`, where safe code
//! cannot read them (`set_len` is `unsafe`, and nothing in this workspace
//! touches it). The regression tests below pin both directions — shrink
//! (old bytes beyond the new length) and grow (the region between the old
//! and new lengths, which `resize` must cover).

use std::cell::RefCell;

/// Retained buffers per thread. Sized for one stripe's worth of staging at
/// the widest supported codes (p ≤ k ≤ 16) plus slack; beyond this,
/// returned buffers are simply dropped.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed buffer of length `len` from the pool, allocating only if
/// the pool is empty.
pub(crate) fn take(len: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => vec![0u8; len],
        }
    })
}

/// Returns a buffer to the pool for reuse by a later [`take`].
pub(crate) fn give(buf: Vec<u8>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_a_given_buffer_without_reallocating() {
        // Drain whatever earlier tests left behind so the capacity check
        // below observes our buffer, not a stale one.
        while POOL.with(|p| !p.borrow().is_empty()) {
            let _ = POOL.with(|p| p.borrow_mut().pop());
        }
        let mut buf = take(32);
        buf.iter_mut().for_each(|b| *b = 0xFF);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        give(buf);
        let again = take(16);
        assert_eq!(again.as_ptr(), ptr, "same allocation came back");
        assert_eq!(again.capacity(), cap);
        assert!(again.iter().all(|&b| b == 0), "reused buffer is zeroed");
        assert_eq!(again.len(), 16);
    }

    #[test]
    fn shrinking_take_never_leaks_stale_bytes() {
        let mut big = take(64);
        big.iter_mut().for_each(|b| *b = 0xA5);
        give(big);
        // Whichever pooled buffer pops, its dirty history must be invisible.
        let small = take(16);
        assert_eq!(small.len(), 16);
        assert!(small.iter().all(|&b| b == 0), "stale bytes in shrunk buffer");
    }

    #[test]
    fn growing_take_zeroes_past_the_old_logical_length() {
        let mut short = take(8);
        short.iter_mut().for_each(|b| *b = 0x5A);
        give(short);
        // The grown view covers bytes the previous user never touched and
        // bytes it dirtied; both regions must read zero.
        let grown = take(48);
        assert_eq!(grown.len(), 48);
        assert!(
            grown.iter().all(|&b| b == 0),
            "stale bytes past the old logical length"
        );
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(2 * MAX_POOLED) {
            give(vec![0u8; 8]);
        }
        assert!(POOL.with(|p| p.borrow().len()) <= MAX_POOLED);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let before = POOL.with(|p| p.borrow().len());
        give(Vec::new());
        assert_eq!(POOL.with(|p| p.borrow().len()), before);
    }
}
