//! A small thread-local block-buffer pool for the multi-block data path.
//!
//! The batched read/write paths stage one buffer per (block × redundant
//! node) for deltas and read-modify-write edges. Allocating those afresh
//! per call would put the allocator on the per-block critical path the
//! PR 1 kernels just got off of. Instead, buffers circulate: a `swap`
//! reply's old block is [`give`]n back once its deltas are computed, and
//! the next delta [`take`]s it — so in steady state a sequential writer
//! touches the allocator only to grow the pool to its high-water mark.
//!
//! The pool is thread-local (no locks, no cross-thread traffic) and
//! bounded, so a burst cannot pin memory forever. Buffers of any size are
//! accepted; `take` reuses capacity via `clear` + `resize`, which also
//! zero-fills — callers get the same all-zeroes contract as `vec![0; n]`.

use std::cell::RefCell;

/// Retained buffers per thread. Sized for one stripe's worth of staging at
/// the widest supported codes (p ≤ k ≤ 16) plus slack; beyond this,
/// returned buffers are simply dropped.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed buffer of length `len` from the pool, allocating only if
/// the pool is empty.
pub(crate) fn take(len: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => vec![0u8; len],
        }
    })
}

/// Returns a buffer to the pool for reuse by a later [`take`].
pub(crate) fn give(buf: Vec<u8>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_a_given_buffer_without_reallocating() {
        // Drain whatever earlier tests left behind so the capacity check
        // below observes our buffer, not a stale one.
        while POOL.with(|p| !p.borrow().is_empty()) {
            let _ = POOL.with(|p| p.borrow_mut().pop());
        }
        let mut buf = take(32);
        buf.iter_mut().for_each(|b| *b = 0xFF);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        give(buf);
        let again = take(16);
        assert_eq!(again.as_ptr(), ptr, "same allocation came back");
        assert_eq!(again.capacity(), cap);
        assert!(again.iter().all(|&b| b == 0), "reused buffer is zeroed");
        assert_eq!(again.len(), 16);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(2 * MAX_POOLED) {
            give(vec![0u8; 8]);
        }
        assert!(POOL.with(|p| p.borrow().len()) <= MAX_POOLED);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let before = POOL.with(|p| p.borrow().len());
        give(Vec::new());
        assert_eq!(POOL.with(|p| p.borrow().len()), before);
    }
}
