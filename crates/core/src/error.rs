//! Protocol-level error type.

use ajx_erasure::CodeError;
use ajx_storage::StripeId;
use ajx_transport::RpcError;
use core::fmt;

/// Errors surfaced by the client protocol (`READ`, `WRITE`, recovery, GC).
///
/// In the paper's failure model these cases are either transient (another
/// client is recovering) or outside the tolerated bounds (more than `t_d`
/// storage or `t_p` client failures); the reproduction reports them
/// explicitly instead of looping forever, so tests and experiments stay
/// bounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A transport failure that auto-remap was not allowed to repair.
    Rpc(RpcError),
    /// An erasure-code failure (malformed blocks); indicates caller misuse.
    Code(CodeError),
    /// Recovery could not assemble `k + slack` consistent blocks — the
    /// failure bounds of §4 were exceeded and data may be lost.
    Unrecoverable {
        /// The stripe that could not be recovered.
        stripe: StripeId,
        /// Diagnostic detail.
        reason: String,
    },
    /// The operation did not finish within the configured retry budget
    /// (e.g. recovery lock contention never cleared because the holder is
    /// alive but slow).
    RetriesExhausted {
        /// What was being attempted.
        what: &'static str,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The value passed to `WRITE` does not match the configured block size.
    BadBlockSize {
        /// Configured block size.
        expected: usize,
        /// Supplied value length.
        got: usize,
    },
    /// A storage node answered with the wrong reply variant. A malformed
    /// reply is a node-side fault, not a client invariant — it must surface
    /// as an error, never crash the client thread.
    UnexpectedReply {
        /// The reply variant the protocol step required.
        expected: &'static str,
        /// Compact rendering of what actually arrived.
        got: String,
    },
}

impl ProtocolError {
    /// Builds an [`ProtocolError::UnexpectedReply`], truncating the reply's
    /// debug rendering so block payloads don't explode the message.
    pub fn unexpected(expected: &'static str, got: &impl fmt::Debug) -> Self {
        let mut rendered = format!("{got:?}");
        if rendered.len() > 96 {
            let cut = (0..=96).rev().find(|&i| rendered.is_char_boundary(i)).unwrap_or(0);
            rendered.truncate(cut);
            rendered.push('…');
        }
        ProtocolError::UnexpectedReply {
            expected,
            got: rendered,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Rpc(e) => write!(f, "rpc failure: {e}"),
            ProtocolError::Code(e) => write!(f, "erasure-code failure: {e}"),
            ProtocolError::Unrecoverable { stripe, reason } => {
                write!(f, "{stripe} is unrecoverable: {reason}")
            }
            ProtocolError::RetriesExhausted { what, attempts } => {
                write!(f, "{what} did not complete after {attempts} attempts")
            }
            ProtocolError::BadBlockSize { expected, got } => {
                write!(f, "value has {got} bytes but the block size is {expected}")
            }
            ProtocolError::UnexpectedReply { expected, got } => {
                write!(f, "storage node answered {got} where {expected} was required")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Rpc(e) => Some(e),
            ProtocolError::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RpcError> for ProtocolError {
    fn from(e: RpcError) -> Self {
        ProtocolError::Rpc(e)
    }
}

impl From<CodeError> for ProtocolError {
    fn from(e: CodeError) -> Self {
        ProtocolError::Code(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_storage::NodeId;

    #[test]
    fn display_and_source_work() {
        let e = ProtocolError::from(RpcError::NodeDown(NodeId(1)));
        assert!(e.to_string().contains("s1"));
        assert!(std::error::Error::source(&e).is_some());

        let e = ProtocolError::Unrecoverable {
            stripe: StripeId(3),
            reason: "too many failures".into(),
        };
        assert!(e.to_string().contains("stripe3"));
        assert!(std::error::Error::source(&e).is_none());

        let e = ProtocolError::BadBlockSize { expected: 1024, got: 7 };
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn unexpected_reply_truncates_huge_payloads() {
        let huge = vec![0xABu8; 4096];
        let e = ProtocolError::unexpected("Reply::Probe", &huge);
        let ProtocolError::UnexpectedReply { expected, got } = &e else {
            panic!("wrong variant");
        };
        assert_eq!(*expected, "Reply::Probe");
        assert!(got.len() < 120, "got {} chars", got.len());
        assert!(e.to_string().contains("Reply::Probe"));
    }
}
