//! Retry pacing for busy loops and indeterminate RPCs.
//!
//! The paper leaves retry pacing unspecified ("p retries the add after a
//! while", §3.9). On a fault-free network a fixed pause is fine, but under
//! injected loss and contention a fixed pause synchronizes competing
//! clients — they collide at the recovery locks on every round. This module
//! provides the standard cure: capped exponential backoff with jitter
//! (including the *decorrelated* variant), seeded so retry schedules are
//! reproducible in chaos runs.

use std::time::Duration;

/// How randomness is mixed into the computed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jitter {
    /// Pure capped exponential: `min(cap, base·multiplier^attempt)`.
    None,
    /// Uniform in `[0, min(cap, base·multiplier^attempt)]` — desynchronizes
    /// fully but can retry very hot.
    Full,
    /// `min(cap, uniform(base, 3·previous))` — each delay derives from the
    /// previous draw rather than the attempt count, spreading competing
    /// clients while keeping a floor of `base`.
    Decorrelated,
}

/// Backoff configuration shared by every retry loop of a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First (and minimum) delay. `ZERO` disables sleeping entirely —
    /// the unit-test fast path.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Growth factor for the exponential variants (ignored by
    /// [`Jitter::Decorrelated`], which grows from the previous draw).
    pub multiplier: u32,
    /// Jitter strategy.
    pub jitter: Jitter,
    /// How many times an *idempotent* RPC that failed indeterminately
    /// ([`ajx_transport::RpcError::is_indeterminate`]) is re-sent before
    /// the error is surfaced to the protocol layer.
    pub rpc_retry_budget: u32,
    /// How many [`ajx_transport::RpcError::Busy`] sheds a single
    /// *operation* absorbs in the multiplexed driver's park-and-resubmit
    /// loop before the operation is abandoned with a determinate failure.
    /// (The blocking RPC path charges `Busy` against
    /// [`rpc_retry_budget`](Self::rpc_retry_budget) instead.) Generous by
    /// default — backpressure under load is normal and shed requests were
    /// never executed — but finite, so a client pinned against a
    /// permanently saturated node terminates instead of spinning forever.
    pub busy_retry_budget: u32,
}

impl Default for BackoffPolicy {
    /// 100 µs base doubling to a 10 ms cap with decorrelated jitter, and
    /// three re-sends for indeterminate idempotent RPCs.
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
            multiplier: 2,
            jitter: Jitter::Decorrelated,
            rpc_retry_budget: 3,
            busy_retry_budget: 1024,
        }
    }
}

impl BackoffPolicy {
    /// A policy that never sleeps and never re-sends — for unit tests that
    /// drive failure paths deterministically.
    pub fn none() -> Self {
        BackoffPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            multiplier: 1,
            jitter: Jitter::None,
            rpc_retry_budget: 0,
            busy_retry_budget: 0,
        }
    }

    /// Starts a retry session. `seed` determines the jitter stream, so a
    /// given `(policy, seed)` always produces the same delay sequence.
    pub fn session(&self, seed: u64) -> BackoffSession {
        BackoffSession {
            policy: *self,
            rng: seed ^ 0x5851_F42D_4C95_7F2D,
            prev: self.base,
            attempt: 0,
        }
    }
}

/// The evolving state of one retry loop (delay growth + jitter stream).
#[derive(Debug, Clone)]
pub struct BackoffSession {
    policy: BackoffPolicy,
    rng: u64,
    prev: Duration,
    attempt: u32,
}

impl BackoffSession {
    fn next_u64(&mut self) -> u64 {
        // splitmix64: cheap, seedable, good enough for jitter.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.rng;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[lo, hi]` (nanosecond granularity).
    fn uniform(&mut self, lo: Duration, hi: Duration) -> Duration {
        let (lo, hi) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
        if hi <= lo {
            return Duration::from_nanos(lo);
        }
        Duration::from_nanos(lo + self.next_u64() % (hi - lo + 1))
    }

    /// Computes the next delay and advances the session state.
    pub fn next_delay(&mut self) -> Duration {
        let p = self.policy;
        if p.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = p
            .base
            .saturating_mul(p.multiplier.max(1).saturating_pow(self.attempt))
            .min(p.cap)
            .max(p.base);
        self.attempt = self.attempt.saturating_add(1);
        let delay = match p.jitter {
            Jitter::None => exp,
            Jitter::Full => self.uniform(Duration::ZERO, exp),
            Jitter::Decorrelated => {
                let hi = self.prev.saturating_mul(3).min(p.cap).max(p.base);
                self.uniform(p.base, hi)
            }
        };
        self.prev = delay.max(p.base);
        delay
    }

    /// Sleeps for [`BackoffSession::next_delay`] (no-op on a zero delay).
    pub fn pause(&mut self) {
        let d = self.next_delay();
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(jitter: Jitter) -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(5),
            multiplier: 2,
            jitter,
            rpc_retry_budget: 3,
            busy_retry_budget: 8,
        }
    }

    #[test]
    fn no_jitter_doubles_up_to_the_cap() {
        let mut s = policy(Jitter::None).session(1);
        let delays: Vec<_> = (0..8).map(|_| s.next_delay()).collect();
        assert_eq!(delays[0], Duration::from_micros(100));
        assert_eq!(delays[1], Duration::from_micros(200));
        assert_eq!(delays[2], Duration::from_micros(400));
        assert_eq!(*delays.last().unwrap(), Duration::from_millis(5), "capped");
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "monotone");
    }

    #[test]
    fn full_jitter_stays_within_the_envelope() {
        let mut s = policy(Jitter::Full).session(7);
        for attempt in 0..20u32 {
            let d = s.next_delay();
            let env = Duration::from_micros(100 * 2u64.pow(attempt.min(10)))
                .min(Duration::from_millis(5));
            assert!(d <= env, "attempt {attempt}: {d:?} > {env:?}");
        }
    }

    #[test]
    fn decorrelated_jitter_respects_floor_and_cap() {
        let mut s = policy(Jitter::Decorrelated).session(42);
        for _ in 0..100 {
            let d = s.next_delay();
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_millis(5));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = policy(Jitter::Decorrelated);
        let a: Vec<_> = {
            let mut s = p.session(9);
            (0..50).map(|_| s.next_delay()).collect()
        };
        let b: Vec<_> = {
            let mut s = p.session(9);
            (0..50).map(|_| s.next_delay()).collect()
        };
        let c: Vec<_> = {
            let mut s = p.session(10);
            (0..50).map(|_| s.next_delay()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_base_never_sleeps() {
        let mut s = BackoffPolicy::none().session(3);
        for _ in 0..10 {
            assert_eq!(s.next_delay(), Duration::ZERO);
        }
        s.pause(); // must not sleep (and must not panic)
    }
}
