//! The client side of the AJX protocol: `READ` (Fig. 4), `WRITE` (Fig. 5),
//! garbage collection (Fig. 7), and the monitoring task (§3.10).
//!
//! All orchestration lives here, per the paper's "shift functionality to
//! clients" principle (§3). A [`Client`] is cheap and thread-safe: `&self`
//! methods may be called from many threads (the paper's "multiple threads,
//! one for each outstanding RPC call").

use crate::config::{ProtocolConfig, UpdateStrategy};
use crate::error::ProtocolError;
use crate::recovery::{recover, RecoveryOutcome};
use crate::rpc::{call, call_many, expect_reply};
use ajx_storage::{
    AddStatus, CheckTidReply, ClientId, Epoch, LMode, NodeId, OpMode, Reply, Request, StripeId,
    SwapReply, Tid,
};
use ajx_transport::ClientEndpoint;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Garbage-collection bookkeeping (Fig. 7's client-side `gc[j]`/`old[j]`
/// lists, keyed additionally by stripe since one client writes many
/// stripes).
#[derive(Debug, Default)]
struct GcLists {
    /// Completed writes not yet moved to nodes' oldlists (phase 2 input).
    pending: BTreeMap<(StripeId, usize), Vec<Tid>>,
    /// Writes whose tids nodes moved to oldlist; next cycle drops them
    /// (phase 1 input).
    old: BTreeMap<(StripeId, usize), Vec<Tid>>,
}

/// Summary of one garbage-collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Tids moved from nodes' recentlists to oldlists (phase 2).
    pub moved_to_old: usize,
    /// Tids dropped from nodes' oldlists (phase 1).
    pub dropped: usize,
    /// RPCs that found a node busy (locked/INIT) and were skipped.
    pub skipped_busy: usize,
}

/// Summary of one monitoring sweep (§3.10).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorReport {
    /// Stripes for which this sweep ran recovery.
    pub recovered: Vec<StripeId>,
    /// Stripes found healthy.
    pub healthy: usize,
}

/// A protocol client bound to one [`ClientEndpoint`].
///
/// # Example
///
/// ```
/// use ajx_core::{Client, ProtocolConfig};
/// use ajx_transport::{Network, NetworkConfig};
/// use ajx_storage::ClientId;
///
/// # fn main() -> Result<(), ajx_core::ProtocolError> {
/// let cfg = ProtocolConfig::new(2, 4, 64).expect("valid code");
/// let net = Network::new(NetworkConfig {
///     n_nodes: cfg.n(),
///     block_size: cfg.block_size,
///     ..NetworkConfig::default()
/// });
/// let client = Client::new(net.client(ClientId(1)), cfg);
///
/// client.write_block(0, vec![42; 64])?;
/// assert_eq!(client.read_block(0)?, vec![42; 64]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Client {
    endpoint: ClientEndpoint,
    cfg: ProtocolConfig,
    seq: AtomicU64,
    gc: Mutex<GcLists>,
}

impl Client {
    /// Binds a client to its transport endpoint and protocol configuration.
    pub fn new(endpoint: ClientEndpoint, cfg: ProtocolConfig) -> Self {
        Client {
            endpoint,
            cfg,
            seq: AtomicU64::new(0),
            gc: Mutex::new(GcLists::default()),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.endpoint.id()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The underlying transport endpoint (stats, fault injection).
    pub fn endpoint(&self) -> &ClientEndpoint {
        &self.endpoint
    }

    fn node_of(&self, stripe: StripeId, t: usize) -> NodeId {
        NodeId(self.cfg.layout.node_for(stripe.0, t) as u32)
    }

    /// Starts a backoff session for one operation's retry loop, seeded per
    /// (client, stripe, operation) so competing clients draw different
    /// jitter but a given run is reproducible.
    fn backoff(&self, stripe: StripeId, salt: u64) -> crate::backoff::BackoffSession {
        self.cfg
            .backoff
            .session((u64::from(self.id().0) << 40) ^ (stripe.0 << 8) ^ salt)
    }

    /// `READ` of a logical block (Fig. 4): one round trip to the data node
    /// in the failure-free case.
    ///
    /// # Errors
    ///
    /// Transport failures, [`ProtocolError::RetriesExhausted`] if another
    /// client's recovery never completes, or
    /// [`ProtocolError::Unrecoverable`] beyond the §4 failure bounds.
    pub fn read_block(&self, logical_block: u64) -> Result<Vec<u8>, ProtocolError> {
        let placement = self.cfg.layout.locate(logical_block);
        self.read_stripe_index(StripeId(placement.stripe), placement.index)
    }

    /// `READ` addressed by (stripe, data-block index).
    ///
    /// # Errors
    ///
    /// As [`Client::read_block`].
    pub fn read_stripe_index(
        &self,
        stripe: StripeId,
        i: usize,
    ) -> Result<Vec<u8>, ProtocolError> {
        assert!(i < self.cfg.k(), "data index {i} out of range");
        let node = self.node_of(stripe, i);
        let mut backoff = self.backoff(stripe, 1);
        for _ in 0..=self.cfg.busy_retry_limit {
            let reply = call(&self.endpoint, &self.cfg, node, Request::Read { stripe })?;
            let r = expect_reply!(reply, Reply::Read);
            match r.block {
                Some(v) => return Ok(v),
                None => {
                    if r.lmode.allows_recovery_start() {
                        self.recover_stripe(stripe)?;
                    } else {
                        backoff.pause(); // recovery in progress elsewhere
                    }
                }
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "READ",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// `WRITE` of a logical block (Fig. 5): in the failure-free case, one
    /// `swap` round trip to the data node plus one `add` per redundant node
    /// (batched per the configured [`UpdateStrategy`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadBlockSize`] for a wrong-sized value; otherwise
    /// as [`Client::read_block`].
    pub fn write_block(&self, logical_block: u64, value: Vec<u8>) -> Result<(), ProtocolError> {
        let placement = self.cfg.layout.locate(logical_block);
        self.write_stripe_index(StripeId(placement.stripe), placement.index, value)
    }

    /// `WRITE` addressed by (stripe, data-block index).
    ///
    /// # Errors
    ///
    /// As [`Client::write_block`].
    pub fn write_stripe_index(
        &self,
        stripe: StripeId,
        i: usize,
        value: Vec<u8>,
    ) -> Result<(), ProtocolError> {
        assert!(i < self.cfg.k(), "data index {i} out of range");
        if value.len() != self.cfg.block_size {
            return Err(ProtocolError::BadBlockSize {
                expected: self.cfg.block_size,
                got: value.len(),
            });
        }
        let k = self.cfg.k();
        let n = self.cfg.n();
        let full: BTreeSet<usize> = std::iter::once(i).chain(k..n).collect();
        let mut backoff = self.backoff(stripe, 2);

        // Outer `repeat` (Fig. 5 lines 1 and 22): a fresh swap each attempt.
        for _ in 0..self.cfg.write_attempt_limit {
            let ntid = Tid::new(self.seq.fetch_add(1, Ordering::Relaxed), i, self.id());
            let swap = self.swap_with_recovery(stripe, i, value.clone(), ntid)?;
            let old = swap.block.expect("swap_with_recovery returns content");
            let epoch = swap.epoch;
            let mut otid = swap.otid;

            let mut t: BTreeSet<usize> = (k..n).collect(); // nodes to update
            let mut d: BTreeSet<usize> = BTreeSet::from([i]); // nodes done
            let mut order_rounds = 0u32;

            while !t.is_empty() && !d.is_empty() {
                let results =
                    self.send_adds(stripe, i, &value, &old, ntid, otid, epoch, &t)?;

                let mut retry = BTreeSet::new();
                let mut saw_order = false;
                let mut need_recovery = false;
                for (&j, r) in t.iter().zip(&results) {
                    match r.status {
                        AddStatus::Ok => {
                            d.insert(j);
                        }
                        AddStatus::Order => {
                            saw_order = true;
                            retry.insert(j);
                        }
                        AddStatus::Unavail => {
                            if !matches!(r.lmode, LMode::Unl | LMode::L0) {
                                retry.insert(j);
                            }
                            // else: stale epoch or INIT node — drop from T;
                            // the outer repeat will re-swap if needed.
                        }
                    }
                    // Fig. 5 line 13: expired lock, crashed node, or
                    // hopeless ordering ⇒ run recovery.
                    if r.lmode == LMode::Exp
                        || (r.opmode != OpMode::Norm && r.lmode == LMode::Unl)
                        || (r.status == AddStatus::Order
                            && order_rounds >= self.cfg.order_retry_limit)
                    {
                        need_recovery = true;
                    }
                }
                if need_recovery {
                    self.recover_stripe(stripe)?;
                }
                if saw_order {
                    order_rounds += 1;
                    // Fig. 5 lines 15-19: has the predecessor write been
                    // GC'd (completed) or has a done node crashed?
                    if let Some(ot) = otid {
                        let checks: Vec<_> = d
                            .iter()
                            .map(|&j| {
                                (
                                    self.node_of(stripe, j),
                                    Request::CheckTid {
                                        stripe,
                                        ntid,
                                        otid: ot,
                                    },
                                )
                            })
                            .collect();
                        let check_replies = call_many(&self.endpoint, &self.cfg, checks);
                        let mut drop_from_d = Vec::new();
                        for (&j, res) in d.iter().zip(check_replies) {
                            match expect_reply!(res?, Reply::CheckTid) {
                                CheckTidReply::Gc => otid = None,
                                CheckTidReply::Init => drop_from_d.push(j),
                                CheckTidReply::NoChange => {}
                            }
                        }
                        for j in drop_from_d {
                            d.remove(&j);
                        }
                    }
                    backoff.pause(); // "p retries the add after a while" (§3.9)
                }
                t = retry;
            }

            if d == full {
                let mut gc = self.gc.lock();
                for &j in &d {
                    gc.pending.entry((stripe, j)).or_default().push(ntid);
                }
                return Ok(());
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "WRITE",
            attempts: self.cfg.write_attempt_limit,
        })
    }

    /// The `swap` loop of Fig. 5 lines 3-6: retry until the data node
    /// accepts, running recovery when the block is unavailable.
    fn swap_with_recovery(
        &self,
        stripe: StripeId,
        i: usize,
        value: Vec<u8>,
        ntid: Tid,
    ) -> Result<SwapReply, ProtocolError> {
        let node = self.node_of(stripe, i);
        let mut backoff = self.backoff(stripe, 3);
        for _ in 0..=self.cfg.busy_retry_limit {
            let reply = call(
                &self.endpoint,
                &self.cfg,
                node,
                Request::Swap {
                    stripe,
                    value: value.clone(),
                    ntid,
                },
            )?;
            let r = expect_reply!(reply, Reply::Swap);
            if r.block.is_some() {
                return Ok(r);
            }
            if r.lmode.allows_recovery_start() {
                self.recover_stripe(stripe)?;
            } else {
                backoff.pause();
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "swap",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// Issues the redundant-block `add`s for the nodes in `targets`,
    /// batched per the update strategy, returning one reply per target in
    /// `targets`'s iteration order.
    #[allow(clippy::too_many_arguments)]
    fn send_adds(
        &self,
        stripe: StripeId,
        i: usize,
        value: &[u8],
        old: &[u8],
        ntid: Tid,
        otid: Option<Tid>,
        epoch: Epoch,
        targets: &BTreeSet<usize>,
    ) -> Result<Vec<ajx_storage::AddReply>, ProtocolError> {
        let k = self.cfg.k();
        let n = self.cfg.n();
        let mut replies: BTreeMap<usize, ajx_storage::AddReply> = BTreeMap::new();

        if self.cfg.strategy == UpdateStrategy::Broadcast {
            // §3.11: multicast v − w once; nodes multiply by their own α.
            let diff = self.cfg.code.broadcast_delta(value, old)?;
            let reqs: Vec<_> = targets
                .iter()
                .map(|&j| {
                    (
                        self.node_of(stripe, j),
                        Request::Add {
                            stripe,
                            delta: diff.clone(),
                            ntid,
                            otid,
                            epoch,
                            scale: Some((j - k, i)),
                        },
                    )
                })
                .collect();
            let results = self.broadcast_with_remap(reqs);
            for (&j, res) in targets.iter().zip(results) {
                replies.insert(j, expect_reply!(res?, Reply::Add));
            }
        } else {
            // The hybrid `for h / pfor j ∈ G_h ∩ M` of §4 (serial and
            // parallel are its degenerate cases).
            for round in self.cfg.strategy.rounds(k, n) {
                let members: Vec<usize> =
                    round.into_iter().filter(|j| targets.contains(j)).collect();
                if members.is_empty() {
                    continue;
                }
                let calls: Vec<_> = members
                    .iter()
                    .map(|&j| {
                        let delta = self
                            .cfg
                            .code
                            .delta(j - k, i, value, old)
                            .expect("block sizes validated");
                        (
                            self.node_of(stripe, j),
                            Request::Add {
                                stripe,
                                delta,
                                ntid,
                                otid,
                                epoch,
                                scale: None,
                            },
                        )
                    })
                    .collect();
                for (&j, res) in members.iter().zip(call_many(&self.endpoint, &self.cfg, calls))
                {
                    replies.insert(j, expect_reply!(res?, Reply::Add));
                }
            }
        }
        Ok(targets.iter().map(|j| replies[j]).collect())
    }

    fn broadcast_with_remap(
        &self,
        reqs: Vec<(NodeId, Request)>,
    ) -> Vec<Result<Reply, ProtocolError>> {
        let retry = reqs.clone();
        self.endpoint
            .broadcast(reqs)
            .into_iter()
            .zip(retry)
            .map(|(res, (node, req))| match res {
                Ok(r) => Ok(r),
                Err(ajx_transport::RpcError::NodeDown(_)) if self.cfg.auto_remap => {
                    self.endpoint.network().remap_node(node, self.cfg.remap_garbage);
                    self.endpoint.call(node, req).map_err(ProtocolError::from)
                }
                Err(e) => Err(ProtocolError::from(e)),
            })
            .collect()
    }

    /// Runs recovery for `stripe` until it completes — either by this
    /// client or by the client we lost the race to (Fig. 4 line 4 /
    /// Fig. 5's `start_recovery`).
    ///
    /// # Errors
    ///
    /// As [`crate::recovery`] plus [`ProtocolError::RetriesExhausted`] when
    /// losing the race repeatedly without the stripe becoming readable.
    pub fn recover_stripe(&self, stripe: StripeId) -> Result<(), ProtocolError> {
        let mut backoff = self.backoff(stripe, 4);
        for _ in 0..=self.cfg.busy_retry_limit {
            match recover(&self.endpoint, &self.cfg, self.id(), stripe)? {
                RecoveryOutcome::Completed => return Ok(()),
                RecoveryOutcome::LostRace => {
                    backoff.pause();
                    // If the other client finished, the stripe is usable
                    // again; probe cheaply via a node's lock mode.
                    if self.probe_stripe_released(stripe)? {
                        return Ok(());
                    }
                }
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "recovery",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// Checks whether the recovery we lost the race to has finished and
    /// released the stripe.
    ///
    /// Asks the data nodes in index order and settles for the first one
    /// that answers: the probe must not be pinned to data node 0, because
    /// when *that* is the crashed node a transport error here used to abort
    /// the whole recovery retry loop. An unreachable node just means "ask
    /// the next one"; if nobody answers, the stripe is conservatively
    /// treated as still recovering.
    fn probe_stripe_released(&self, stripe: StripeId) -> Result<bool, ProtocolError> {
        for t in 0..self.cfg.n() {
            match call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, t),
                Request::Probe { stripe },
            ) {
                Ok(Reply::Probe { opmode, lmode, .. }) => {
                    return Ok(opmode == OpMode::Norm && lmode == LMode::Unl)
                }
                Ok(other) => return Err(ProtocolError::unexpected("Reply::Probe", &other)),
                Err(ProtocolError::Rpc(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// One garbage-collection cycle (Fig. 7's `collect_garbage` task).
    ///
    /// Phase 1 drops previously-moved tids from nodes' oldlists; phase 2
    /// moves this client's completed writes from recentlists to oldlists.
    /// Nodes that are busy (locked or INIT) are skipped and retried next
    /// cycle, matching the paper's `repeat ... until OK` with bounded
    /// patience.
    ///
    /// # Errors
    ///
    /// Transport failures only; a busy node is not an error. Entries whose
    /// RPC fails (or is still queued when one fails) stay in the client's
    /// lists for the next cycle — an aborted cycle must never leak tids,
    /// or the nodes' recent/old lists are never collected.
    pub fn collect_garbage(&self) -> Result<GcReport, ProtocolError> {
        let mut report = GcReport::default();

        // Phase 1: discard from oldlists. Each entry is removed from the
        // bookkeeping only for the duration of its own RPC and restored on
        // any failure, so an error aborts the cycle without losing state.
        let old_keys: Vec<(StripeId, usize)> = self.gc.lock().old.keys().copied().collect();
        for key @ (stripe, j) in old_keys {
            let Some(tids) = self.gc.lock().old.remove(&key) else {
                continue; // another cycle got here first
            };
            let reply = call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, j),
                Request::GcOld {
                    stripe,
                    tids: tids.clone(),
                },
            );
            match reply {
                Ok(Reply::Gc(true)) => report.dropped += tids.len(),
                Ok(Reply::Gc(false)) => {
                    report.skipped_busy += 1;
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                }
                Ok(other) => {
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                    return Err(ProtocolError::unexpected("Reply::Gc", &other));
                }
                Err(e) => {
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                    return Err(e);
                }
            }
        }

        // Phase 2: move recent → old, with the same restore-on-failure
        // discipline; successes graduate to the phase 1 list.
        let pending_keys: Vec<(StripeId, usize)> =
            self.gc.lock().pending.keys().copied().collect();
        for key @ (stripe, j) in pending_keys {
            let Some(tids) = self.gc.lock().pending.remove(&key) else {
                continue;
            };
            let reply = call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, j),
                Request::GcRecent {
                    stripe,
                    tids: tids.clone(),
                },
            );
            match reply {
                Ok(Reply::Gc(true)) => {
                    report.moved_to_old += tids.len();
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                }
                Ok(Reply::Gc(false)) => {
                    // The move did not happen; retry phase 2 next cycle.
                    report.skipped_busy += 1;
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                }
                Ok(other) => {
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                    return Err(ProtocolError::unexpected("Reply::Gc", &other));
                }
                Err(e) => {
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                    return Err(e);
                }
            }
        }
        Ok(report)
    }

    /// The monitoring sweep of §3.10: probes every node of the given
    /// stripes and triggers recovery where it finds INIT nodes or stale
    /// unfinished writes older than `age_threshold` node ticks.
    ///
    /// # Errors
    ///
    /// Transport failures, or recovery errors for stripes beyond repair.
    pub fn monitor(
        &self,
        stripes: &[StripeId],
        age_threshold: u64,
    ) -> Result<MonitorReport, ProtocolError> {
        let mut report = MonitorReport::default();
        for &stripe in stripes {
            let probes: Vec<_> = (0..self.cfg.n())
                .map(|t| (self.node_of(stripe, t), Request::Probe { stripe }))
                .collect();
            let mut needs_recovery = false;
            for res in call_many(&self.endpoint, &self.cfg, probes) {
                match res? {
                    Reply::Probe {
                        opmode,
                        oldest_pending_age,
                        ..
                    } => {
                        if opmode == OpMode::Init
                            || oldest_pending_age.is_some_and(|a| a >= age_threshold)
                        {
                            needs_recovery = true;
                        }
                    }
                    other => return Err(ProtocolError::unexpected("Reply::Probe", &other)),
                }
            }
            if needs_recovery {
                self.recover_stripe(stripe)?;
                report.recovered.push(stripe);
            } else {
                report.healthy += 1;
            }
        }
        Ok(report)
    }

    /// Number of tids awaiting garbage collection (both phases) — §6.5's
    /// client-side bookkeeping.
    pub fn gc_backlog(&self) -> usize {
        let gc = self.gc.lock();
        gc.pending.values().map(Vec::len).sum::<usize>()
            + gc.old.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_transport::{Network, NetworkConfig};

    fn client(k: usize, n: usize) -> Client {
        let cfg = ProtocolConfig::new(k, n, 16).unwrap();
        let net = Network::new(NetworkConfig {
            n_nodes: n,
            block_size: 16,
            ..NetworkConfig::default()
        });
        Client::new(net.client(ClientId(1)), cfg)
    }

    #[test]
    fn accessors_expose_identity_and_config() {
        let c = client(2, 4);
        assert_eq!(c.id(), ClientId(1));
        assert_eq!(c.config().k(), 2);
        assert_eq!(c.endpoint().id(), ClientId(1));
    }

    #[test]
    fn gc_backlog_grows_with_writes_and_drains_with_cycles() {
        let c = client(2, 4);
        assert_eq!(c.gc_backlog(), 0);
        c.write_block(0, vec![1; 16]).unwrap();
        c.write_block(1, vec![2; 16]).unwrap();
        // Each write records its tid for the data node + 2 redundant nodes.
        assert_eq!(c.gc_backlog(), 6);
        c.collect_garbage().unwrap();
        assert_eq!(c.gc_backlog(), 6, "phase 2 done; tids now await phase 1");
        c.collect_garbage().unwrap();
        assert_eq!(c.gc_backlog(), 0);
    }

    fn client_on_net(
        k: usize,
        n: usize,
        auto_remap: bool,
    ) -> (std::sync::Arc<Network>, Client) {
        let mut cfg = ProtocolConfig::new(k, n, 16).unwrap();
        cfg.auto_remap = auto_remap;
        let net = Network::new(NetworkConfig {
            n_nodes: n,
            block_size: 16,
            ..NetworkConfig::default()
        });
        let c = Client::new(net.client(ClientId(1)), cfg);
        (net, c)
    }

    #[test]
    fn gc_cycle_aborted_by_a_crashed_node_keeps_its_bookkeeping() {
        let (net, c) = client_on_net(2, 4, false);
        c.write_block(0, vec![1; 16]).unwrap();
        c.write_block(1, vec![2; 16]).unwrap();
        assert_eq!(c.gc_backlog(), 6);
        // Crash stripe 0's data node; with auto-remap off the GC cycle
        // aborts on the dead node's RPC error.
        let victim = c.node_of(StripeId(0), 0);
        net.crash_node(victim);
        assert!(c.collect_garbage().is_err());
        assert_eq!(
            c.gc_backlog(),
            6,
            "an aborted cycle must restore every in-flight tid"
        );
        // Replace the node and repair the affected stripes; the preserved
        // backlog then drains to zero over the usual two-phase cycles.
        net.remap_node(victim, 0xA5);
        c.read_block(0).unwrap();
        c.read_block(1).unwrap();
        while c.gc_backlog() > 0 {
            c.collect_garbage().unwrap();
        }
    }

    #[test]
    fn lost_race_probe_falls_past_a_crashed_data_node() {
        let (net, c) = client_on_net(2, 4, false);
        c.write_block(0, vec![3; 16]).unwrap();
        let stripe = StripeId(0);
        // Crash the first data node; the probe used to be hard-wired to it
        // and surfaced the transport error, aborting recovery's retry loop.
        net.crash_node(c.node_of(stripe, 0));
        assert!(
            c.probe_stripe_released(stripe).unwrap(),
            "an unreachable first node means: ask the next one"
        );
    }

    #[test]
    fn monitor_reports_healthy_stripes_without_recovery() {
        let c = client(2, 4);
        c.write_block(0, vec![1; 16]).unwrap();
        // Very generous age threshold: the just-written tid is not stale.
        let report = c.monitor(&[StripeId(0), StripeId(5)], u64::MAX).unwrap();
        assert!(report.recovered.is_empty());
        assert_eq!(report.healthy, 2);
    }

    #[test]
    fn monitor_on_no_stripes_is_empty() {
        let c = client(2, 4);
        let report = c.monitor(&[], 1).unwrap();
        assert_eq!(report, MonitorReport::default());
    }

    #[test]
    fn bad_block_size_rejected_before_any_rpc() {
        let c = client(2, 4);
        let before = c.endpoint().stats().snapshot();
        let err = c.write_block(0, vec![1; 15]).unwrap_err();
        assert!(matches!(err, ProtocolError::BadBlockSize { .. }));
        assert_eq!(
            c.endpoint().stats().snapshot().since(&before).msgs_sent,
            0,
            "validation happens client-side"
        );
    }

    #[test]
    #[should_panic(expected = "data index")]
    fn out_of_range_stripe_index_panics() {
        let c = client(2, 4);
        let _ = c.read_stripe_index(StripeId(0), 2);
    }

    #[test]
    fn explicit_recovery_on_a_healthy_stripe_is_a_noop_rewrite() {
        let c = client(2, 4);
        c.write_block(0, vec![9; 16]).unwrap();
        c.recover_stripe(StripeId(0)).unwrap();
        assert_eq!(c.read_block(0).unwrap(), vec![9; 16]);
        // Running it again immediately is fine too (idempotent).
        c.recover_stripe(StripeId(0)).unwrap();
        assert_eq!(c.read_block(0).unwrap(), vec![9; 16]);
    }

    #[test]
    fn sequence_numbers_are_unique_across_threads() {
        let c = std::sync::Arc::new(client(2, 4));
        crossbeam_scope_writes(&c);
        // 4 threads x 25 writes: every write got a distinct tid, so the
        // data node's recentlist (pre-GC) holds exactly 100 entries.
        let total: usize = (0..2u64)
            .map(|lb| {
                let node = c.node_of(StripeId(0), lb as usize);
                c.endpoint().network().with_node(node, |n| {
                    n.block_state(StripeId(0)).map_or(0, |b| b.pending_tids())
                })
            })
            .sum();
        assert_eq!(total, 100);
    }

    fn crossbeam_scope_writes(c: &std::sync::Arc<Client>) {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(c);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        c.write_block((t + i) % 2, vec![i as u8; 16]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
