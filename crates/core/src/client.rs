//! The client side of the AJX protocol: `READ` (Fig. 4), `WRITE` (Fig. 5),
//! garbage collection (Fig. 7), and the monitoring task (§3.10).
//!
//! All orchestration lives here, per the paper's "shift functionality to
//! clients" principle (§3). A [`Client`] is cheap and thread-safe: `&self`
//! methods may be called from many threads (the paper's "multiple threads,
//! one for each outstanding RPC call").

use crate::config::{ProtocolConfig, UpdateStrategy};
use crate::error::ProtocolError;
use crate::rebuild::RebuildReport;
use crate::recovery::{recover, RecoveryOutcome};
use crate::rpc::{call, call_many, expect_reply};
use ajx_storage::{
    AddStatus, CheckTidReply, ClientId, Epoch, LMode, NodeId, OpMode, Reply, Request, StripeId,
    SwapReply, Tid,
};
use ajx_transport::ClientEndpoint;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Garbage-collection bookkeeping (Fig. 7's client-side `gc[j]`/`old[j]`
/// lists, keyed additionally by stripe since one client writes many
/// stripes).
#[derive(Debug, Default)]
struct GcLists {
    /// Completed writes not yet moved to nodes' oldlists (phase 2 input).
    pending: BTreeMap<(StripeId, usize), Vec<Tid>>,
    /// Writes whose tids nodes moved to oldlist; next cycle drops them
    /// (phase 1 input).
    old: BTreeMap<(StripeId, usize), Vec<Tid>>,
}

/// Summary of one garbage-collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Tids moved from nodes' recentlists to oldlists (phase 2).
    pub moved_to_old: usize,
    /// Tids dropped from nodes' oldlists (phase 1).
    pub dropped: usize,
    /// RPCs that found a node busy (locked/INIT) and were skipped.
    pub skipped_busy: usize,
}

/// Summary of one monitoring sweep (§3.10).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorReport {
    /// Stripes for which this sweep ran recovery.
    pub recovered: Vec<StripeId>,
    /// Stripes found healthy.
    pub healthy: usize,
}

/// A protocol client bound to one [`ClientEndpoint`].
///
/// # Example
///
/// ```
/// use ajx_core::{Client, ProtocolConfig};
/// use ajx_transport::{Network, NetworkConfig};
/// use ajx_storage::ClientId;
///
/// # fn main() -> Result<(), ajx_core::ProtocolError> {
/// let cfg = ProtocolConfig::new(2, 4, 64).expect("valid code");
/// let net = Network::new(NetworkConfig {
///     n_nodes: cfg.n(),
///     block_size: cfg.block_size,
///     ..NetworkConfig::default()
/// });
/// let client = Client::new(net.client(ClientId(1)), cfg);
///
/// client.write_block(0, vec![42; 64])?;
/// assert_eq!(client.read_block(0)?, vec![42; 64]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Client {
    endpoint: ClientEndpoint,
    cfg: ProtocolConfig,
    seq: AtomicU64,
    gc: Mutex<GcLists>,
}

impl Client {
    /// Binds a client to its transport endpoint and protocol configuration.
    pub fn new(endpoint: ClientEndpoint, cfg: ProtocolConfig) -> Self {
        Client {
            endpoint,
            cfg,
            seq: AtomicU64::new(0),
            gc: Mutex::new(GcLists::default()),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.endpoint.id()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The underlying transport endpoint (stats, fault injection).
    pub fn endpoint(&self) -> &ClientEndpoint {
        &self.endpoint
    }

    fn node_of(&self, stripe: StripeId, t: usize) -> NodeId {
        NodeId(self.cfg.layout.node_for(stripe.0, t) as u32)
    }

    /// Starts a backoff session for one operation's retry loop, seeded per
    /// (client, stripe, operation) so competing clients draw different
    /// jitter but a given run is reproducible.
    fn backoff(&self, stripe: StripeId, salt: u64) -> crate::backoff::BackoffSession {
        self.cfg
            .backoff
            .session((u64::from(self.id().0) << 40) ^ (stripe.0 << 8) ^ salt)
    }

    /// `READ` of a logical block (Fig. 4): one round trip to the data node
    /// in the failure-free case.
    ///
    /// # Errors
    ///
    /// Transport failures, [`ProtocolError::RetriesExhausted`] if another
    /// client's recovery never completes, or
    /// [`ProtocolError::Unrecoverable`] beyond the §4 failure bounds.
    pub fn read_block(&self, logical_block: u64) -> Result<Vec<u8>, ProtocolError> {
        let placement = self.cfg.layout.locate(logical_block);
        self.read_stripe_index(StripeId(placement.stripe), placement.index)
    }

    /// `READ` addressed by (stripe, data-block index).
    ///
    /// # Errors
    ///
    /// As [`Client::read_block`].
    pub fn read_stripe_index(
        &self,
        stripe: StripeId,
        i: usize,
    ) -> Result<Vec<u8>, ProtocolError> {
        assert!(i < self.cfg.k(), "data index {i} out of range");
        let node = self.node_of(stripe, i);
        let mut backoff = self.backoff(stripe, 1);
        for _ in 0..=self.cfg.busy_retry_limit {
            let reply = match call(&self.endpoint, &self.cfg, node, Request::Read { stripe }) {
                Ok(reply) => reply,
                // The data node is unreachable (and, without auto-remap, is
                // staying that way): try to serve the read from the peers
                // before giving up.
                Err(e @ ProtocolError::Rpc(_)) => {
                    if let Some(v) = self.try_degraded_read(stripe, i)? {
                        return Ok(v);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            };
            let r = expect_reply!(reply, Reply::Read);
            match r.block {
                Some(v) => return Ok(v),
                None if r.lmode.allows_recovery_start() => {
                    // The data node lost its block (INIT after a remap).
                    // Fast path (DESIGN.md §8): decode it from the other
                    // n − 1 nodes with no locks and no recovery — 2 round
                    // trips total instead of a recovery's ~5 rounds of
                    // stripe-wide locking and rewriting. The stripe stays
                    // degraded until the rebuild engine (or any explicit
                    // recovery) repairs it.
                    if let Some(v) = self.try_degraded_read(stripe, i)? {
                        return Ok(v);
                    }
                    // Ambiguous tid bookkeeping (writes draining) or too
                    // few reachable peers: settle it under locks.
                    if let Some(v) = self.recover_for_read(stripe, i)? {
                        return Ok(v);
                    }
                }
                None => backoff.pause(), // recovery in progress elsewhere
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "READ",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// One attempt at the lock-free degraded read, honoring the
    /// `degraded_reads` config switch. `Ok(None)` means "fall back".
    fn try_degraded_read(
        &self,
        stripe: StripeId,
        i: usize,
    ) -> Result<Option<Vec<u8>>, ProtocolError> {
        if !self.cfg.degraded_reads {
            return Ok(None);
        }
        crate::recovery::degraded_read(&self.endpoint, &self.cfg, stripe, i)
    }

    /// Recovery on behalf of a blocked `READ` of `(stripe, i)`: like
    /// [`Client::recover_stripe`], but after losing the recovery race the
    /// client re-probes *the data node it wants* once — if the race winner
    /// has finished, the block comes back in that same round trip, instead
    /// of paying a generic probe plus a fresh full `READ` round.
    ///
    /// `Ok(Some(v))` is the block; `Ok(None)` means this client completed
    /// the recovery itself and the caller should re-issue its `READ`.
    fn recover_for_read(
        &self,
        stripe: StripeId,
        i: usize,
    ) -> Result<Option<Vec<u8>>, ProtocolError> {
        let node = self.node_of(stripe, i);
        let mut backoff = self.backoff(stripe, 4);
        for _ in 0..=self.cfg.busy_retry_limit {
            match recover(&self.endpoint, &self.cfg, self.id(), stripe)? {
                RecoveryOutcome::Completed => return Ok(None),
                RecoveryOutcome::LostRace => {
                    backoff.pause();
                    match call(&self.endpoint, &self.cfg, node, Request::Read { stripe }) {
                        Ok(reply) => {
                            let r = expect_reply!(reply, Reply::Read);
                            if let Some(v) = r.block {
                                return Ok(Some(v));
                            }
                            // Still locked or INIT: the winner has not
                            // finished; contend for recovery again.
                        }
                        // The data node is unreachable; recovery can still
                        // finish without it, so keep contending.
                        Err(ProtocolError::Rpc(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "recovery",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// Scatter-gather `READ`: fetches many logical blocks with one batched
    /// message per storage node (§3.11 batching) instead of one round trip
    /// per block.
    ///
    /// In the failure-free case every requested block is fetched exactly
    /// once and the whole call is a single `pfor` round over at most
    /// `min(len, n)` nodes — for a stripe-aligned sequential run of `m`
    /// blocks, `min(m, n)` round trips instead of `m`. Any block the fast
    /// path cannot serve (lost exchange, busy or INIT node) falls back to
    /// the robust [`Client::read_stripe_index`] path, recovery included.
    ///
    /// Returns the blocks in request order.
    ///
    /// # Errors
    ///
    /// As [`Client::read_block`].
    pub fn read_blocks(&self, lbs: &[u64]) -> Result<Vec<Vec<u8>>, ProtocolError> {
        let mut out: Vec<Option<Vec<u8>>> = (0..lbs.len()).map(|_| None).collect();
        let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (x, &lb) in lbs.iter().enumerate() {
            let pl = self.cfg.layout.locate(lb);
            by_node
                .entry(self.node_of(StripeId(pl.stripe), pl.index))
                .or_default()
                .push(x);
        }
        let stripe_of = |x: usize| StripeId(self.cfg.layout.locate(lbs[x]).stripe);
        let calls: Vec<(NodeId, Request)> = by_node
            .iter()
            .map(|(&node, xs)| {
                let req = if let [x] = xs[..] {
                    Request::Read { stripe: stripe_of(x) }
                } else {
                    Request::Batch(
                        xs.iter()
                            .map(|&x| Request::Read { stripe: stripe_of(x) })
                            .collect(),
                    )
                };
                (node, req)
            })
            .collect();
        for ((_, xs), res) in by_node.iter().zip(call_many(&self.endpoint, &self.cfg, calls)) {
            // Any miss here — transport error, malformed or short reply,
            // busy or INIT node — is healed by the slow path below.
            let Ok(reply) = res else { continue };
            match (xs.len(), reply) {
                (1, Reply::Read(r)) => {
                    if let Some(v) = r.block {
                        out[xs[0]] = Some(v);
                    }
                }
                (m, Reply::Batch(rs)) if rs.len() == m => {
                    for (&x, sub) in xs.iter().zip(rs) {
                        if let Reply::Read(r) = sub {
                            if let Some(v) = r.block {
                                out[x] = Some(v);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        lbs.iter()
            .zip(out)
            .map(|(&lb, slot)| match slot {
                Some(v) => Ok(v),
                None => {
                    let pl = self.cfg.layout.locate(lb);
                    self.read_stripe_index(StripeId(pl.stripe), pl.index)
                }
            })
            .collect()
    }

    /// `WRITE` of a logical block (Fig. 5): in the failure-free case, one
    /// `swap` round trip to the data node plus one `add` per redundant node
    /// (batched per the configured [`UpdateStrategy`]).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadBlockSize`] for a wrong-sized value; otherwise
    /// as [`Client::read_block`].
    pub fn write_block(&self, logical_block: u64, value: Vec<u8>) -> Result<(), ProtocolError> {
        self.write_block_from(logical_block, &value)
    }

    /// [`write_block`](Client::write_block) from a borrowed slice: the
    /// caller keeps ownership and no staging copy is made until the `swap`
    /// payload itself is built. This is the natural entry point for
    /// callers that hold a large buffer and write it out block by block
    /// (e.g. the blockdev layer), where the `Vec` variant forced one extra
    /// whole-block copy per write.
    ///
    /// # Errors
    ///
    /// As [`Client::write_block`].
    pub fn write_block_from(&self, logical_block: u64, value: &[u8]) -> Result<(), ProtocolError> {
        let placement = self.cfg.layout.locate(logical_block);
        self.write_stripe_index_from(StripeId(placement.stripe), placement.index, value)
    }

    /// `WRITE` addressed by (stripe, data-block index).
    ///
    /// # Errors
    ///
    /// As [`Client::write_block`].
    pub fn write_stripe_index(
        &self,
        stripe: StripeId,
        i: usize,
        value: Vec<u8>,
    ) -> Result<(), ProtocolError> {
        self.write_stripe_index_from(stripe, i, &value)
    }

    /// [`write_stripe_index`](Client::write_stripe_index) from a borrowed
    /// slice (see [`Client::write_block_from`]).
    ///
    /// # Errors
    ///
    /// As [`Client::write_block`].
    pub fn write_stripe_index_from(
        &self,
        stripe: StripeId,
        i: usize,
        value: &[u8],
    ) -> Result<(), ProtocolError> {
        assert!(i < self.cfg.k(), "data index {i} out of range");
        if value.len() != self.cfg.block_size {
            return Err(ProtocolError::BadBlockSize {
                expected: self.cfg.block_size,
                got: value.len(),
            });
        }
        let k = self.cfg.k();
        let n = self.cfg.n();
        let full: BTreeSet<usize> = std::iter::once(i).chain(k..n).collect();
        let mut backoff = self.backoff(stripe, 2);

        // Outer `repeat` (Fig. 5 lines 1 and 22): a fresh swap each attempt.
        for _ in 0..self.cfg.write_attempt_limit {
            let ntid = Tid::new(self.seq.fetch_add(1, Ordering::Relaxed), i, self.id());
            let swap = self.swap_with_recovery(stripe, i, value, ntid)?;
            let old = swap.block.expect("swap_with_recovery returns content");
            let epoch = swap.epoch;
            let mut otid = swap.otid;

            let mut t: BTreeSet<usize> = (k..n).collect(); // nodes to update
            let mut d: BTreeSet<usize> = BTreeSet::from([i]); // nodes done
            let mut order_rounds = 0u32;

            while !t.is_empty() && !d.is_empty() {
                let results =
                    self.send_adds(stripe, i, value, &old, ntid, otid, epoch, &t)?;

                let mut retry = BTreeSet::new();
                let mut saw_order = false;
                let mut need_recovery = false;
                for (&j, r) in t.iter().zip(&results) {
                    match r.status {
                        AddStatus::Ok => {
                            d.insert(j);
                        }
                        AddStatus::Order => {
                            saw_order = true;
                            retry.insert(j);
                        }
                        AddStatus::Unavail => {
                            if !matches!(r.lmode, LMode::Unl | LMode::L0) {
                                retry.insert(j);
                            }
                            // else: stale epoch or INIT node — drop from T;
                            // the outer repeat will re-swap if needed.
                        }
                    }
                    // Fig. 5 line 13: expired lock, crashed node, or
                    // hopeless ordering ⇒ run recovery.
                    if r.lmode == LMode::Exp
                        || (r.opmode != OpMode::Norm && r.lmode == LMode::Unl)
                        || (r.status == AddStatus::Order
                            && order_rounds >= self.cfg.order_retry_limit)
                    {
                        need_recovery = true;
                    }
                }
                if need_recovery {
                    self.recover_stripe(stripe)?;
                }
                if saw_order {
                    order_rounds += 1;
                    // Fig. 5 lines 15-19: has the predecessor write been
                    // GC'd (completed) or has a done node crashed?
                    if let Some(ot) = otid {
                        let checks: Vec<_> = d
                            .iter()
                            .map(|&j| {
                                (
                                    self.node_of(stripe, j),
                                    Request::CheckTid {
                                        stripe,
                                        ntid,
                                        otid: ot,
                                    },
                                )
                            })
                            .collect();
                        let check_replies = call_many(&self.endpoint, &self.cfg, checks);
                        let mut drop_from_d = Vec::new();
                        for (&j, res) in d.iter().zip(check_replies) {
                            match expect_reply!(res?, Reply::CheckTid) {
                                CheckTidReply::Gc => otid = None,
                                CheckTidReply::Init => drop_from_d.push(j),
                                CheckTidReply::NoChange => {}
                            }
                        }
                        for j in drop_from_d {
                            d.remove(&j);
                        }
                    }
                    backoff.pause(); // "p retries the add after a while" (§3.9)
                }
                t = retry;
            }

            let complete = d == full;
            // The old block has served its deltas; recycle it for the next
            // write's staging buffers.
            crate::pool::give(old);
            if complete {
                let mut gc = self.gc.lock();
                for &j in &d {
                    gc.pending.entry((stripe, j)).or_default().push(ntid);
                }
                return Ok(());
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "WRITE",
            attempts: self.cfg.write_attempt_limit,
        })
    }

    /// Scatter-gather `WRITE`: writes many logical blocks, grouping them by
    /// stripe so each stripe pays one `swap` round plus one *batched* `add`
    /// message per redundant node instead of one message per block, and
    /// pipelining independent stripes across a bounded scoped-thread pool
    /// of [`ProtocolConfig::pipeline_width`] workers.
    ///
    /// Atomicity is per block, exactly as with a loop of
    /// [`Client::write_block`]: the multi-block call itself is not atomic
    /// (the physical-disk contract), so on error some blocks may have been
    /// written. Duplicate logical blocks collapse to the last value given,
    /// matching the final state of the equivalent sequential loop.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadBlockSize`] if any value is not block-sized
    /// (checked before any RPC); otherwise the first per-block error, after
    /// the remaining stripes have been given their chance to complete.
    pub fn write_blocks(&self, writes: &[(u64, &[u8])]) -> Result<(), ProtocolError> {
        for &(_, value) in writes {
            if value.len() != self.cfg.block_size {
                return Err(ProtocolError::BadBlockSize {
                    expected: self.cfg.block_size,
                    got: value.len(),
                });
            }
        }
        let mut by_stripe: BTreeMap<u64, BTreeMap<usize, &[u8]>> = BTreeMap::new();
        for &(lb, value) in writes {
            let pl = self.cfg.layout.locate(lb);
            by_stripe.entry(pl.stripe).or_default().insert(pl.index, value);
        }
        type StripeWork<'v> = (StripeId, Vec<(usize, &'v [u8])>);
        let work: Vec<StripeWork> = by_stripe
            .into_iter()
            .map(|(s, items)| (StripeId(s), items.into_iter().collect()))
            .collect();
        let width = self.cfg.pipeline_width.max(1).min(work.len());
        if width <= 1 {
            for (s, items) in &work {
                self.write_stripe_batch(*s, items)?;
            }
            return Ok(());
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let first_err: Mutex<Option<ProtocolError>> = Mutex::new(None);
        crossbeam::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|_| loop {
                    let w = next.fetch_add(1, Ordering::Relaxed);
                    let Some((s, items)) = work.get(w) else { break };
                    // A failed stripe does not stop the others: atomicity
                    // is per block, and finishing independent stripes
                    // leaves the disk closer to the requested state.
                    if let Err(e) = self.write_stripe_batch(*s, items) {
                        first_err.lock().get_or_insert(e);
                    }
                });
            }
        })
        .expect("stripe pipeline worker panicked");
        first_err.into_inner().map_or(Ok(()), Err)
    }

    /// `WRITE` of several data blocks of *one* stripe: the vectorized form
    /// of [`Client::write_stripe_index_from`]. The per-block state machine
    /// of Fig. 5 is unchanged — same `swap`, same classification of `add`
    /// replies, same `checktid` probe, same recovery triggers, same outer
    /// re-swap attempts — but the messages are coalesced: one `swap` round
    /// over the (distinct) data nodes, then `add` rounds where each
    /// redundant node receives a single [`Request::Batch`] carrying every
    /// block's increment.
    ///
    /// Under [`UpdateStrategy::Broadcast`] the increments are client-scaled
    /// (as for the other strategies) rather than node-scaled: a batch
    /// already amortizes the per-message cost the §3.11 multicast saves,
    /// and per-node batches cannot share one payload anyway.
    fn write_stripe_batch(
        &self,
        stripe: StripeId,
        items: &[(usize, &[u8])],
    ) -> Result<(), ProtocolError> {
        if let [(i, value)] = items[..] {
            return self.write_stripe_index_from(stripe, i, value);
        }
        let k = self.cfg.k();
        let n = self.cfg.n();
        let mut backoff = self.backoff(stripe, 5);
        let mut first_err: Option<ProtocolError> = None;

        /// One logical block's write, vectorized across the stripe.
        struct Slot<'v> {
            i: usize,
            value: &'v [u8],
            done: bool,
            failed: bool,
        }
        /// A slot whose `swap` succeeded and whose `add`s are in flight —
        /// the loop state of Fig. 5 lines 7-21 for that block.
        struct Pending {
            x: usize,
            ntid: Tid,
            old: Vec<u8>,
            epoch: Epoch,
            otid: Option<Tid>,
            t: BTreeSet<usize>,
            d: BTreeSet<usize>,
            order_rounds: u32,
        }
        let mut slots: Vec<Slot> = items
            .iter()
            .map(|&(i, value)| {
                assert!(i < k, "data index {i} out of range");
                Slot { i, value, done: false, failed: false }
            })
            .collect();

        // Outer `repeat` (Fig. 5 lines 1 and 22), shared across the blocks
        // still unfinished.
        for _ in 0..self.cfg.write_attempt_limit {
            let active: Vec<usize> = (0..slots.len())
                .filter(|&x| !slots[x].done && !slots[x].failed)
                .collect();
            if active.is_empty() {
                break;
            }

            // Swap round: within one stripe, distinct data indices live on
            // distinct nodes, so this is one message per node — a single
            // `pfor` round trip for the whole run.
            let swaps: Vec<(usize, Tid)> = active
                .iter()
                .map(|&x| {
                    let ntid =
                        Tid::new(self.seq.fetch_add(1, Ordering::Relaxed), slots[x].i, self.id());
                    (x, ntid)
                })
                .collect();
            let calls: Vec<(NodeId, Request)> = swaps
                .iter()
                .map(|&(x, ntid)| {
                    (
                        self.node_of(stripe, slots[x].i),
                        Request::Swap {
                            stripe,
                            value: self.staged_copy(slots[x].value),
                            ntid,
                        },
                    )
                })
                .collect();
            let mut pending: Vec<Pending> = Vec::with_capacity(active.len());
            for (&(x, ntid), res) in swaps.iter().zip(call_many(&self.endpoint, &self.cfg, calls))
            {
                let swap = match res {
                    Err(e) => {
                        // A swap lost indeterminately may have executed;
                        // like the sequential path, this block's write
                        // surfaces the error rather than re-sending.
                        slots[x].failed = true;
                        first_err.get_or_insert(e);
                        continue;
                    }
                    Ok(Reply::Swap(r)) if r.block.is_some() => r,
                    Ok(Reply::Swap(_)) => {
                        // Busy or INIT node: nothing was recorded, so retry
                        // through the contended path (recovery included)
                        // with the same tid.
                        match self.swap_with_recovery(stripe, slots[x].i, slots[x].value, ntid) {
                            Ok(r) => r,
                            Err(e) => {
                                slots[x].failed = true;
                                first_err.get_or_insert(e);
                                continue;
                            }
                        }
                    }
                    Ok(other) => {
                        slots[x].failed = true;
                        first_err
                            .get_or_insert(ProtocolError::unexpected("Reply::Swap", &other));
                        continue;
                    }
                };
                pending.push(Pending {
                    x,
                    ntid,
                    old: swap.block.expect("checked above"),
                    epoch: swap.epoch,
                    otid: swap.otid,
                    t: (k..n).collect(),
                    d: BTreeSet::from([slots[x].i]),
                    order_rounds: 0,
                });
            }

            // Add rounds (Fig. 5 lines 7-21, vectorized): per strategy
            // round, each redundant node gets ONE batched message carrying
            // every pending block's increment for it.
            while !pending.is_empty() {
                let mut replies: Vec<BTreeMap<usize, ajx_storage::AddReply>> =
                    (0..pending.len()).map(|_| BTreeMap::new()).collect();
                let mut dead: Vec<bool> = vec![false; pending.len()];
                for round in self.cfg.strategy.rounds(k, n) {
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &j in &round {
                        let want: Vec<usize> = (0..pending.len())
                            .filter(|&px| !dead[px] && pending[px].t.contains(&j))
                            .collect();
                        if !want.is_empty() {
                            groups.push((j, want));
                        }
                    }
                    if groups.is_empty() {
                        continue;
                    }
                    let calls: Vec<(NodeId, Request)> = groups
                        .iter()
                        .map(|(j, want)| {
                            let mut reqs: Vec<Request> = want
                                .iter()
                                .map(|&px| {
                                    let p = &pending[px];
                                    let value = slots[p.x].value;
                                    let mut delta = crate::pool::take(value.len());
                                    self.cfg
                                        .code
                                        .delta_into_buf(j - k, slots[p.x].i, value, &p.old, &mut delta)
                                        .expect("block sizes validated");
                                    Request::Add {
                                        stripe,
                                        delta,
                                        ntid: p.ntid,
                                        otid: p.otid,
                                        epoch: p.epoch,
                                        scale: None,
                                    }
                                })
                                .collect();
                            let req = if reqs.len() == 1 {
                                reqs.pop().expect("one element")
                            } else {
                                Request::Batch(reqs)
                            };
                            (self.node_of(stripe, *j), req)
                        })
                        .collect();
                    for ((j, want), res) in
                        groups.iter().zip(call_many(&self.endpoint, &self.cfg, calls))
                    {
                        match res {
                            Err(e) => {
                                // Adds are not idempotent: an indeterminate
                                // failure fails every block in this batch.
                                first_err.get_or_insert(e);
                                for &px in want {
                                    dead[px] = true;
                                }
                            }
                            Ok(Reply::Add(r)) if want.len() == 1 => {
                                replies[want[0]].insert(*j, r);
                            }
                            Ok(Reply::Batch(rs)) if rs.len() == want.len() => {
                                for (&px, sub) in want.iter().zip(rs) {
                                    if let Reply::Add(r) = sub {
                                        replies[px].insert(*j, r);
                                    } else {
                                        first_err.get_or_insert(ProtocolError::unexpected(
                                            "Reply::Add",
                                            &sub,
                                        ));
                                        dead[px] = true;
                                    }
                                }
                            }
                            Ok(other) => {
                                first_err.get_or_insert(ProtocolError::unexpected(
                                    "Reply::Add or Reply::Batch",
                                    &other,
                                ));
                                for &px in want {
                                    dead[px] = true;
                                }
                            }
                        }
                    }
                }

                // Classify, per block — identical to the sequential inner
                // loop. Every j still in a live block's T got a reply above
                // (the strategy rounds partition k..n; RPC failures marked
                // the block dead), so `retry` is complete.
                let mut need_recovery = false;
                let mut any_order = false;
                for px in 0..pending.len() {
                    if dead[px] {
                        continue;
                    }
                    let p = &mut pending[px];
                    let mut retry = BTreeSet::new();
                    let mut saw_order = false;
                    for (&j, r) in &replies[px] {
                        match r.status {
                            AddStatus::Ok => {
                                p.d.insert(j);
                            }
                            AddStatus::Order => {
                                saw_order = true;
                                retry.insert(j);
                            }
                            AddStatus::Unavail => {
                                if !matches!(r.lmode, LMode::Unl | LMode::L0) {
                                    retry.insert(j);
                                }
                            }
                        }
                        if r.lmode == LMode::Exp
                            || (r.opmode != OpMode::Norm && r.lmode == LMode::Unl)
                            || (r.status == AddStatus::Order
                                && p.order_rounds >= self.cfg.order_retry_limit)
                        {
                            need_recovery = true;
                        }
                    }
                    p.t = retry;
                    if saw_order {
                        p.order_rounds += 1;
                        any_order = true;
                        // Fig. 5 lines 15-19, per block.
                        if let Some(ot) = p.otid {
                            let checks: Vec<_> = p
                                .d
                                .iter()
                                .map(|&j| {
                                    (
                                        self.node_of(stripe, j),
                                        Request::CheckTid { stripe, ntid: p.ntid, otid: ot },
                                    )
                                })
                                .collect();
                            let check_replies = call_many(&self.endpoint, &self.cfg, checks);
                            let mut drop_from_d = Vec::new();
                            for (&j, res) in p.d.iter().zip(check_replies) {
                                match res {
                                    Ok(Reply::CheckTid(CheckTidReply::Gc)) => p.otid = None,
                                    Ok(Reply::CheckTid(CheckTidReply::Init)) => {
                                        drop_from_d.push(j);
                                    }
                                    Ok(Reply::CheckTid(CheckTidReply::NoChange)) => {}
                                    Ok(other) => {
                                        first_err.get_or_insert(ProtocolError::unexpected(
                                            "Reply::CheckTid",
                                            &other,
                                        ));
                                        dead[px] = true;
                                        break;
                                    }
                                    Err(e) => {
                                        first_err.get_or_insert(e);
                                        dead[px] = true;
                                        break;
                                    }
                                }
                            }
                            for j in drop_from_d {
                                p.d.remove(&j);
                            }
                        }
                    }
                }
                if need_recovery {
                    self.recover_stripe(stripe)?;
                }
                if any_order {
                    backoff.pause(); // "p retries the add after a while" (§3.9)
                }

                // Retire finished blocks: complete (d = full) blocks are
                // recorded for GC; incomplete ones with nothing left to try
                // fall back to the next outer attempt's re-swap.
                let mut rest = Vec::with_capacity(pending.len());
                for (px, p) in pending.into_iter().enumerate() {
                    if dead[px] {
                        slots[p.x].failed = true;
                        crate::pool::give(p.old);
                        continue;
                    }
                    if !p.t.is_empty() && !p.d.is_empty() {
                        rest.push(p);
                        continue;
                    }
                    let full: BTreeSet<usize> =
                        std::iter::once(slots[p.x].i).chain(k..n).collect();
                    let complete = p.d == full;
                    crate::pool::give(p.old);
                    if complete {
                        let mut gc = self.gc.lock();
                        for &j in &p.d {
                            gc.pending.entry((stripe, j)).or_default().push(p.ntid);
                        }
                        slots[p.x].done = true;
                    }
                }
                pending = rest;
            }
        }

        if let Some(e) = first_err {
            return Err(e);
        }
        if slots.iter().any(|s| !s.done) {
            return Err(ProtocolError::RetriesExhausted {
                what: "WRITE",
                attempts: self.cfg.write_attempt_limit,
            });
        }
        Ok(())
    }

    /// Copies a borrowed value into a pool-backed owned buffer — the form a
    /// `swap` payload must take — without hitting the allocator in steady
    /// state.
    fn staged_copy(&self, value: &[u8]) -> Vec<u8> {
        let mut v = crate::pool::take(value.len());
        v.copy_from_slice(value);
        v
    }

    /// The `swap` loop of Fig. 5 lines 3-6: retry until the data node
    /// accepts, running recovery when the block is unavailable.
    fn swap_with_recovery(
        &self,
        stripe: StripeId,
        i: usize,
        value: &[u8],
        ntid: Tid,
    ) -> Result<SwapReply, ProtocolError> {
        let node = self.node_of(stripe, i);
        let mut backoff = self.backoff(stripe, 3);
        for _ in 0..=self.cfg.busy_retry_limit {
            let reply = call(
                &self.endpoint,
                &self.cfg,
                node,
                Request::Swap {
                    stripe,
                    value: self.staged_copy(value),
                    ntid,
                },
            )?;
            let r = expect_reply!(reply, Reply::Swap);
            if r.block.is_some() {
                return Ok(r);
            }
            if r.lmode.allows_recovery_start() {
                self.recover_stripe(stripe)?;
            } else {
                backoff.pause();
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "swap",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// Issues the redundant-block `add`s for the nodes in `targets`,
    /// batched per the update strategy, returning one reply per target in
    /// `targets`'s iteration order.
    #[allow(clippy::too_many_arguments)]
    fn send_adds(
        &self,
        stripe: StripeId,
        i: usize,
        value: &[u8],
        old: &[u8],
        ntid: Tid,
        otid: Option<Tid>,
        epoch: Epoch,
        targets: &BTreeSet<usize>,
    ) -> Result<Vec<ajx_storage::AddReply>, ProtocolError> {
        let k = self.cfg.k();
        let n = self.cfg.n();
        let mut replies: BTreeMap<usize, ajx_storage::AddReply> = BTreeMap::new();

        if self.cfg.strategy == UpdateStrategy::Broadcast {
            // §3.11: multicast v − w once; nodes multiply by their own α.
            let diff = self.cfg.code.broadcast_delta(value, old)?;
            let reqs: Vec<_> = targets
                .iter()
                .map(|&j| {
                    (
                        self.node_of(stripe, j),
                        Request::Add {
                            stripe,
                            delta: diff.clone(),
                            ntid,
                            otid,
                            epoch,
                            scale: Some((j - k, i)),
                        },
                    )
                })
                .collect();
            let results = self.broadcast_with_remap(reqs);
            for (&j, res) in targets.iter().zip(results) {
                replies.insert(j, expect_reply!(res?, Reply::Add));
            }
        } else {
            // The hybrid `for h / pfor j ∈ G_h ∩ M` of §4 (serial and
            // parallel are its degenerate cases).
            for round in self.cfg.strategy.rounds(k, n) {
                let members: Vec<usize> =
                    round.into_iter().filter(|j| targets.contains(j)).collect();
                if members.is_empty() {
                    continue;
                }
                let calls: Vec<_> = members
                    .iter()
                    .map(|&j| {
                        let mut delta = crate::pool::take(value.len());
                        self.cfg
                            .code
                            .delta_into_buf(j - k, i, value, old, &mut delta)
                            .expect("block sizes validated");
                        (
                            self.node_of(stripe, j),
                            Request::Add {
                                stripe,
                                delta,
                                ntid,
                                otid,
                                epoch,
                                scale: None,
                            },
                        )
                    })
                    .collect();
                for (&j, res) in members.iter().zip(call_many(&self.endpoint, &self.cfg, calls))
                {
                    replies.insert(j, expect_reply!(res?, Reply::Add));
                }
            }
        }
        Ok(targets.iter().map(|j| replies[j]).collect())
    }

    fn broadcast_with_remap(
        &self,
        reqs: Vec<(NodeId, Request)>,
    ) -> Vec<Result<Reply, ProtocolError>> {
        let retry = reqs.clone();
        self.endpoint
            .broadcast(reqs)
            .into_iter()
            .zip(retry)
            .map(|(res, (node, req))| match res {
                Ok(r) => Ok(r),
                Err(ajx_transport::RpcError::NodeDown(_)) if self.cfg.auto_remap => {
                    self.endpoint.network().remap_node(node, self.cfg.remap_garbage);
                    self.endpoint.call(node, req).map_err(ProtocolError::from)
                }
                Err(e) => Err(ProtocolError::from(e)),
            })
            .collect()
    }

    /// Runs recovery for `stripe` until it completes — either by this
    /// client or by the client we lost the race to (Fig. 4 line 4 /
    /// Fig. 5's `start_recovery`).
    ///
    /// # Errors
    ///
    /// As [`crate::recovery`] plus [`ProtocolError::RetriesExhausted`] when
    /// losing the race repeatedly without the stripe becoming readable.
    pub fn recover_stripe(&self, stripe: StripeId) -> Result<(), ProtocolError> {
        let mut backoff = self.backoff(stripe, 4);
        for _ in 0..=self.cfg.busy_retry_limit {
            match recover(&self.endpoint, &self.cfg, self.id(), stripe)? {
                RecoveryOutcome::Completed => return Ok(()),
                RecoveryOutcome::LostRace => {
                    backoff.pause();
                    // If the other client finished, the stripe is usable
                    // again; probe cheaply via a node's lock mode.
                    if self.probe_stripe_released(stripe)? {
                        return Ok(());
                    }
                }
            }
        }
        Err(ProtocolError::RetriesExhausted {
            what: "recovery",
            attempts: self.cfg.busy_retry_limit + 1,
        })
    }

    /// Rebuilds the given stripes with the batched engine (see
    /// [`crate::RebuildReport`]): chunks of stripes are repaired with one
    /// batched lock / state / reconstruct / finalize round per storage
    /// node, decode plans come from the config's shared cache, and up to
    /// `cfg.rebuild_width` chunks run concurrently. Healthy stripes are
    /// probed first and skipped; anything the batched fast path cannot
    /// settle falls back to serial Fig. 6 recovery.
    ///
    /// # Errors
    ///
    /// The first error from a chunk, after every chunk has run — stripes
    /// in other chunks are still repaired.
    pub fn rebuild_stripes(&self, stripes: &[StripeId]) -> Result<RebuildReport, ProtocolError> {
        crate::rebuild::rebuild_stripes(self, stripes)
    }

    /// Rebuilds every stripe that lost a block to `node` failing: remaps
    /// the node (fresh INIT replacement) if it is still down, then runs
    /// [`Client::rebuild_stripes`] over stripes `0..stripe_count`. With as
    /// many storage nodes as in-stripe indices (the §3.11 rotated layout),
    /// every stripe had a block on the failed node, so the whole range is
    /// examined; stripes already repaired are probed and skipped cheaply.
    ///
    /// # Errors
    ///
    /// As [`Client::rebuild_stripes`].
    pub fn rebuild_node(
        &self,
        node: NodeId,
        stripe_count: u64,
    ) -> Result<RebuildReport, ProtocolError> {
        let network = self.endpoint.network();
        if !network.node_is_up(node) {
            network.remap_node(node, self.cfg.remap_garbage);
        }
        let stripes: Vec<StripeId> = (0..stripe_count).map(StripeId).collect();
        self.rebuild_stripes(&stripes)
    }

    /// Checks whether the recovery we lost the race to has finished and
    /// released the stripe.
    ///
    /// Asks the data nodes in index order and settles for the first one
    /// that answers: the probe must not be pinned to data node 0, because
    /// when *that* is the crashed node a transport error here used to abort
    /// the whole recovery retry loop. An unreachable node just means "ask
    /// the next one"; if nobody answers, the stripe is conservatively
    /// treated as still recovering.
    fn probe_stripe_released(&self, stripe: StripeId) -> Result<bool, ProtocolError> {
        for t in 0..self.cfg.n() {
            match call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, t),
                Request::Probe { stripe },
            ) {
                Ok(Reply::Probe { opmode, lmode, .. }) => {
                    return Ok(opmode == OpMode::Norm && lmode == LMode::Unl)
                }
                Ok(other) => return Err(ProtocolError::unexpected("Reply::Probe", &other)),
                Err(ProtocolError::Rpc(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// One garbage-collection cycle (Fig. 7's `collect_garbage` task).
    ///
    /// Phase 1 drops previously-moved tids from nodes' oldlists; phase 2
    /// moves this client's completed writes from recentlists to oldlists.
    /// Nodes that are busy (locked or INIT) are skipped and retried next
    /// cycle, matching the paper's `repeat ... until OK` with bounded
    /// patience.
    ///
    /// # Errors
    ///
    /// Transport failures only; a busy node is not an error. Entries whose
    /// RPC fails (or is still queued when one fails) stay in the client's
    /// lists for the next cycle — an aborted cycle must never leak tids,
    /// or the nodes' recent/old lists are never collected.
    pub fn collect_garbage(&self) -> Result<GcReport, ProtocolError> {
        let mut report = GcReport::default();

        // Phase 1: discard from oldlists. Each entry is removed from the
        // bookkeeping only for the duration of its own RPC and restored on
        // any failure, so an error aborts the cycle without losing state.
        let old_keys: Vec<(StripeId, usize)> = self.gc.lock().old.keys().copied().collect();
        for key @ (stripe, j) in old_keys {
            let Some(tids) = self.gc.lock().old.remove(&key) else {
                continue; // another cycle got here first
            };
            let reply = call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, j),
                Request::GcOld {
                    stripe,
                    tids: tids.clone(),
                },
            );
            match reply {
                Ok(Reply::Gc(true)) => report.dropped += tids.len(),
                Ok(Reply::Gc(false)) => {
                    report.skipped_busy += 1;
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                }
                Ok(other) => {
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                    return Err(ProtocolError::unexpected("Reply::Gc", &other));
                }
                Err(e) => {
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                    return Err(e);
                }
            }
        }

        // Phase 2: move recent → old, with the same restore-on-failure
        // discipline; successes graduate to the phase 1 list.
        let pending_keys: Vec<(StripeId, usize)> =
            self.gc.lock().pending.keys().copied().collect();
        for key @ (stripe, j) in pending_keys {
            let Some(tids) = self.gc.lock().pending.remove(&key) else {
                continue;
            };
            let reply = call(
                &self.endpoint,
                &self.cfg,
                self.node_of(stripe, j),
                Request::GcRecent {
                    stripe,
                    tids: tids.clone(),
                },
            );
            match reply {
                Ok(Reply::Gc(true)) => {
                    report.moved_to_old += tids.len();
                    self.gc.lock().old.entry(key).or_default().extend(tids);
                }
                Ok(Reply::Gc(false)) => {
                    // The move did not happen; retry phase 2 next cycle.
                    report.skipped_busy += 1;
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                }
                Ok(other) => {
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                    return Err(ProtocolError::unexpected("Reply::Gc", &other));
                }
                Err(e) => {
                    self.gc.lock().pending.entry(key).or_default().extend(tids);
                    return Err(e);
                }
            }
        }
        Ok(report)
    }

    /// The monitoring sweep of §3.10: probes every node of the given
    /// stripes and triggers recovery where it finds INIT nodes or stale
    /// unfinished writes older than `age_threshold` node ticks.
    ///
    /// # Errors
    ///
    /// Transport failures, or recovery errors for stripes beyond repair.
    pub fn monitor(
        &self,
        stripes: &[StripeId],
        age_threshold: u64,
    ) -> Result<MonitorReport, ProtocolError> {
        let mut report = MonitorReport::default();
        for &stripe in stripes {
            let probes: Vec<_> = (0..self.cfg.n())
                .map(|t| (self.node_of(stripe, t), Request::Probe { stripe }))
                .collect();
            let mut needs_recovery = false;
            for res in call_many(&self.endpoint, &self.cfg, probes) {
                match res? {
                    Reply::Probe {
                        opmode,
                        oldest_pending_age,
                        ..
                    } => {
                        if opmode == OpMode::Init
                            || oldest_pending_age.is_some_and(|a| a >= age_threshold)
                        {
                            needs_recovery = true;
                        }
                    }
                    other => return Err(ProtocolError::unexpected("Reply::Probe", &other)),
                }
            }
            if needs_recovery {
                self.recover_stripe(stripe)?;
                report.recovered.push(stripe);
            } else {
                report.healthy += 1;
            }
        }
        Ok(report)
    }

    /// Number of tids awaiting garbage collection (both phases) — §6.5's
    /// client-side bookkeeping.
    pub fn gc_backlog(&self) -> usize {
        let gc = self.gc.lock();
        gc.pending.values().map(Vec::len).sum::<usize>()
            + gc.old.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_transport::{Network, NetworkConfig};

    fn client(k: usize, n: usize) -> Client {
        let cfg = ProtocolConfig::new(k, n, 16).unwrap();
        let net = Network::new(NetworkConfig {
            n_nodes: n,
            block_size: 16,
            ..NetworkConfig::default()
        });
        Client::new(net.client(ClientId(1)), cfg)
    }

    #[test]
    fn accessors_expose_identity_and_config() {
        let c = client(2, 4);
        assert_eq!(c.id(), ClientId(1));
        assert_eq!(c.config().k(), 2);
        assert_eq!(c.endpoint().id(), ClientId(1));
    }

    #[test]
    fn gc_backlog_grows_with_writes_and_drains_with_cycles() {
        let c = client(2, 4);
        assert_eq!(c.gc_backlog(), 0);
        c.write_block(0, vec![1; 16]).unwrap();
        c.write_block(1, vec![2; 16]).unwrap();
        // Each write records its tid for the data node + 2 redundant nodes.
        assert_eq!(c.gc_backlog(), 6);
        c.collect_garbage().unwrap();
        assert_eq!(c.gc_backlog(), 6, "phase 2 done; tids now await phase 1");
        c.collect_garbage().unwrap();
        assert_eq!(c.gc_backlog(), 0);
    }

    fn client_on_net(
        k: usize,
        n: usize,
        auto_remap: bool,
    ) -> (std::sync::Arc<Network>, Client) {
        let mut cfg = ProtocolConfig::new(k, n, 16).unwrap();
        cfg.auto_remap = auto_remap;
        let net = Network::new(NetworkConfig {
            n_nodes: n,
            block_size: 16,
            ..NetworkConfig::default()
        });
        let c = Client::new(net.client(ClientId(1)), cfg);
        (net, c)
    }

    #[test]
    fn gc_cycle_aborted_by_a_crashed_node_keeps_its_bookkeeping() {
        let (net, c) = client_on_net(2, 4, false);
        c.write_block(0, vec![1; 16]).unwrap();
        c.write_block(1, vec![2; 16]).unwrap();
        assert_eq!(c.gc_backlog(), 6);
        // Crash stripe 0's data node; with auto-remap off the GC cycle
        // aborts on the dead node's RPC error.
        let victim = c.node_of(StripeId(0), 0);
        net.crash_node(victim);
        assert!(c.collect_garbage().is_err());
        assert_eq!(
            c.gc_backlog(),
            6,
            "an aborted cycle must restore every in-flight tid"
        );
        // Replace the node and repair the affected stripe (reads alone no
        // longer repair anything — the degraded path serves them lock-free
        // and leaves repair to recovery/rebuild); the preserved backlog
        // then drains to zero over the usual two-phase cycles.
        net.remap_node(victim, 0xA5);
        c.recover_stripe(StripeId(0)).unwrap();
        c.read_block(0).unwrap();
        c.read_block(1).unwrap();
        while c.gc_backlog() > 0 {
            c.collect_garbage().unwrap();
        }
    }

    #[test]
    fn lost_race_probe_falls_past_a_crashed_data_node() {
        let (net, c) = client_on_net(2, 4, false);
        c.write_block(0, vec![3; 16]).unwrap();
        let stripe = StripeId(0);
        // Crash the first data node; the probe used to be hard-wired to it
        // and surfaced the transport error, aborting recovery's retry loop.
        net.crash_node(c.node_of(stripe, 0));
        assert!(
            c.probe_stripe_released(stripe).unwrap(),
            "an unreachable first node means: ask the next one"
        );
    }

    #[test]
    fn monitor_reports_healthy_stripes_without_recovery() {
        let c = client(2, 4);
        c.write_block(0, vec![1; 16]).unwrap();
        // Very generous age threshold: the just-written tid is not stale.
        let report = c.monitor(&[StripeId(0), StripeId(5)], u64::MAX).unwrap();
        assert!(report.recovered.is_empty());
        assert_eq!(report.healthy, 2);
    }

    #[test]
    fn monitor_on_no_stripes_is_empty() {
        let c = client(2, 4);
        let report = c.monitor(&[], 1).unwrap();
        assert_eq!(report, MonitorReport::default());
    }

    #[test]
    fn bad_block_size_rejected_before_any_rpc() {
        let c = client(2, 4);
        let before = c.endpoint().stats().snapshot();
        let err = c.write_block(0, vec![1; 15]).unwrap_err();
        assert!(matches!(err, ProtocolError::BadBlockSize { .. }));
        assert_eq!(
            c.endpoint().stats().snapshot().since(&before).msgs_sent,
            0,
            "validation happens client-side"
        );
    }

    #[test]
    #[should_panic(expected = "data index")]
    fn out_of_range_stripe_index_panics() {
        let c = client(2, 4);
        let _ = c.read_stripe_index(StripeId(0), 2);
    }

    #[test]
    fn explicit_recovery_on_a_healthy_stripe_is_a_noop_rewrite() {
        let c = client(2, 4);
        c.write_block(0, vec![9; 16]).unwrap();
        c.recover_stripe(StripeId(0)).unwrap();
        assert_eq!(c.read_block(0).unwrap(), vec![9; 16]);
        // Running it again immediately is fine too (idempotent).
        c.recover_stripe(StripeId(0)).unwrap();
        assert_eq!(c.read_block(0).unwrap(), vec![9; 16]);
    }

    #[test]
    fn sequence_numbers_are_unique_across_threads() {
        let c = std::sync::Arc::new(client(2, 4));
        crossbeam_scope_writes(&c);
        // 4 threads x 25 writes: every write got a distinct tid, so the
        // data node's recentlist (pre-GC) holds exactly 100 entries.
        let total: usize = (0..2u64)
            .map(|lb| {
                let node = c.node_of(StripeId(0), lb as usize);
                c.endpoint().network().with_node(node, |n| {
                    n.block_state(StripeId(0)).map_or(0, |b| b.pending_tids())
                })
            })
            .sum();
        assert_eq!(total, 100);
    }

    fn crossbeam_scope_writes(c: &std::sync::Arc<Client>) {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(c);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        c.write_block((t + i) % 2, vec![i as u8; 16]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batched_writes_and_reads_match_the_per_block_loop() {
        let c = client(2, 4);
        let blocks: Vec<Vec<u8>> = (0..8u8).map(|b| vec![b.wrapping_mul(31); 16]).collect();
        let writes: Vec<(u64, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(lb, v)| (lb as u64, v.as_slice()))
            .collect();
        c.write_blocks(&writes).unwrap();
        // Per-block reads see the batched writes...
        for (lb, v) in blocks.iter().enumerate() {
            assert_eq!(&c.read_block(lb as u64).unwrap(), v);
        }
        // ...and the batched read agrees, in request order (here shuffled).
        let lbs: Vec<u64> = vec![5, 0, 7, 2, 2, 4];
        let got = c.read_blocks(&lbs).unwrap();
        for (x, &lb) in lbs.iter().enumerate() {
            assert_eq!(got[x], blocks[lb as usize], "lb {lb}");
        }
        assert!(c.read_blocks(&[]).unwrap().is_empty());
        c.write_blocks(&[]).unwrap();
    }

    #[test]
    fn duplicate_blocks_in_a_batched_write_collapse_to_the_last_value() {
        let c = client(2, 4);
        let a = vec![1u8; 16];
        let b = vec![2u8; 16];
        c.write_blocks(&[(3, a.as_slice()), (3, b.as_slice())]).unwrap();
        assert_eq!(c.read_block(3).unwrap(), b);
    }

    #[test]
    fn batched_read_fetches_each_stripe_at_most_once() {
        let c = client(2, 4);
        let blocks: Vec<Vec<u8>> = (0..8u8).map(|b| vec![b + 1; 16]).collect();
        for (lb, v) in blocks.iter().enumerate() {
            c.write_block(lb as u64, v.clone()).unwrap();
        }
        let before = c.endpoint().stats().snapshot();
        let lbs: Vec<u64> = (0..8).collect();
        let got = c.read_blocks(&lbs).unwrap();
        let cost = c.endpoint().stats().snapshot().since(&before);
        for (x, v) in blocks.iter().enumerate() {
            assert_eq!(&got[x], v);
        }
        // 8 blocks over 4 stripes of a 2-of-4 code touch exactly 4 distinct
        // data nodes (rotated layout), each once with a 2-read batch: 4
        // round trips instead of the per-block loop's 8 — and never more
        // than one fetch per stripe.
        assert_eq!(cost.msgs_sent, 4);
        assert_eq!(cost.round_trips, 4);
    }

    #[test]
    fn batched_write_coalesces_adds_per_redundant_node() {
        let mut cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        cfg.pipeline_width = 1; // keep the message count deterministic
        let net = Network::new(NetworkConfig {
            n_nodes: 4,
            block_size: 16,
            ..NetworkConfig::default()
        });
        let c = Client::new(net.client(ClientId(1)), cfg);
        let a = vec![7u8; 16];
        let b = vec![8u8; 16];
        let before = c.endpoint().stats().snapshot();
        // Both data blocks of stripe 0: one swap per data node (2 messages)
        // plus ONE batched add per redundant node (2 messages) — the
        // sequential loop would send 2 x (1 swap + 2 adds) = 6.
        c.write_blocks(&[(0, a.as_slice()), (1, b.as_slice())]).unwrap();
        let cost = c.endpoint().stats().snapshot().since(&before);
        assert_eq!(cost.msgs_sent, 4);
        assert_eq!(cost.round_trips, 4);
        assert_eq!(c.read_block(0).unwrap(), a);
        assert_eq!(c.read_block(1).unwrap(), b);
        // Parity holds after the batched write.
        let stripe_blocks: Vec<Vec<u8>> = (0..4)
            .map(|t| {
                let node = c.node_of(StripeId(0), t);
                net.with_node(node, |sn| {
                    sn.block_state(StripeId(0))
                        .map_or(vec![0; 16], |blk| blk.raw_block().to_vec())
                })
            })
            .collect();
        assert!(c.config().code.verify_stripe(&stripe_blocks).unwrap());
    }

    #[test]
    fn pipelined_write_blocks_spans_many_stripes_concurrently() {
        let c = client(2, 4); // default pipeline_width = 8
        let blocks: Vec<Vec<u8>> = (0..32u8).map(|b| vec![b ^ 0x5A; 16]).collect();
        let writes: Vec<(u64, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(lb, v)| (lb as u64, v.as_slice()))
            .collect();
        c.write_blocks(&writes).unwrap();
        let got = c.read_blocks(&(0..32u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(got, blocks);
    }

    #[test]
    fn batched_write_rejects_bad_block_size_before_any_rpc() {
        let c = client(2, 4);
        let ok = vec![1u8; 16];
        let bad = vec![1u8; 15];
        let before = c.endpoint().stats().snapshot();
        let err = c
            .write_blocks(&[(0, ok.as_slice()), (1, bad.as_slice())])
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BadBlockSize { .. }));
        let cost = c.endpoint().stats().snapshot().since(&before);
        assert_eq!(cost.msgs_sent, 0, "validation happens before any send");
    }
}
