//! Connection-multiplexed many-client workload driver.
//!
//! The paper's Fig. 9 experiments stop at 8 closed-loop clients — one
//! blocked thread each. The `ext_many_clients` scale-out experiment pushes
//! the same k-of-n read/write mix to 1k–10k *logical* clients, which rules
//! out thread-per-client: this module drives every client's protocol state
//! machine over the transport's completion-queue path
//! ([`ajx_transport::ClientEndpoint::submit_call`] /
//! [`poll_call`](ajx_transport::ClientEndpoint::poll_call)), so a handful
//! of OS threads multiplex the whole fleet.
//!
//! Each logical client runs the failure-free protocol inline:
//!
//! * **READ** (Fig. 4): one RPC to the stripe's data node.
//! * **WRITE** (Fig. 5): `swap` at the data node, then the `α_ji·(v − w)`
//!   delta `add`s to all `n − k` redundant nodes in parallel.
//!
//! [`RpcError::Busy`] (a node shedding load) and `AddStatus::Order` (a
//! concurrent-write ordering stall) park the affected RPC on a jittered
//! backoff and resubmit — the same policy the blocking retry path applies,
//! minus the sleeping. Clients write disjoint stripe ranges, so the
//! paper's cross-client ordering machinery is never the bottleneck being
//! measured.

use crate::backoff::BackoffSession;
use crate::config::ProtocolConfig;
use ajx_storage::{AddStatus, ClientId, NodeId, Reply, Request, StripeId, Tid};
use ajx_transport::{ClientEndpoint, Network, NetStats, PendingCall, RpcError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of a [`run_mux_workload`] run.
#[derive(Debug, Clone)]
pub struct MuxOptions {
    /// Number of logical clients.
    pub clients: usize,
    /// Closed-loop operations per client.
    pub ops_per_client: usize,
    /// Percentage of operations that are READs (the rest are WRITEs).
    pub read_pct: u32,
    /// Stripes in each client's private range (clients never share one).
    pub stripes_per_client: u64,
    /// OS threads driving the client fleet.
    pub driver_threads: usize,
}

impl Default for MuxOptions {
    fn default() -> Self {
        MuxOptions {
            clients: 8,
            ops_per_client: 100,
            read_pct: 50,
            stripes_per_client: 4,
            driver_threads: 1,
        }
    }
}

/// Aggregate outcome of a [`run_mux_workload`] run.
#[derive(Debug)]
pub struct MuxReport {
    /// Logical clients driven.
    pub clients: usize,
    /// Operations that completed successfully.
    pub completed_ops: u64,
    /// Operations abandoned on a non-retryable error.
    pub failed_ops: u64,
    /// `Busy` rejections absorbed by backoff-and-resubmit.
    pub busy_shed: u64,
    /// Operations abandoned because they exhausted the per-operation
    /// [`crate::BackoffPolicy::busy_retry_budget`] (a subset of
    /// [`failed_ops`](Self::failed_ops)) — the determinate "node is
    /// permanently saturated" signal.
    pub busy_exhausted: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Operation-level latency histogram (p50/p99 via
    /// [`NetStats::latency_percentile`]).
    pub op_stats: Arc<NetStats>,
}

impl MuxReport {
    /// Aggregate completed operations per second.
    pub fn iops(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed_ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// One outstanding redundant-node `add` of a WRITE.
enum AddSlot {
    Pending(PendingCall),
    /// Parked by `Busy`/`Order`; resubmitted once `at` passes.
    Parked { at: Instant },
    Done,
}

/// Where a logical client is inside its current operation.
enum Phase {
    /// Between operations.
    Idle,
    /// Waiting out a `Busy` shed before (re)issuing the current RPC.
    Parked { at: Instant, read: bool },
    /// READ in flight.
    Read(PendingCall),
    /// WRITE phase 1: `swap` at the data node.
    Swap(PendingCall),
    /// WRITE phase 2: parallel delta `add`s.
    Adds {
        slots: Vec<AddSlot>,
        old: Vec<u8>,
        otid: Option<Tid>,
        epoch: ajx_storage::Epoch,
    },
    /// All `ops_per_client` operations finished.
    Finished,
}

/// One logical client's protocol state machine.
struct LogicalClient {
    ep: ClientEndpoint,
    base_stripe: u64,
    op_idx: usize,
    seq: u64,
    phase: Phase,
    backoff: BackoffSession,
    op_started: Instant,
    value: Vec<u8>,
    /// `Busy` sheds the current operation may still absorb before it is
    /// abandoned as determinately failed. Refilled from
    /// [`crate::BackoffPolicy::busy_retry_budget`] at each op start.
    busy_left: u32,
}

impl LogicalClient {
    fn stripe(&self, opts: &MuxOptions) -> StripeId {
        StripeId(self.base_stripe + self.op_idx as u64 % opts.stripes_per_client)
    }

    /// Data-block index this operation targets.
    fn data_index(&self, cfg: &ProtocolConfig) -> usize {
        self.op_idx % cfg.k()
    }

    fn is_read(&self, opts: &MuxOptions) -> bool {
        // Deterministic interleaved mix, e.g. read_pct 60 → ops 0-59 of
        // every hundred read. Spread by a stride so reads and writes mix.
        (self.op_idx as u32).wrapping_mul(37) % 100 < opts.read_pct
    }

    fn node_of(&self, cfg: &ProtocolConfig, stripe: StripeId, t: usize) -> NodeId {
        NodeId(cfg.layout.node_for(stripe.0, t) as u32)
    }
}

/// Outcome of driving one client one step.
enum Step {
    /// State advanced (an RPC resolved, was issued, or an op completed).
    Progress,
    /// Nothing resolvable right now.
    Pending,
    /// The client has completed all its operations.
    Finished,
}

/// Drives `opts.clients` logical clients through a closed-loop read/write
/// mix over `net`, multiplexed onto `opts.driver_threads` OS threads.
///
/// Every client gets its own [`ClientEndpoint`] (own fault-decision stream,
/// own stats) and a private stripe range `[id · stripes_per_client, …)`.
pub fn run_mux_workload(
    net: &Arc<Network>,
    cfg: &ProtocolConfig,
    opts: &MuxOptions,
) -> MuxReport {
    let op_stats = Arc::new(NetStats::new());
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);

    let mut fleet: Vec<LogicalClient> = (0..opts.clients)
        .map(|c| {
            let id = ClientId(c as u32);
            LogicalClient {
                ep: net.client(id),
                base_stripe: c as u64 * opts.stripes_per_client,
                op_idx: 0,
                seq: 0,
                phase: Phase::Idle,
                backoff: cfg.backoff.session(0xDEAD_BEEF ^ (c as u64) << 8),
                op_started: Instant::now(),
                value: Vec::new(),
                busy_left: cfg.backoff.busy_retry_budget,
            }
        })
        .collect();

    let started = Instant::now();
    let threads = opts.driver_threads.max(1).min(fleet.len().max(1));
    let chunk = fleet.len().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for slice in fleet.chunks_mut(chunk) {
            let op_stats = Arc::clone(&op_stats);
            let (completed, failed, busy, exhausted) =
                (&completed, &failed, &busy, &exhausted);
            s.spawn(move || {
                let mut live = slice.len();
                while live > 0 {
                    let mut progressed = false;
                    live = 0;
                    for client in slice.iter_mut() {
                        match step(
                            client, cfg, opts, &op_stats, completed, failed, busy, exhausted,
                        ) {
                            Step::Progress => {
                                progressed = true;
                                live += 1;
                            }
                            Step::Pending => live += 1,
                            Step::Finished => {}
                        }
                    }
                    if live > 0 && !progressed {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    MuxReport {
        clients: opts.clients,
        completed_ops: completed.into_inner(),
        failed_ops: failed.into_inner(),
        busy_shed: busy.into_inner(),
        busy_exhausted: exhausted.into_inner(),
        elapsed: started.elapsed(),
        op_stats,
    }
}

/// Advances one client's state machine by at most one transition.
#[allow(clippy::too_many_arguments)]
fn step(
    c: &mut LogicalClient,
    cfg: &ProtocolConfig,
    opts: &MuxOptions,
    op_stats: &NetStats,
    completed: &AtomicU64,
    failed: &AtomicU64,
    busy: &AtomicU64,
    exhausted: &AtomicU64,
) -> Step {
    let now = Instant::now();
    match &mut c.phase {
        Phase::Finished => Step::Finished,

        Phase::Idle => {
            if c.op_idx >= opts.ops_per_client {
                c.phase = Phase::Finished;
                return Step::Finished;
            }
            c.op_started = now;
            issue_op(c, cfg, opts);
            Step::Progress
        }

        Phase::Parked { at, read } => {
            if now < *at {
                return Step::Pending;
            }
            let read = *read;
            reissue_op(c, cfg, opts, read);
            Step::Progress
        }

        Phase::Read(pending) => match c.ep.poll_call(pending) {
            None => Step::Pending,
            Some(Ok(_reply)) => {
                finish_op(c, op_stats, completed, now);
                Step::Progress
            }
            Some(Err(RpcError::Busy(_))) => {
                busy.fetch_add(1, Ordering::Relaxed);
                if c.busy_left == 0 {
                    exhausted.fetch_add(1, Ordering::Relaxed);
                    abandon_op(c, failed);
                } else {
                    c.busy_left -= 1;
                    c.phase = Phase::Parked {
                        at: now + c.backoff.next_delay(),
                        read: true,
                    };
                }
                Step::Progress
            }
            Some(Err(_)) => {
                abandon_op(c, failed);
                Step::Progress
            }
        },

        Phase::Swap(pending) => match c.ep.poll_call(pending) {
            None => Step::Pending,
            Some(Ok(Reply::Swap(r))) if r.block.is_some() => {
                // Fig. 5 lines 7-12: fan the delta out to every redundant
                // node in parallel.
                let stripe = c.stripe(opts);
                let i = c.data_index(cfg);
                let ntid = Tid::new(c.seq, i, c.ep.id());
                let old = r.block.expect("checked above");
                let slots = (cfg.k()..cfg.n())
                    .map(|j| {
                        let mut delta = vec![0u8; cfg.block_size];
                        cfg.code
                            .delta_into_buf(j - cfg.k(), i, &c.value, &old, &mut delta)
                            .expect("block sizes validated");
                        AddSlot::Pending(c.ep.submit_call(
                            c.node_of(cfg, stripe, j),
                            Request::Add {
                                stripe,
                                delta,
                                ntid,
                                otid: r.otid,
                                epoch: r.epoch,
                                scale: None,
                            },
                        ))
                    })
                    .collect();
                c.phase = Phase::Adds {
                    slots,
                    old,
                    otid: r.otid,
                    epoch: r.epoch,
                };
                Step::Progress
            }
            Some(Ok(_)) => {
                // Swap rejected (locked / non-normal mode) — impossible in
                // this fault-free closed loop, but don't wedge if it shows.
                abandon_op(c, failed);
                Step::Progress
            }
            Some(Err(RpcError::Busy(_))) => {
                busy.fetch_add(1, Ordering::Relaxed);
                if c.busy_left == 0 {
                    exhausted.fetch_add(1, Ordering::Relaxed);
                    abandon_op(c, failed);
                } else {
                    c.busy_left -= 1;
                    c.phase = Phase::Parked {
                        at: now + c.backoff.next_delay(),
                        read: false,
                    };
                }
                Step::Progress
            }
            Some(Err(_)) => {
                abandon_op(c, failed);
                Step::Progress
            }
        },

        Phase::Adds { slots, .. } => {
            let mut progressed = false;
            let mut all_done = true;
            let mut park: Vec<usize> = Vec::new();
            let mut fail = false;
            let mut budget_gone = false;
            for (idx, slot) in slots.iter_mut().enumerate() {
                match slot {
                    AddSlot::Done => {}
                    AddSlot::Parked { at } => {
                        all_done = false;
                        if now >= *at {
                            park.push(idx);
                        }
                    }
                    AddSlot::Pending(pending) => match c.ep.poll_call(pending) {
                        None => all_done = false,
                        Some(Ok(Reply::Add(a))) if a.status == AddStatus::Ok => {
                            *slot = AddSlot::Done;
                            progressed = true;
                        }
                        Some(Ok(Reply::Add(_))) => {
                            // Order/Unavail: not applied; retry after a
                            // pause (§3.7 ordering stall).
                            all_done = false;
                            progressed = true;
                            *slot = AddSlot::Parked {
                                at: now + c.backoff.next_delay(),
                            };
                        }
                        Some(Err(RpcError::Busy(_))) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                            if c.busy_left == 0 {
                                // The op's shared budget is gone; no point
                                // nursing the remaining slots along.
                                fail = true;
                                budget_gone = true;
                            } else {
                                c.busy_left -= 1;
                                all_done = false;
                                progressed = true;
                                *slot = AddSlot::Parked {
                                    at: now + c.backoff.next_delay(),
                                };
                            }
                        }
                        Some(Ok(_)) | Some(Err(_)) => {
                            fail = true;
                        }
                    },
                }
            }
            if fail {
                if budget_gone {
                    exhausted.fetch_add(1, Ordering::Relaxed);
                }
                abandon_op(c, failed);
                return Step::Progress;
            }
            if !park.is_empty() {
                resubmit_adds(c, cfg, opts, &park);
                return Step::Progress;
            }
            if all_done {
                finish_op(c, op_stats, completed, now);
                return Step::Progress;
            }
            if progressed {
                Step::Progress
            } else {
                Step::Pending
            }
        }
    }
}

/// Starts the next operation: draws the op kind, builds the payload for
/// writes, and issues the first RPC.
fn issue_op(c: &mut LogicalClient, cfg: &ProtocolConfig, opts: &MuxOptions) {
    c.busy_left = cfg.backoff.busy_retry_budget;
    let read = c.is_read(opts);
    if !read {
        c.seq += 1;
        let fill = (c.op_idx as u8) ^ (c.ep.id().0 as u8).rotate_left(3);
        c.value = vec![fill; cfg.block_size];
    }
    reissue_op(c, cfg, opts, read);
}

/// (Re)issues the current operation's first RPC — also the resume path
/// after a `Busy` park, which must reuse the same tid so a retried swap
/// stays idempotent at the node.
fn reissue_op(c: &mut LogicalClient, cfg: &ProtocolConfig, opts: &MuxOptions, read: bool) {
    let stripe = c.stripe(opts);
    let i = c.data_index(cfg);
    let node = c.node_of(cfg, stripe, i);
    if read {
        let pending = c.ep.submit_call(node, Request::Read { stripe });
        c.phase = Phase::Read(pending);
    } else {
        let pending = c.ep.submit_call(
            node,
            Request::Swap {
                stripe,
                value: c.value.clone(),
                ntid: Tid::new(c.seq, i, c.ep.id()),
            },
        );
        c.phase = Phase::Swap(pending);
    }
}

/// Resubmits the parked `add`s in `indices` (same tid: adds are
/// deduplicated by tid at the node, so a retry can never double-apply).
fn resubmit_adds(c: &mut LogicalClient, cfg: &ProtocolConfig, opts: &MuxOptions, indices: &[usize]) {
    let stripe = c.stripe(opts);
    let i = c.data_index(cfg);
    let ntid = Tid::new(c.seq, i, c.ep.id());
    let Phase::Adds { slots, old, otid, epoch } = &mut c.phase else {
        unreachable!("resubmit_adds outside the Adds phase");
    };
    for &idx in indices {
        let j = cfg.k() + idx;
        let mut delta = vec![0u8; cfg.block_size];
        cfg.code
            .delta_into_buf(j - cfg.k(), i, &c.value, old, &mut delta)
            .expect("block sizes validated");
        slots[idx] = AddSlot::Pending(c.ep.submit_call(
            NodeId(cfg.layout.node_for(stripe.0, j) as u32),
            Request::Add {
                stripe,
                delta,
                ntid,
                otid: *otid,
                epoch: *epoch,
                scale: None,
            },
        ));
    }
}

fn finish_op(c: &mut LogicalClient, op_stats: &NetStats, completed: &AtomicU64, now: Instant) {
    op_stats.record_latency(now.saturating_duration_since(c.op_started));
    completed.fetch_add(1, Ordering::Relaxed);
    c.op_idx += 1;
    c.phase = Phase::Idle;
}

fn abandon_op(c: &mut LogicalClient, failed: &AtomicU64) {
    failed.fetch_add(1, Ordering::Relaxed);
    c.op_idx += 1;
    c.phase = Phase::Idle;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_transport::NetworkConfig;

    fn cfg_4_8(block: usize) -> ProtocolConfig {
        ProtocolConfig::new(4, 8, block).unwrap()
    }

    fn net_for(cfg: &ProtocolConfig, extra: impl FnOnce(&mut NetworkConfig)) -> Arc<Network> {
        let mut nc = NetworkConfig {
            n_nodes: cfg.n(),
            block_size: cfg.block_size,
            code: Some(cfg.code.clone()),
            ..NetworkConfig::default()
        };
        extra(&mut nc);
        Network::new(nc)
    }

    #[test]
    fn mixed_workload_completes_and_keeps_stripes_decodable() {
        let cfg = cfg_4_8(64);
        let net = net_for(&cfg, |_| {});
        let opts = MuxOptions {
            clients: 16,
            ops_per_client: 30,
            read_pct: 60,
            stripes_per_client: 4,
            driver_threads: 2,
        };
        let report = run_mux_workload(&net, &cfg, &opts);
        assert_eq!(report.completed_ops + report.failed_ops, 16 * 30);
        assert_eq!(report.failed_ops, 0, "fault-free run must not abandon ops");
        assert!(report.op_stats.latency_percentile(0.5).is_some());

        // Every written stripe must still satisfy the code: collect the
        // n blocks of a few stripes and verify the parity relation.
        for stripe in [0u64, 5, 17, 63] {
            let blocks: Vec<Vec<u8>> = (0..cfg.n())
                .map(|t| {
                    let node = NodeId(cfg.layout.node_for(stripe, t) as u32);
                    net.with_node(node, |n| {
                        n.block_state(StripeId(stripe))
                            .map(|b| b.raw_block().to_vec())
                            .unwrap_or_else(|| vec![0; cfg.block_size])
                    })
                })
                .collect();
            assert!(
                cfg.code.verify_stripe(&blocks).unwrap(),
                "stripe {stripe} lost code consistency"
            );
        }
    }

    #[test]
    fn backpressured_run_sheds_and_still_completes_everything() {
        // A tiny queue forces Busy shedding; the driver's park-and-resubmit
        // must still complete every op (shed requests were never applied).
        let cfg = cfg_4_8(64);
        let net = net_for(&cfg, |nc| {
            nc.server_threads = 1;
            nc.node_queue_depth = Some(2);
        });
        let opts = MuxOptions {
            clients: 32,
            ops_per_client: 10,
            read_pct: 20,
            stripes_per_client: 2,
            driver_threads: 2,
        };
        let report = run_mux_workload(&net, &cfg, &opts);
        assert_eq!(report.completed_ops, 32 * 10);
        assert_eq!(report.failed_ops, 0);
    }

    #[test]
    fn saturated_cluster_exhausts_busy_budget_and_terminates() {
        // Every node paused with its queue stuffed full: each fleet RPC is
        // shed with `Busy` forever. Before the budget existed this loop
        // parked and resubmitted without bound — the run never terminated.
        // Now each op absorbs `busy_retry_budget` sheds and then fails
        // determinately.
        let mut cfg = cfg_4_8(32);
        cfg.backoff.base = Duration::ZERO; // parks expire immediately
        cfg.backoff.busy_retry_budget = 4;
        let net = net_for(&cfg, |nc| {
            nc.server_threads = 1;
            nc.node_queue_depth = Some(1);
        });
        let filler = net.client(ClientId(999));
        for t in 0..cfg.n() {
            net.pause_node(NodeId(t as u32));
        }
        // Depth 1 plus the job the parked worker already pulled: two
        // submissions saturate a node, the third is shed. Wait for the
        // worker to pull the first before queueing the second, or a fleet
        // request could sneak into the queue and hang the run.
        let mut _held: Vec<_> = Vec::new();
        for t in 0..cfg.n() {
            let node = NodeId(t as u32);
            _held.push(filler.submit_call(node, Request::Read { stripe: StripeId(0) }));
            while net.node_queue_len(node) > 0 {
                std::thread::yield_now();
            }
            _held.push(filler.submit_call(node, Request::Read { stripe: StripeId(0) }));
            assert_eq!(net.node_queue_len(node), 1, "queue at capacity");
        }
        let opts = MuxOptions {
            clients: 4,
            ops_per_client: 3,
            read_pct: 100,
            stripes_per_client: 2,
            driver_threads: 1,
        };
        let report = run_mux_workload(&net, &cfg, &opts);
        assert_eq!(report.completed_ops, 0);
        assert_eq!(report.failed_ops, 4 * 3, "every op must fail determinately");
        assert_eq!(
            report.busy_exhausted, 4 * 3,
            "every failure must be a budget exhaustion"
        );
        assert!(
            report.busy_shed >= report.busy_exhausted * 4,
            "each op must absorb its full budget before giving up"
        );
        for t in 0..cfg.n() {
            net.resume_node(NodeId(t as u32));
        }
    }

    #[test]
    fn many_clients_multiplex_on_few_threads() {
        let cfg = cfg_4_8(32);
        let net = net_for(&cfg, |_| {});
        let opts = MuxOptions {
            clients: 512,
            ops_per_client: 4,
            read_pct: 50,
            stripes_per_client: 2,
            driver_threads: 2,
        };
        let report = run_mux_workload(&net, &cfg, &opts);
        assert_eq!(report.completed_ops, 512 * 4);
        assert!(report.iops() > 0.0);
    }
}
