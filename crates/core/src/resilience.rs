//! The failure-resilience theory of §4: Theorems 1-3 and Corollary 1.
//!
//! With `p = n − k` redundant blocks, `t_p` tolerated client crashes and
//! `t_d` tolerated storage-node crashes:
//!
//! * **Theorem 1** (serial adds):   safe iff `t_d ≤ d_serial = ⌈p/(t_p+1) − t_p/2⌉`
//! * **Theorem 2** (parallel adds): safe iff `t_d ≤ d_parallel = ⌈p/2^t_p − t_p/2⌉`
//! * **Theorem 3** (hybrid):        safe iff `t_d ≤ d_serial` and the
//!   parallel-group size `r = ⌈p/s⌉ ≤ d_serial`
//! * **Corollary 1**: required redundancy `δ` and common-case write latency
//!   `ρ` per scheme.
//!
//! These functions drive the Fig. 8(a) resiliency column, the Fig. 8(c)
//! table, and the protocol's `slack` computation during recovery (Fig. 6
//! line 12).

/// Ceiling of the rational `num / den` for positive `den`.
fn ceil_div(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    num.div_euclid(den) + i64::from(num.rem_euclid(den) != 0)
}

/// Theorem 1: the maximum `t_d` tolerated with **serial** redundant-block
/// updates, `d_serial = ⌈(n−k)/(t_p+1) − t_p/2⌉`.
///
/// A non-positive result means even one storage crash is unsafe at this
/// `t_p`.
pub fn d_serial(p: usize, t_p: usize) -> i64 {
    let p = p as i64;
    let t = t_p as i64;
    // ⌈ p/(t+1) − t/2 ⌉ = ⌈ (2p − t(t+1)) / (2(t+1)) ⌉
    ceil_div(2 * p - t * (t + 1), 2 * (t + 1))
}

/// Theorem 2: the maximum `t_d` tolerated with **parallel** redundant-block
/// updates, `d_parallel = ⌈(n−k)/2^t_p − t_p/2⌉`.
pub fn d_parallel(p: usize, t_p: usize) -> i64 {
    let p = p as i64;
    let t = t_p as i64;
    let pow = 1i64 << t_p.min(62);
    // ⌈ p/2^t − t/2 ⌉ = ⌈ (2p − t·2^t) / 2^{t+1} ⌉
    ceil_div(2 * p - t * pow, 2 * pow)
}

/// Theorem 3: whether a hybrid scheme with `s` serial groups over `p`
/// redundant nodes tolerates (`t_p`, `t_d`): requires `t_d ≤ d_serial` and
/// group size `r = ⌈p/s⌉ ≤ d_serial`.
pub fn hybrid_safe(p: usize, s: usize, t_p: usize, t_d: usize) -> bool {
    if s == 0 {
        return false;
    }
    let d = d_serial(p, t_p);
    let r = ceil_div(p as i64, s as i64);
    (t_d as i64) <= d && r <= d
}

/// Corollary 1 (serial / hybrid): redundant nodes needed to tolerate
/// (`t_p`, `t_d`): `δ = 1 + (t_p+1)(t_d + t_p/2 − 1)`.
pub fn delta_serial(t_p: usize, t_d: usize) -> i64 {
    let t = t_p as i64;
    let d = t_d as i64;
    // (t+1)(d + t/2 − 1) = (t+1)(2d + t − 2)/2, always integral.
    1 + (t + 1) * (2 * d + t - 2) / 2
}

/// Corollary 1 (parallel adds): `δ = 1 + 2^t_p (t_d + t_p/2 − 1)`.
pub fn delta_parallel(t_p: usize, t_d: usize) -> i64 {
    let t = t_p as i64;
    let d = t_d as i64;
    let pow = 1i64 << t_p.min(62);
    1 + pow * (2 * d + t - 2) / 2
}

/// Corollary 1: common-case `WRITE` latency in round trips for the serial
/// scheme, `ρ = 1 + δ`.
pub fn rho_serial(delta: i64) -> i64 {
    1 + delta
}

/// Common-case `WRITE` latency for parallel adds: `ρ = 2`.
pub fn rho_parallel() -> i64 {
    2
}

/// §4 hybrid: `ρ = 1 + ⌈δ / d_serial⌉` round trips with the same `δ` as the
/// serial scheme.
pub fn rho_hybrid(delta: i64, d_serial: i64) -> Option<i64> {
    if d_serial <= 0 {
        return None;
    }
    Some(1 + ceil_div(delta, d_serial))
}

/// A (client-crashes, storage-crashes) pair a configuration tolerates —
/// Fig. 8's "1c1s" notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tolerance {
    /// Tolerated client crashes.
    pub clients: usize,
    /// Tolerated storage-node crashes.
    pub storage: usize,
}

impl std::fmt::Display for Tolerance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}c{}s", self.clients, self.storage)
    }
}

/// All maximal (t_p, t_d) pairs tolerated by `p = n − k` redundant nodes
/// under serial updates — the rows of Fig. 8(c). The list is ordered by
/// increasing `t_p` and stops when no storage crash can be tolerated.
pub fn tolerated_pairs_serial(p: usize) -> Vec<Tolerance> {
    tolerated_pairs_by(p, d_serial)
}

/// The Fig. 8(c) pairs under parallel updates (Theorem 2).
pub fn tolerated_pairs_parallel(p: usize) -> Vec<Tolerance> {
    tolerated_pairs_by(p, d_parallel)
}

fn tolerated_pairs_by(p: usize, d: impl Fn(usize, usize) -> i64) -> Vec<Tolerance> {
    let mut out = Vec::new();
    for t_p in 0.. {
        let t_d = d(p, t_p);
        if t_d < 0 {
            break;
        }
        out.push(Tolerance {
            clients: t_p,
            storage: t_d.max(0) as usize,
        });
        if t_d == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ceil_div_matches_mathematical_ceiling() {
        assert_eq!(ceil_div(4, 2), 2);
        assert_eq!(ceil_div(5, 2), 3);
        assert_eq!(ceil_div(-1, 2), 0);
        assert_eq!(ceil_div(-4, 3), -1);
        assert_eq!(ceil_div(0, 5), 0);
        assert_eq!(ceil_div(1, 4), 1);
    }

    #[test]
    fn no_client_failures_tolerates_all_redundancy() {
        // t_p = 0: every redundant node converts to a tolerated storage
        // crash in both schemes.
        for p in 1..=16 {
            assert_eq!(d_serial(p, 0), p as i64);
            assert_eq!(d_parallel(p, 0), p as i64);
        }
    }

    #[test]
    fn paper_example_two_redundant_blocks() {
        // Fig. 8(a)'s "1c1s, 0c2s" for p = 2 codes (3-of-5, 4-of-6, 5-of-7):
        assert_eq!(d_serial(2, 0), 2); // 0 clients, 2 storage
        assert_eq!(d_serial(2, 1), 1); // 1 client, 1 storage
        assert_eq!(d_serial(2, 2), 0); // 2 clients: no storage crash on top
        assert_eq!(
            tolerated_pairs_serial(2),
            vec![
                Tolerance { clients: 0, storage: 2 },
                Tolerance { clients: 1, storage: 1 },
                Tolerance { clients: 2, storage: 0 },
            ]
        );
    }

    #[test]
    fn single_redundant_block_is_raid5_like() {
        // p = 1 (e.g. 3-of-4): one storage crash with no client crashes.
        assert_eq!(
            tolerated_pairs_serial(1),
            vec![
                Tolerance { clients: 0, storage: 1 },
                Tolerance { clients: 1, storage: 0 },
            ]
        );
    }

    #[test]
    fn parallel_scheme_tolerates_fewer_client_failures() {
        // §4: "the parallel scheme has smaller latency ... but much lower
        // tolerance". With p = 8:
        assert_eq!(d_serial(8, 2), 2); // ceil(8/3 - 1) = 2
        assert_eq!(d_parallel(8, 2), 1); // ceil(8/4 - 1) = 1
        assert_eq!(d_serial(8, 3), 1); // ceil(8/4 − 3/2) = ceil(0.5) = 1
        assert_eq!(d_parallel(8, 3), 0); // ceil(8/8 − 3/2) = ceil(−0.5) = 0
    }

    #[test]
    fn corollary_inverts_theorem() {
        // δ redundant nodes computed by Corollary 1 must indeed tolerate
        // (t_p, t_d) per the matching theorem, and be minimal.
        for t_p in 0..5usize {
            for t_d in 1..6usize {
                let ds = delta_serial(t_p, t_d);
                assert!(ds >= 1, "delta must be positive for t_d >= 1");
                assert!(
                    d_serial(ds as usize, t_p) >= t_d as i64,
                    "serial delta {ds} insufficient for ({t_p},{t_d})"
                );
                if ds > 1 {
                    assert!(
                        d_serial(ds as usize - 1, t_p) < t_d as i64,
                        "serial delta {ds} not minimal for ({t_p},{t_d})"
                    );
                }
                let dp = delta_parallel(t_p, t_d);
                assert!(
                    d_parallel(dp as usize, t_p) >= t_d as i64,
                    "parallel delta {dp} insufficient for ({t_p},{t_d})"
                );
            }
        }
    }

    #[test]
    fn latency_formulas() {
        assert_eq!(rho_parallel(), 2);
        assert_eq!(rho_serial(3), 4);
        // §4: when t_p = 0, d_serial = δ so ρ_hybrid = 2.
        let t_d = 3;
        let delta = delta_serial(0, t_d);
        assert_eq!(rho_hybrid(delta, d_serial(delta as usize, 0)), Some(2));
        assert_eq!(rho_hybrid(5, 0), None);
    }

    #[test]
    fn hybrid_safety_matches_theorem_3() {
        // p = 6, t_p = 1: d_serial = ceil(3 - 0.5) = 3.
        assert_eq!(d_serial(6, 1), 3);
        // Groups of size <= 3 are safe for t_d <= 3:
        assert!(hybrid_safe(6, 2, 1, 3)); // r = 3
        assert!(hybrid_safe(6, 3, 1, 3)); // r = 2
        // One big group of 6 exceeds d_serial:
        assert!(!hybrid_safe(6, 1, 1, 3));
        // t_d beyond d_serial is unsafe regardless of grouping:
        assert!(!hybrid_safe(6, 3, 1, 4));
        assert!(!hybrid_safe(6, 0, 0, 1));
    }

    #[test]
    fn fig8c_depends_only_on_p() {
        // §6.1: tolerated crashes depend "only on n − k, not on n or k
        // individually" — our functions take only p, so spot-check the
        // table values for p = 1..6 are monotone in p.
        let mut prev = 0;
        for p in 1..=6 {
            let pairs = tolerated_pairs_serial(p);
            assert!(pairs[0].storage >= prev);
            prev = pairs[0].storage;
            // First row is always (0 clients, p storage).
            assert_eq!(pairs[0], Tolerance { clients: 0, storage: p });
        }
    }

    proptest! {
        #[test]
        fn prop_d_serial_monotone_in_p(p in 1usize..64, t_p in 0usize..8) {
            prop_assert!(d_serial(p + 1, t_p) >= d_serial(p, t_p));
            prop_assert!(d_parallel(p + 1, t_p) >= d_parallel(p, t_p));
        }

        #[test]
        fn prop_d_decreasing_in_tp(p in 1usize..64, t_p in 0usize..8) {
            prop_assert!(d_serial(p, t_p + 1) <= d_serial(p, t_p));
            prop_assert!(d_parallel(p, t_p + 1) <= d_parallel(p, t_p));
        }

        #[test]
        fn prop_parallel_never_beats_serial(p in 1usize..64, t_p in 0usize..8) {
            // 2^t >= t+1, so the parallel scheme never tolerates more.
            prop_assert!(d_parallel(p, t_p) <= d_serial(p, t_p));
        }

        #[test]
        fn prop_tolerance_display(c in 0usize..10, s in 0usize..10) {
            let t = Tolerance { clients: c, storage: s };
            prop_assert_eq!(t.to_string(), format!("{c}c{s}s"));
        }
    }
}
