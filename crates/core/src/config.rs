//! Client-side protocol configuration.

use crate::backoff::BackoffPolicy;
use crate::resilience;
use ajx_erasure::{CodeError, CodeFamily, PlanCache, StripeLayout};
use std::sync::Arc;

/// How a `WRITE` updates the redundant blocks (Fig. 1's AJX-ser / AJX-par /
/// AJX-bcast and §4's hybrid scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// One `add` at a time, in node order (Theorem 1; highest resilience,
    /// `ρ = 1 + δ` latency).
    Serial,
    /// All `add`s in a single parallel batch (Theorem 2; `ρ = 2` latency,
    /// lowest resilience).
    Parallel,
    /// `groups` serial rounds of parallel `add`s (Theorem 3): the
    /// compromise scheme.
    Hybrid {
        /// Number of serial groups `s` (each of size `⌈p/s⌉`).
        groups: usize,
    },
    /// One multicast carrying `v − w`; nodes scale by their own `α_ji`
    /// (§3.11). Same resilience analysis as parallel.
    Broadcast,
}

impl UpdateStrategy {
    /// Partitions the redundant in-stripe indices `k..n` into the serial
    /// rounds this strategy performs.
    pub fn rounds(&self, k: usize, n: usize) -> Vec<Vec<usize>> {
        let all: Vec<usize> = (k..n).collect();
        match *self {
            UpdateStrategy::Serial => all.into_iter().map(|j| vec![j]).collect(),
            UpdateStrategy::Parallel | UpdateStrategy::Broadcast => {
                if all.is_empty() {
                    vec![]
                } else {
                    vec![all]
                }
            }
            UpdateStrategy::Hybrid { groups } => {
                let s = groups.max(1);
                let r = all.len().div_ceil(s);
                all.chunks(r.max(1)).map(<[usize]>::to_vec).collect()
            }
        }
    }

    /// The maximum number of storage-node failures tolerated by this
    /// strategy at client-failure threshold `t_p` (Theorems 1-3).
    pub fn max_storage_failures(&self, p: usize, t_p: usize) -> i64 {
        match *self {
            UpdateStrategy::Serial => resilience::d_serial(p, t_p),
            UpdateStrategy::Parallel | UpdateStrategy::Broadcast => {
                resilience::d_parallel(p, t_p)
            }
            UpdateStrategy::Hybrid { groups } => {
                let d = resilience::d_serial(p, t_p);
                let r = p.div_ceil(groups.max(1)) as i64;
                if r <= d {
                    d
                } else {
                    // Oversized groups behave like parallel batches.
                    resilience::d_parallel(p, t_p).min(d)
                }
            }
        }
    }
}

/// Configuration shared by all clients of one storage service.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The erasure code (defines `k` and `n`). Either plain Reed-Solomon
    /// or the pyramid LRC tier (`CodeFamily::Lrc`); all delta/verify paths
    /// go through the shared systematic view, while rebuild and degraded
    /// reads ask [`CodeFamily::repair_plan`] for the cheapest repair set.
    pub code: CodeFamily,
    /// Stripe-to-node placement (§3.11 rotation).
    pub layout: StripeLayout,
    /// Block size in bytes.
    pub block_size: usize,
    /// Redundant-update strategy.
    pub strategy: UpdateStrategy,
    /// Chosen client-failure threshold `t_p` (§1, limitations).
    pub t_p: usize,
    /// Maximum storage-node failures `t_d` the deployment must tolerate;
    /// drives the recovery `slack` (Fig. 6 line 12). Must satisfy the §4
    /// bound for the chosen strategy.
    pub t_d: usize,
    /// How many times a `WRITE` re-sends an `add` that keeps returning
    /// ORDER before concluding the predecessor's client crashed and
    /// starting recovery ("tired of looping", Fig. 5 line 13).
    pub order_retry_limit: u32,
    /// Retry budget for operations blocked on another client's recovery.
    pub busy_retry_limit: u32,
    /// How many L0 drain rounds recovery waits for outstanding `add`s to
    /// make blocks consistent (Fig. 6 lines 13-18) before settling for a
    /// smaller consistent set. Draining only helps when the writers are
    /// alive; once patience runs out, recovery accepts any set of at least
    /// `k` blocks — this is what lets the §3.10 monitoring sweep repair the
    /// stripe even after more than `t_p` client crashes.
    pub drain_patience: u32,
    /// Pacing for busy retries and indeterminate-RPC re-sends: capped
    /// exponential backoff with jitter. Replaces the old fixed
    /// `busy_retry_pause`, which synchronized competing clients.
    pub backoff: BackoffPolicy,
    /// Whole-`WRITE` attempt budget (outer `repeat` of Fig. 5).
    pub write_attempt_limit: u32,
    /// Automatically remap crashed nodes through the directory service
    /// (§3.5) when an RPC finds them down.
    pub auto_remap: bool,
    /// Maximum stripes a multi-block [`write_blocks`](crate::Client::write_blocks)
    /// call works on concurrently (bounded scoped-thread pool). Independent
    /// stripes share no protocol state, so pipelining them only multiplies
    /// the outstanding-call count — the knob Fig. 9(a) sweeps. `1` disables
    /// the pool and processes stripes in order, which the deterministic
    /// chaos harness relies on.
    pub pipeline_width: usize,
    /// Maximum stripe-chunks a [`rebuild_stripes`](crate::Client::rebuild_stripes)
    /// call works on concurrently (bounded scoped-thread pool, like
    /// `pipeline_width` for writes). `1` disables the pool and rebuilds
    /// chunks in order, which the deterministic chaos harness relies on.
    pub rebuild_width: usize,
    /// Serve a `READ` whose data node is unavailable by decoding the block
    /// client-side from the other `n − 1` nodes' `get_state` replies — no
    /// locks taken, no recovery triggered — whenever the tid bookkeeping
    /// is unambiguous (DESIGN.md §8). When off, every such read goes
    /// through Fig. 6 recovery (the original behaviour, kept for
    /// benchmarks and differential tests).
    pub degraded_reads: bool,
    /// Shared memo of decode plans keyed by surviving-index set, so the
    /// k×k inversion runs once per erasure pattern rather than once per
    /// stripe. Clones of this config share the cache.
    pub plan_cache: Arc<PlanCache>,
    /// Garbage fill byte for remapped nodes (visible in tests).
    pub remap_garbage: u8,
}

impl ProtocolConfig {
    /// Builds a configuration for a `k`-of-`n` code.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] for an invalid `(k, n)`. The paper's §4
    /// correctness preconditions (`k ≥ 2`, `n − k ≤ k`) are asserted by
    /// [`ProtocolConfig::validate`], not here, so experiments can also probe
    /// configurations outside them.
    pub fn new(k: usize, n: usize, block_size: usize) -> Result<Self, CodeError> {
        Self::with_code(CodeFamily::rs(k, n)?, block_size)
    }

    /// Builds a configuration for a pyramid LRC code: `k` data blocks in
    /// `g` local groups (one local parity each) plus `h` global parities,
    /// so `n = k + g + h`. Defaults `t_d` to the code's erasure tolerance
    /// `h + 1` (any `h + 1` lost blocks stay decodable; some larger
    /// patterns do too, but are not guaranteed).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] for an invalid `(k, g, h)`.
    pub fn new_lrc(k: usize, g: usize, h: usize, block_size: usize) -> Result<Self, CodeError> {
        Self::with_code(CodeFamily::lrc(k, g, h)?, block_size)
    }

    fn with_code(code: CodeFamily, block_size: usize) -> Result<Self, CodeError> {
        let (k, n) = (code.k(), code.n());
        let t_d = code.tolerated_failures();
        let layout = StripeLayout::new(k, n).expect("validated by the code constructor");
        Ok(ProtocolConfig {
            code,
            layout,
            block_size,
            strategy: UpdateStrategy::Parallel,
            t_p: 0,
            t_d,
            order_retry_limit: 64,
            busy_retry_limit: 512,
            drain_patience: 3,
            backoff: BackoffPolicy::default(),
            write_attempt_limit: 64,
            auto_remap: true,
            remap_garbage: 0xA5,
            pipeline_width: 8,
            rebuild_width: 8,
            degraded_reads: true,
            plan_cache: Arc::new(PlanCache::new()),
        })
    }

    /// Sets the update strategy.
    pub fn with_strategy(mut self, strategy: UpdateStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the failure thresholds `(t_p, t_d)`.
    pub fn with_failure_thresholds(mut self, t_p: usize, t_d: usize) -> Self {
        self.t_p = t_p;
        self.t_d = t_d;
        self
    }

    /// Number of data blocks `k`.
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// Total blocks `n`.
    pub fn n(&self) -> usize {
        self.code.n()
    }

    /// Redundant blocks `p = n − k`.
    pub fn p(&self) -> usize {
        self.code.p()
    }

    /// Checks the §4 correctness preconditions: `k ≥ 2`, `n − k ≤ k`, and
    /// `t_d` within the chosen strategy's bound for `t_p`.
    pub fn validate(&self) -> Result<(), String> {
        if self.k() < 2 {
            return Err(format!("§4 requires k >= 2, got k = {}", self.k()));
        }
        if self.p() > self.k() {
            return Err(format!(
                "§4 requires n − k <= k, got p = {} > k = {}",
                self.p(),
                self.k()
            ));
        }
        let bound = self.strategy.max_storage_failures(self.p(), self.t_p);
        if (self.t_d as i64) > bound {
            return Err(format!(
                "t_d = {} exceeds the strategy bound {} for t_p = {} (Theorems 1-3)",
                self.t_d, bound, self.t_p
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_partition_redundant_indices() {
        let all: Vec<usize> = (3..7).collect();
        let flat = |v: Vec<Vec<usize>>| v.into_iter().flatten().collect::<Vec<_>>();

        let s = UpdateStrategy::Serial.rounds(3, 7);
        assert_eq!(s.len(), 4);
        assert_eq!(flat(s), all);

        let p = UpdateStrategy::Parallel.rounds(3, 7);
        assert_eq!(p.len(), 1);
        assert_eq!(flat(p), all);

        let h = UpdateStrategy::Hybrid { groups: 2 }.rounds(3, 7);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].len(), 2);
        assert_eq!(flat(h), all);

        // Degenerate: no redundant nodes.
        assert!(UpdateStrategy::Parallel.rounds(3, 3).is_empty());
    }

    #[test]
    fn hybrid_with_more_groups_than_nodes_degenerates_to_serial() {
        let h = UpdateStrategy::Hybrid { groups: 10 }.rounds(2, 5);
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn config_validation_enforces_section4() {
        // k = 1 violates k >= 2.
        let c = ProtocolConfig::new(1, 3, 64).unwrap();
        assert!(c.validate().unwrap_err().contains("k >= 2"));

        // p > k violates n − k <= k.
        let c = ProtocolConfig::new(2, 5, 64).unwrap();
        assert!(c.validate().unwrap_err().contains("n − k <= k"));

        // Fine: 3-of-5.
        let c = ProtocolConfig::new(3, 5, 64).unwrap();
        assert!(c.validate().is_ok());

        // t_d beyond Theorem 2's bound with parallel adds.
        let c = ProtocolConfig::new(4, 6, 64)
            .unwrap()
            .with_failure_thresholds(1, 2);
        assert!(c.validate().is_err(), "parallel: d(2, t_p=1) = 1 < 2");
        let c = c.with_strategy(UpdateStrategy::Serial);
        assert!(c.validate().is_err(), "serial: d_serial(2,1) = 1 < 2");
        let c = ProtocolConfig::new(4, 6, 64)
            .unwrap()
            .with_strategy(UpdateStrategy::Serial)
            .with_failure_thresholds(1, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn strategy_bounds_match_theorems() {
        // p = 8, t_p = 2: serial tolerates 2, parallel only 1 (§4).
        assert_eq!(UpdateStrategy::Serial.max_storage_failures(8, 2), 2);
        assert_eq!(UpdateStrategy::Parallel.max_storage_failures(8, 2), 1);
        assert_eq!(UpdateStrategy::Broadcast.max_storage_failures(8, 2), 1);
        // A hybrid with group size <= d_serial keeps the serial bound...
        assert_eq!(
            UpdateStrategy::Hybrid { groups: 4 }.max_storage_failures(8, 2),
            2
        );
        // ...but one oversized group falls back to the parallel bound.
        assert_eq!(
            UpdateStrategy::Hybrid { groups: 1 }.max_storage_failures(8, 2),
            1
        );
    }

    #[test]
    fn accessors_expose_code_shape() {
        let c = ProtocolConfig::new(3, 5, 128).unwrap();
        assert_eq!((c.k(), c.n(), c.p()), (3, 5, 2));
        assert_eq!(c.block_size, 128);
    }
}
