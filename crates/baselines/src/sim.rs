//! Closed-loop throughput simulation of the baseline protocols on the
//! `ajx-sim` discrete-event engine — an *extension* of the paper's Fig. 1:
//! the table compares per-operation costs; this module runs those message
//! patterns under load so the throughput consequences ("FAB and GWGR ...
//! perform poorly for random I/O, especially with highly-efficient erasure
//! codes") become measurable curves.
//!
//! Protocol write patterns (single user-visible block write):
//!
//! * **AJX-par** — `swap` at the data node (block out, old block back),
//!   then parallel `add`s at the `p` redundant nodes (block out, ack back).
//! * **FAB** — two rounds to *all n* nodes, each carrying the write's
//!   data; one round-1 reply returns the old version.
//! * **GWGR** — whole-stripe granularity: a single-block write first reads
//!   all `n` fragments, then writes all `n` back in a two-round commit.
//!
//! Reads: AJX contacts the data node; FAB queries `k` nodes (one returns
//! the block); GWGR fetches all `n` fragments.

use crate::Protocol;
use ajx_sim::{Chain, Engine, ResourceId, SimParams, Step};
use rand::{Rng, SeedableRng};

/// Configuration for one baseline-comparison simulation run.
#[derive(Debug, Clone)]
pub struct BaselineSimConfig {
    /// The protocol to simulate.
    pub proto: Protocol,
    /// Data blocks per stripe.
    pub k: usize,
    /// Total blocks per stripe.
    pub n: usize,
    /// Number of client nodes.
    pub n_clients: usize,
    /// Outstanding requests per client.
    pub threads_per_client: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Fraction of reads (percent); the rest are single-block writes.
    pub read_pct: u8,
    /// Timing constants (shared with the AJX simulator for fairness).
    pub params: SimParams,
    /// Deterministic seed.
    pub seed: u64,
}

impl BaselineSimConfig {
    /// A write-only configuration at moderate load.
    pub fn write_only(proto: Protocol, k: usize, n: usize, n_clients: usize) -> Self {
        BaselineSimConfig {
            proto,
            k,
            n,
            n_clients,
            threads_per_client: 16,
            ops_per_thread: 30,
            read_pct: 0,
            params: SimParams::default(),
            seed: 0xFAB,
        }
    }
}

/// Result of a baseline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineSimReport {
    /// User-visible operations completed.
    pub ops: u64,
    /// Virtual elapsed time (µs).
    pub elapsed_us: f64,
    /// Goodput: user-payload MB/s (one block per op, regardless of how
    /// many blocks the protocol moves internally).
    pub goodput_mbps: f64,
    /// Mean user-op latency (µs).
    pub mean_latency_us: f64,
}

struct Ctx {
    rng: rand::rngs::StdRng,
    client: usize,
    ops_done: u64,
    op_start: f64,
    /// Remaining phases (each a group of chains) of the in-flight op.
    phases: Vec<Vec<Chain>>,
    lat_sum: f64,
}

struct Res {
    client_cpu: Vec<ResourceId>,
    client_nic: Vec<ResourceId>,
    node_cpu: Vec<ResourceId>,
    node_nic: Vec<ResourceId>,
}

/// Runs the simulation; deterministic for a given config.
///
/// # Panics
///
/// Panics on degenerate configurations.
pub fn run_baseline(cfg: &BaselineSimConfig) -> BaselineSimReport {
    assert!(cfg.k >= 1 && cfg.n > cfg.k && cfg.n_clients >= 1);
    let mut engine = Engine::new();
    let res = Res {
        client_cpu: (0..cfg.n_clients).map(|_| engine.add_resource()).collect(),
        client_nic: (0..cfg.n_clients).map(|_| engine.add_resource()).collect(),
        node_cpu: (0..cfg.n).map(|_| engine.add_resource()).collect(),
        node_nic: (0..cfg.n).map(|_| engine.add_resource()).collect(),
    };
    let total = cfg.n_clients * cfg.threads_per_client;
    let mut threads: Vec<Ctx> = (0..total)
        .map(|t| Ctx {
            rng: rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 17),
            client: t / cfg.threads_per_client,
            ops_done: 0,
            op_start: 0.0,
            phases: Vec::new(),
            lat_sum: 0.0,
        })
        .collect();

    for (t, ctx) in threads.iter_mut().enumerate() {
        start_op(&mut engine, cfg, &res, ctx, t as u64, 0.0);
    }
    let mut total_ops = 0u64;
    engine.run(|engine, now, token| {
        let ctx = &mut threads[token as usize];
        if let Some(next) = ctx.phases.pop() {
            engine.spawn_group(next, token);
            return;
        }
        ctx.lat_sum += now - ctx.op_start;
        ctx.ops_done += 1;
        total_ops += 1;
        if ctx.ops_done < cfg.ops_per_thread {
            start_op(engine, cfg, &res, ctx, token, now);
        }
    });

    let elapsed_us = engine.now();
    BaselineSimReport {
        ops: total_ops,
        elapsed_us,
        goodput_mbps: if elapsed_us > 0.0 {
            total_ops as f64 * cfg.params.block_size as f64 / elapsed_us
        } else {
            0.0
        },
        mean_latency_us: if total_ops > 0 {
            threads.iter().map(|t| t.lat_sum).sum::<f64>() / total_ops as f64
        } else {
            0.0
        },
    }
}

fn start_op(engine: &mut Engine, cfg: &BaselineSimConfig, res: &Res, ctx: &mut Ctx, token: u64, now: f64) {
    ctx.op_start = now;
    let stripe: u64 = ctx.rng.random_range(0..1024);
    let index = ctx.rng.random_range(0..cfg.k);
    let is_read = ctx.rng.random_range(0..100u8) < cfg.read_pct;
    // Phases are stored in reverse (popped from the back).
    let mut phases = if is_read {
        read_phases(cfg, res, ctx.client, stripe, index)
    } else {
        write_phases(cfg, res, ctx.client, stripe, index)
    };
    phases.reverse();
    let first = phases.pop().expect("ops have at least one phase");
    ctx.phases = phases;
    engine.spawn_group(first, token);
}

fn node_of(cfg: &BaselineSimConfig, stripe: u64, t: usize) -> usize {
    ((t as u64 + stripe) % cfg.n as u64) as usize
}

/// One request/reply chain through the shared resource model.
#[allow(clippy::too_many_arguments)]
fn rpc(
    p: &SimParams,
    res: &Res,
    client: usize,
    node: usize,
    req_bytes: f64,
    service_us: f64,
    rep_bytes: f64,
) -> Chain {
    vec![
        Step::Use {
            resource: res.client_cpu[client],
            us: p.rpc_client_cpu_us,
        },
        Step::Use {
            resource: res.client_nic[client],
            us: req_bytes / p.client_nic_bpus,
        },
        Step::Delay {
            us: p.one_way_latency_us,
        },
        Step::Use {
            resource: res.node_nic[node],
            us: req_bytes / p.node_nic_bpus,
        },
        Step::Use {
            resource: res.node_cpu[node],
            us: p.rpc_node_cpu_us + service_us,
        },
        Step::Use {
            resource: res.node_nic[node],
            us: rep_bytes / p.node_nic_bpus,
        },
        Step::Delay {
            us: p.one_way_latency_us,
        },
        Step::Use {
            resource: res.client_nic[client],
            us: rep_bytes / p.client_nic_bpus,
        },
    ]
}

fn write_phases(
    cfg: &BaselineSimConfig,
    res: &Res,
    client: usize,
    stripe: u64,
    index: usize,
) -> Vec<Vec<Chain>> {
    let p = &cfg.params;
    let blk = p.block_msg_bytes();
    let hdr = p.hdr_bytes();
    match cfg.proto {
        Protocol::AjxPar | Protocol::AjxSer | Protocol::AjxBcast => {
            // Modeled here in the parallel form (the ajx-sim crate covers
            // the per-strategy differences in full).
            let data_node = node_of(cfg, stripe, index);
            let swap = vec![rpc(p, res, client, data_node, blk, p.swap_service_us, blk)];
            let adds: Vec<Chain> = (cfg.k..cfg.n)
                .map(|j| {
                    let node = node_of(cfg, stripe, j);
                    let mut c = rpc(p, res, client, node, blk, p.add_cost_us, hdr);
                    // Delta computation before each add.
                    c.insert(
                        0,
                        Step::Use {
                            resource: res.client_cpu[client],
                            us: p.delta_cost_us,
                        },
                    );
                    c
                })
                .collect();
            vec![swap, adds]
        }
        Protocol::Fab => {
            // Two rounds to every node in the stripe, all carrying data.
            let round1: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    let rep = if t == 0 { blk } else { hdr };
                    rpc(p, res, client, node, blk, p.swap_service_us, rep)
                })
                .collect();
            let round2: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    rpc(p, res, client, node, blk, p.swap_service_us, hdr)
                })
                .collect();
            vec![round1, round2]
        }
        Protocol::Gwgr => {
            // Whole-stripe granularity: read all fragments, re-encode,
            // write all back, commit.
            let read_all: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    rpc(p, res, client, node, hdr, p.read_service_us, blk)
                })
                .collect();
            let mut write_all: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    rpc(p, res, client, node, blk, p.swap_service_us, hdr)
                })
                .collect();
            // Re-encode the stripe before writing (k Delta-sized units).
            write_all[0].insert(
                0,
                Step::Use {
                    resource: res.client_cpu[client],
                    us: p.delta_cost_us * cfg.k as f64,
                },
            );
            let commit: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    rpc(p, res, client, node, hdr, p.read_service_us, hdr)
                })
                .collect();
            vec![read_all, write_all, commit]
        }
    }
}

fn read_phases(
    cfg: &BaselineSimConfig,
    res: &Res,
    client: usize,
    stripe: u64,
    index: usize,
) -> Vec<Vec<Chain>> {
    let p = &cfg.params;
    let blk = p.block_msg_bytes();
    let hdr = p.hdr_bytes();
    match cfg.proto {
        Protocol::AjxPar | Protocol::AjxSer | Protocol::AjxBcast => {
            let node = node_of(cfg, stripe, index);
            vec![vec![rpc(p, res, client, node, hdr, p.read_service_us, blk)]]
        }
        Protocol::Fab => {
            // Query k nodes; one returns the block.
            let round: Vec<Chain> = (0..cfg.k)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    let rep = if t == index { blk } else { hdr };
                    rpc(p, res, client, node, hdr, p.read_service_us, rep)
                })
                .collect();
            vec![round]
        }
        Protocol::Gwgr => {
            let round: Vec<Chain> = (0..cfg.n)
                .map(|t| {
                    let node = node_of(cfg, stripe, t);
                    rpc(p, res, client, node, hdr, p.read_service_us, blk)
                })
                .collect();
            vec![round]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(proto: Protocol, k: usize, n: usize) -> BaselineSimReport {
        let mut cfg = BaselineSimConfig::write_only(proto, k, n, 4);
        cfg.ops_per_thread = 20;
        cfg.threads_per_client = 8;
        run_baseline(&cfg)
    }

    #[test]
    fn all_protocols_complete_their_ops() {
        for proto in Protocol::ALL {
            let r = quick(proto, 4, 6);
            assert_eq!(r.ops, 4 * 8 * 20, "{proto:?}");
            assert!(r.goodput_mbps > 0.0);
            assert!(r.mean_latency_us > 0.0);
        }
    }

    #[test]
    fn determinism() {
        let a = quick(Protocol::Fab, 3, 5);
        let b = quick(Protocol::Fab, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn ajx_beats_fab_and_gwgr_on_random_writes() {
        // The paper's core comparison: random single-block writes on a
        // highly-efficient code (large k, small p).
        let ajx = quick(Protocol::AjxPar, 8, 10);
        let fab = quick(Protocol::Fab, 8, 10);
        let gwgr = quick(Protocol::Gwgr, 8, 10);
        assert!(
            ajx.goodput_mbps > 2.0 * fab.goodput_mbps,
            "AJX {} vs FAB {}",
            ajx.goodput_mbps,
            fab.goodput_mbps
        );
        assert!(
            ajx.goodput_mbps > 2.0 * gwgr.goodput_mbps,
            "AJX {} vs GWGR {}",
            ajx.goodput_mbps,
            gwgr.goodput_mbps
        );
    }

    #[test]
    fn fab_degrades_with_k_but_ajx_does_not() {
        // At fixed p = 2, growing k leaves AJX's write cost constant while
        // FAB's grows with n = k + 2.
        let ajx_small = quick(Protocol::AjxPar, 2, 4);
        let ajx_large = quick(Protocol::AjxPar, 16, 18);
        let fab_small = quick(Protocol::Fab, 2, 4);
        let fab_large = quick(Protocol::Fab, 16, 18);
        let ajx_ratio = ajx_large.goodput_mbps / ajx_small.goodput_mbps;
        let fab_ratio = fab_large.goodput_mbps / fab_small.goodput_mbps;
        assert!(ajx_ratio > 0.8, "AJX roughly flat in k: {ajx_ratio}");
        assert!(fab_ratio < 0.6, "FAB collapses with k: {fab_ratio}");
    }
}
