//! Per-stripe sharded node state behind fine-grained locks.
//!
//! The reactor transport serves one node's requests from several worker
//! threads at once. Under the original single-lock [`StorageNode`] those
//! workers serialize on the node mutex even when they touch *independent*
//! stripes — which is exactly the common case for many-client traffic,
//! since the stripe layout spreads clients across stripes. [`ShardedNode`]
//! partitions the per-stripe [`BlockState`] map into `n_shards` shards by
//! `stripe % n_shards`, each behind its own lock, so requests for
//! different shards proceed in parallel.
//!
//! Three rules keep the sharded node *observably identical* to the
//! single-lock node (asserted by the `sharded_equivalence` proptest):
//!
//! 1. **Shard-ordered batch locking.** A [`Request::Batch`] may span
//!    shards; its member set of shards is locked in ascending global shard
//!    index before any member executes, and held until the whole batch has
//!    answered. Every multi-shard acquirer uses the same total order, so
//!    no cycle — hence no deadlock — is possible, and the batch executes
//!    atomically with respect to every other request (the PR 3 single-lock
//!    batch semantics).
//! 2. **Node-level flush accounting.** The §3.11 deferred-flush `dirty`
//!    marker stays *node*-level: a per-shard marker would coalesce
//!    alternating-stripe write patterns that the real (single-medium) node
//!    must flush, changing `media_writes`. All media accounting therefore
//!    lives in the wrapper, not in the shard state machines.
//! 3. **No cross-shard state.** Everything else a request touches is keyed
//!    by its stripe, so the shard partition is semantically invisible.

use crate::node::{FlushPolicy, Reply, Request, StorageNode};
use crate::persist::{InMemoryPersistence, Persistence, WalRecord, WalRecordRef};
use crate::state::BlockState;
use crate::types::{ClientId, NodeId, StripeId};
use ajx_erasure::CodeFamily;
use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a request must be journaled for crash recovery. Read-only
/// requests advance nothing durable (only the monitoring clock); a batch
/// is journaled whole if any member mutates, because it executes — and
/// must recover — atomically.
fn is_journaled(req: &Request) -> bool {
    // Exhaustive on purpose (no `_` arm): a new Request variant must be
    // classified here or the build breaks — the ajx-lint codec-exhaustive
    // rule additionally requires every variant name to appear here, so a
    // mutating variant can never silently skip the journal.
    match req {
        Request::Read { .. }
        | Request::GetState { .. }
        | Request::GetMeta { .. }
        | Request::Probe { .. }
        | Request::CheckTid { .. } => false,
        Request::Batch(members) => members.iter().any(is_journaled),
        Request::Swap { .. }
        | Request::Add { .. }
        | Request::TryLock { .. }
        | Request::SetLock { .. }
        | Request::GetRecent { .. }
        | Request::Reconstruct { .. }
        | Request::Finalize { .. }
        | Request::GcOld { .. }
        | Request::GcRecent { .. } => true,
    }
}

/// RAII guard for one shard's lock, acquired only through
/// [`ShardedNode::lock_shard`] / [`ShardedNode::lock_all_shards`].
///
/// In debug builds the guard carries its (node, shard-index) identity and
/// reports its release to the lock-order watchdog, so any acquisition
/// that breaks the ascending-index discipline (DESIGN.md §9) asserts at
/// the acquisition site instead of deadlocking some later run.
#[derive(Debug)]
pub(crate) struct ShardGuard<'a> {
    guard: MutexGuard<'a, StorageNode>,
    #[cfg(debug_assertions)]
    node_token: usize,
    #[cfg(debug_assertions)]
    idx: usize,
}

impl<'a> ShardGuard<'a> {
    fn new(guard: MutexGuard<'a, StorageNode>, node_token: usize, idx: usize) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (node_token, idx);
        ShardGuard {
            guard,
            #[cfg(debug_assertions)]
            node_token,
            #[cfg(debug_assertions)]
            idx,
        }
    }
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = StorageNode;
    fn deref(&self) -> &StorageNode {
        &self.guard
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut StorageNode {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        // Runs before the inner `MutexGuard` field drops, so the watchdog
        // forgets the lock no later than the mutex actually releases.
        watchdog::on_release(self.node_token, self.idx);
    }
}

/// Debug-build lock-order watchdog: tracks, per thread, which shard
/// indices of which node are currently held, and asserts that every new
/// acquisition has a strictly higher index than anything already held on
/// the same node. Threads never hold shards of two nodes at once in this
/// codebase, but the per-node keying keeps the watchdog honest if that
/// ever changes.
#[cfg(debug_assertions)]
mod watchdog {
    use std::cell::RefCell;

    thread_local! {
        /// `(node-token, shard-idx)` pairs this thread currently holds.
        static HELD: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn on_acquire(node_token: usize, idx: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let top = held
                .iter()
                .filter(|&&(t, _)| t == node_token)
                .map(|&(_, i)| i)
                .max();
            if let Some(top) = top {
                assert!(
                    idx > top,
                    "shard-lock order violation: acquiring shard {idx} while shard {top} \
                     is held on the same node — acquire in strictly ascending index order \
                     via lock_shard/lock_all_shards (DESIGN.md §9, §11)"
                );
            }
            held.push((node_token, idx));
        });
    }

    pub(super) fn on_release(node_token: usize, idx: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(t, i)| t == node_token && i == idx) {
                held.remove(pos);
            }
        });
    }
}

/// A storage node whose per-stripe state is partitioned into independently
/// locked shards, so concurrent requests for different stripes never
/// contend.
///
/// Each shard is a full [`StorageNode`] state machine holding only the
/// stripes that hash to it; [`ShardedNode::handle`] routes requests (and
/// locks shard sets for batches) and keeps the node-level accounting that
/// must not fragment across shards (media writes, deferred-flush dirty
/// tracking).
///
/// All methods take `&self`: the sharded node is shared directly between
/// transport worker threads with no outer lock.
#[derive(Debug)]
pub struct ShardedNode {
    id: NodeId,
    block_size: usize,
    flush_policy: FlushPolicy,
    shards: Vec<Mutex<StorageNode>>,
    /// §3.11 deferred-flush marker — node-level by rule 2 above.
    dirty: Mutex<Option<StripeId>>,
    media_writes: AtomicU64,
    /// Shard-lock acquisitions made on behalf of requests.
    shard_locks: AtomicU64,
    /// Acquisitions that found the shard lock already held and had to
    /// block. Disjoint-stripe workloads keep this at zero — the measurable
    /// form of "independent batches don't serialize".
    contended_locks: AtomicU64,
    /// Durability backend (DESIGN.md §10). Appends happen under the shard
    /// locks covering the record, so the journal order is a valid
    /// linearization; commits happen after locks drop — one fsync per
    /// round trip (group commit).
    persist: Arc<dyn Persistence>,
}

impl ShardedNode {
    /// Creates a node with `n_shards` stripe shards (`n_shards >= 1`);
    /// blocks start zeroed in normal mode.
    pub fn new(id: NodeId, block_size: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        ShardedNode {
            id,
            block_size,
            flush_policy: FlushPolicy::WriteThrough,
            shards: (0..n_shards)
                .map(|_| Mutex::new(StorageNode::new(id, block_size)))
                .collect(),
            dirty: Mutex::new(None),
            media_writes: AtomicU64::new(0),
            shard_locks: AtomicU64::new(0),
            contended_locks: AtomicU64::new(0),
            persist: Arc::new(InMemoryPersistence),
        }
    }

    /// Attaches a durability backend (default: in-memory, nothing
    /// survives a restart). Journaling begins with the next request.
    pub fn with_persistence(mut self, persist: Arc<dyn Persistence>) -> Self {
        self.persist = persist;
        self
    }

    /// The node's durability backend — for arming power failures and
    /// reading durability stats in tests and benches.
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        &self.persist
    }

    /// Equips every shard with the erasure code for broadcast-mode scaled
    /// adds (§3.11).
    pub fn with_code(mut self, code: CodeFamily) -> Self {
        let id = self.id;
        for shard in &mut self.shards {
            // Builder holds the node exclusively: no locking needed.
            let slot = shard.get_mut();
            let sn = std::mem::replace(slot, StorageNode::new(id, 0));
            *slot = sn.with_code(code.clone());
        }
        self
    }

    /// Selects the media flush policy (§3.11 ablation). The shards
    /// themselves always run write-through; deferral is accounted at node
    /// level (see the module docs).
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of stripe shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, stripe: StripeId) -> usize {
        (stripe.0 % self.shards.len() as u64) as usize
    }

    /// Acquires one shard lock, counting whether the acquisition contended.
    ///
    /// Together with [`ShardedNode::lock_all_shards`], this is the only
    /// place shard mutexes are touched directly (enforced by the ajx-lint
    /// `lock-order` rule): routing every acquisition through here keeps
    /// the ascending-index discipline auditable and, in debug builds,
    /// feeds the lock-order watchdog.
    fn lock_shard(&self, idx: usize) -> ShardGuard<'_> {
        // Checked *before* blocking on the mutex, so a would-be deadlock
        // asserts with both shard indices instead of hanging.
        #[cfg(debug_assertions)]
        watchdog::on_acquire(self as *const Self as usize, idx);
        self.shard_locks.fetch_add(1, Ordering::Relaxed);
        // LINT-ALLOW(panic-free: idx is a shard_of() result or an
        // enumeration below n_shards, both strictly below shards.len())
        let shard = &self.shards[idx];
        let guard = match shard.try_lock() {
            Some(g) => g,
            None => {
                self.contended_locks.fetch_add(1, Ordering::Relaxed);
                shard.lock()
            }
        };
        ShardGuard::new(guard, self as *const Self as usize, idx)
    }

    /// Locks every shard in ascending index order — the only sanctioned
    /// whole-node acquisition pattern (recovery, remap, monitoring).
    /// These acquisitions are deliberately *not* counted in the request
    /// contention instrumentation.
    fn lock_all_shards(&self) -> Vec<ShardGuard<'_>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(idx, shard)| {
                #[cfg(debug_assertions)]
                watchdog::on_acquire(self as *const Self as usize, idx);
                ShardGuard::new(shard.lock(), self as *const Self as usize, idx)
            })
            .collect()
    }

    /// Shard-lock acquisitions performed for request handling.
    pub fn shard_lock_acquisitions(&self) -> u64 {
        self.shard_locks.load(Ordering::Relaxed)
    }

    /// How many of those acquisitions had to wait for another holder.
    pub fn contended_shard_locks(&self) -> u64 {
        self.contended_locks.load(Ordering::Relaxed)
    }

    /// The shard indices a request touches (recursing into batches).
    fn collect_shards(&self, req: &Request, out: &mut std::collections::BTreeSet<usize>) {
        match req {
            Request::Batch(members) => {
                for m in members {
                    self.collect_shards(m, out);
                }
            }
            other => {
                out.insert(self.shard_of(other.stripe()));
            }
        }
    }

    /// Applies a request against already-held shard guards (batch path).
    fn apply_locked(&self, req: Request, guards: &mut BTreeMap<usize, ShardGuard<'_>>) -> Reply {
        match req {
            Request::Batch(members) => Reply::Batch(
                members
                    .into_iter()
                    .map(|m| self.apply_locked(m, guards))
                    .collect(),
            ),
            other => {
                let stripe = other.stripe();
                let mutates = matches!(
                    other,
                    Request::Swap { .. } | Request::Add { .. } | Request::Reconstruct { .. }
                );
                // LINT-ALLOW(panic-free: handle() collected and locked the
                // shard set of the whole batch before the first
                // apply_locked call, and recursion only visits members of
                // that same batch, so the entry is always present)
                let shard = guards
                    .get_mut(&self.shard_of(stripe))
                    .expect("batch shard set was locked up front");
                let reply = shard.handle(other);
                if mutates && !matches!(reply, Reply::NoCode) {
                    self.account_media_write(stripe);
                }
                reply
            }
        }
    }

    /// Handles a request, advancing the target stripe-block state machine.
    ///
    /// A non-batch request locks exactly its stripe's shard. A
    /// [`Request::Batch`] locks the set of shards its members touch in
    /// ascending shard order (deadlock-free) and holds them all until every
    /// member has answered, so the batch is atomic with respect to all
    /// other requests — the same observable semantics as the single-lock
    /// [`StorageNode::handle`].
    pub fn handle(&self, req: Request) -> Reply {
        let reply = match req {
            req @ Request::Batch(_) => {
                let mut shard_set = std::collections::BTreeSet::new();
                self.collect_shards(&req, &mut shard_set);
                // Ascending acquisition: BTreeSet iterates in order.
                let mut guards: BTreeMap<usize, ShardGuard<'_>> = shard_set
                    .into_iter()
                    .map(|idx| (idx, self.lock_shard(idx)))
                    .collect();
                // One journal record for the whole batch — it executes
                // atomically under the shard set, so it recovers atomically.
                if is_journaled(&req) {
                    self.persist.append(WalRecordRef::Apply(&req));
                }
                // LINT-ALLOW(panic-free: the arm pattern `req @
                // Request::Batch(_)` proves this destructure succeeds)
                let Request::Batch(members) = req else { unreachable!() };
                Reply::Batch(
                    members
                        .into_iter()
                        .map(|m| self.apply_locked(m, &mut guards))
                        .collect(),
                )
            }
            other => {
                let stripe = other.stripe();
                let mutates = matches!(
                    other,
                    Request::Swap { .. } | Request::Add { .. } | Request::Reconstruct { .. }
                );
                let mut shard = self.lock_shard(self.shard_of(stripe));
                if is_journaled(&other) {
                    self.persist.append(WalRecordRef::Apply(&other));
                }
                let reply = shard.handle(other);
                drop(shard);
                if mutates && !matches!(reply, Reply::NoCode) {
                    self.account_media_write(stripe);
                }
                reply
            }
        };
        // Group commit: one fsync covers every record journaled since the
        // last commit, by any worker. Under the deferred policy the WAL
        // commits only at flush points, mirroring §3.11 media deferral.
        if self.flush_policy == FlushPolicy::WriteThrough {
            self.persist.commit();
        }
        reply
    }

    /// Node-level §3.11 media accounting — mirrors
    /// `StorageNode::account_media_write` exactly, but lifted out of the
    /// shards so deferred-flush coalescing sees the node's single medium.
    fn account_media_write(&self, stripe: StripeId) {
        match self.flush_policy {
            FlushPolicy::WriteThrough => {
                self.media_writes.fetch_add(1, Ordering::Relaxed);
            }
            FlushPolicy::Deferred => {
                let mut dirty = self.dirty.lock();
                match *dirty {
                    Some(d) if d == stripe => {} // coalesced with pending flush
                    Some(_) => {
                        self.media_writes.fetch_add(1, Ordering::Relaxed);
                        *dirty = Some(stripe);
                    }
                    None => *dirty = Some(stripe),
                }
            }
        }
    }

    /// Media writes performed under the current [`FlushPolicy`].
    pub fn media_writes(&self) -> u64 {
        self.media_writes.load(Ordering::Relaxed)
    }

    /// Flushes any deferred dirty block to the medium, and commits any
    /// journal records deferred with it.
    pub fn flush_all(&self) {
        if self.dirty.lock().take().is_some() {
            self.media_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.persist.commit();
    }

    /// Simulates a crash + remap (§3.5) across every shard; see
    /// [`StorageNode::fail_remap`]. The replacement node arrives with a
    /// *fresh* medium: the journal is discarded and restarted with the
    /// remap event, so a later restart-with-disk replays onto garbage.
    pub fn fail_remap(&self, garbage_byte: u8) {
        let mut guards = self.lock_all_shards();
        for g in &mut guards {
            g.fail_remap(garbage_byte);
        }
        *self.dirty.lock() = None;
        self.persist.truncate();
        self.persist.append(WalRecordRef::FailRemap(garbage_byte));
        self.persist.commit();
    }

    /// Expires recovery locks held by a crashed `client` (Fig. 6 line 34).
    /// Returns how many locks expired.
    ///
    /// Locks every shard first (ascending, like every other multi-shard
    /// acquirer) so the expiry is atomic across the node — and so its
    /// single journal record sits at a point that is a valid
    /// linearization of the node's execution order.
    pub fn on_client_failure(&self, client: ClientId) -> usize {
        let mut guards = self.lock_all_shards();
        self.persist.append(WalRecordRef::ClientFailure(client));
        let expired = guards
            .iter_mut()
            .map(|g| g.on_client_failure(client))
            .sum();
        drop(guards);
        self.persist.commit();
        expired
    }

    /// Whether an armed power failure has tripped the durability backend
    /// (the machine is "off"; the transport takes the node down).
    pub fn persist_tripped(&self) -> bool {
        self.persist.tripped()
    }

    /// Restart-with-disk: wipes all in-memory state (a restart loses RAM)
    /// and replays the journal through the fresh state machines. Returns
    /// `false` — leaving memory untouched — if the backend is not durable,
    /// in which case the caller must wipe-and-rebuild instead (§3.5).
    ///
    /// Counters restart from zero, as a real process restart would; the
    /// replay itself re-counts the work it re-applies.
    pub fn restart_from_disk(&self) -> bool {
        let Some(records) = self.persist.replay() else {
            return false;
        };
        let mut guards = self.lock_all_shards();
        for g in &mut guards {
            g.reset();
        }
        *self.dirty.lock() = None;
        self.media_writes.store(0, Ordering::Relaxed);
        self.shard_locks.store(0, Ordering::Relaxed);
        self.contended_locks.store(0, Ordering::Relaxed);
        for rec in records {
            match rec {
                WalRecord::Apply(req) => self.replay_request(&mut guards, req),
                WalRecord::ClientFailure(c) => {
                    for g in &mut guards {
                        g.on_client_failure(c);
                    }
                }
                WalRecord::FailRemap(garbage) => {
                    for g in &mut guards {
                        g.fail_remap(garbage);
                    }
                }
            }
        }
        true
    }

    /// Re-applies one journaled request during replay, routing each leaf
    /// to its shard (batch members in order, like the live batch path).
    fn replay_request(&self, guards: &mut [ShardGuard<'_>], req: Request) {
        match req {
            Request::Batch(members) => {
                for m in members {
                    self.replay_request(guards, m);
                }
            }
            other => {
                let idx = self.shard_of(other.stripe());
                // LINT-ALLOW(panic-free: guards holds one entry per shard
                // and shard_of() is always below shards.len())
                guards[idx].handle(other);
            }
        }
    }

    /// Locks every shard (ascending) and returns an exclusive whole-node
    /// view — the monitoring/test analogue of locking the old single-lock
    /// node. Monitoring acquisitions are not counted in the contention
    /// instrumentation.
    pub fn lock_all(&self) -> NodeView<'_> {
        NodeView {
            node: self,
            guards: self.lock_all_shards(),
        }
    }
}

/// Exclusive access to every shard of a [`ShardedNode`] at once — what
/// tests, fault injection, and monitoring get from the network's
/// `with_node`. Mirrors the inspection surface of [`StorageNode`].
#[derive(Debug)]
pub struct NodeView<'a> {
    node: &'a ShardedNode,
    /// One guard per shard, indexed by shard number.
    guards: Vec<ShardGuard<'a>>,
}

impl NodeView<'_> {
    /// The shard state machine covering `stripe`.
    fn shard(&self, stripe: StripeId) -> &StorageNode {
        // LINT-ALLOW(panic-free: guards holds one entry per shard and
        // shard_of() is always below shards.len())
        &self.guards[self.node.shard_of(stripe)]
    }

    /// Mutable access to the shard state machine covering `stripe`.
    fn shard_mut(&mut self, stripe: StripeId) -> &mut StorageNode {
        let idx = self.node.shard_of(stripe);
        // LINT-ALLOW(panic-free: guards holds one entry per shard and
        // shard_of() is always below shards.len())
        &mut self.guards[idx]
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.node.id
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.node.block_size
    }

    /// Total requests handled, summed across shards.
    pub fn ops_handled(&self) -> u64 {
        self.guards.iter().map(|g| g.ops_handled()).sum()
    }

    /// Lock-protocol requests handled (`trylock` / `setlock` /
    /// `getrecent`), summed across shards.
    pub fn lock_ops(&self) -> u64 {
        self.guards.iter().map(|g| g.lock_ops()).sum()
    }

    /// Media writes performed under the node's flush policy.
    pub fn media_writes(&self) -> u64 {
        self.node.media_writes()
    }

    /// Durability counters from the node's persistence backend (all zero
    /// on the in-memory backend).
    pub fn persist_stats(&self) -> crate::persist::PersistStats {
        self.node.persist.stats()
    }

    /// Flushes any deferred dirty block to the medium.
    pub fn flush_all(&mut self) {
        self.node.flush_all();
    }

    /// Shard-lock acquisitions that contended (see
    /// [`ShardedNode::contended_shard_locks`]).
    pub fn contended_shard_locks(&self) -> u64 {
        self.node.contended_shard_locks()
    }

    /// Direct access to a stripe-block's state (tests and monitoring only).
    pub fn block_state(&self, stripe: StripeId) -> Option<&BlockState> {
        self.shard(stripe).block_state(stripe)
    }

    /// Mutable access for fault-injection in tests.
    pub fn block_state_mut(&mut self, stripe: StripeId) -> Option<&mut BlockState> {
        self.shard_mut(stripe).block_state_mut(stripe)
    }

    /// Stripes this node currently holds state for (unordered).
    pub fn stripes(&self) -> Vec<StripeId> {
        self.guards.iter().flat_map(|g| g.stripes()).collect()
    }

    /// Total protocol metadata bytes across all stripe-blocks (§6.5).
    pub fn metadata_bytes(&self) -> usize {
        self.guards.iter().map(|g| g.metadata_bytes()).sum()
    }

    /// Number of stripe-blocks materialized at this node.
    pub fn resident_blocks(&self) -> usize {
        self.guards.iter().map(|g| g.resident_blocks()).sum()
    }

    /// Handles a request while holding the whole node — the test path that
    /// used to call `StorageNode::handle` under the node mutex. Same
    /// semantics (and same media accounting) as [`ShardedNode::handle`].
    pub fn handle(&mut self, req: Request) -> Reply {
        // Same journal-then-apply-then-commit shape as
        // [`ShardedNode::handle`]; the view already holds every shard.
        if is_journaled(&req) {
            self.node.persist.append(WalRecordRef::Apply(&req));
        }
        let reply = self.apply(req);
        if self.node.flush_policy == FlushPolicy::WriteThrough {
            self.node.persist.commit();
        }
        reply
    }

    fn apply(&mut self, req: Request) -> Reply {
        match req {
            Request::Batch(members) => {
                Reply::Batch(members.into_iter().map(|m| self.apply(m)).collect())
            }
            other => {
                let stripe = other.stripe();
                let mutates = matches!(
                    other,
                    Request::Swap { .. } | Request::Add { .. } | Request::Reconstruct { .. }
                );
                let reply = self.shard_mut(stripe).handle(other);
                if mutates && !matches!(reply, Reply::NoCode) {
                    self.node.account_media_write(stripe);
                }
                reply
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AddStatus;
    use crate::types::{Epoch, LMode, Tid};
    use std::sync::Arc;

    fn tid(seq: u64) -> Tid {
        Tid::new(seq, 0, ClientId(1))
    }

    fn add(stripe: u64, seq: u64) -> Request {
        Request::Add {
            stripe: StripeId(stripe),
            delta: vec![1, 1],
            ntid: tid(seq),
            otid: None,
            epoch: Epoch(0),
            scale: None,
        }
    }

    #[test]
    fn routes_stripes_to_distinct_shards() {
        let node = ShardedNode::new(NodeId(0), 2, 4);
        for s in 0..8u64 {
            node.handle(Request::Swap {
                stripe: StripeId(s),
                value: vec![s as u8; 2],
                ntid: tid(s + 1),
            });
        }
        let view = node.lock_all();
        assert_eq!(view.resident_blocks(), 8);
        assert_eq!(view.ops_handled(), 8);
        for s in 0..8u64 {
            assert_eq!(
                view.block_state(StripeId(s)).unwrap().raw_block(),
                &[s as u8; 2]
            );
        }
    }

    #[test]
    fn cross_shard_batch_is_atomic_and_ordered() {
        let node = ShardedNode::new(NodeId(0), 4, 4);
        // Batch members span three shards; the swap on stripe 2 must be
        // visible to the read later in the same batch.
        let reply = node.handle(Request::Batch(vec![
            Request::Swap {
                stripe: StripeId(2),
                value: vec![7; 4],
                ntid: tid(1),
            },
            Request::Read { stripe: StripeId(5) },
            Request::Read { stripe: StripeId(2) },
        ]));
        let Reply::Batch(rs) = reply else { panic!() };
        assert!(matches!(&rs[0], Reply::Swap(s) if s.block == Some(vec![0; 4])));
        assert!(matches!(&rs[2], Reply::Read(r) if r.block == Some(vec![7; 4])));
    }

    #[test]
    fn deferred_flush_accounting_is_node_level() {
        // Alternating stripes land in *different* shards; a per-shard dirty
        // marker would coalesce them, but the node has one medium, so each
        // alternation must flush (single-lock semantics).
        let single = {
            let mut n =
                StorageNode::new(NodeId(0), 2).with_flush_policy(FlushPolicy::Deferred);
            for i in 0..6u64 {
                n.handle(add(i % 2, i + 1));
            }
            n.flush_all();
            n.media_writes()
        };
        let sharded = ShardedNode::new(NodeId(0), 2, 4).with_flush_policy(FlushPolicy::Deferred);
        for i in 0..6u64 {
            sharded.handle(add(i % 2, i + 1));
        }
        sharded.flush_all();
        assert_eq!(sharded.media_writes(), single);
        assert_eq!(single, 6, "five alternation flushes + final flush");
    }

    #[test]
    fn scaled_add_reaches_every_shard_code() {
        let code = CodeFamily::rs(2, 4).unwrap();
        let expected = code.scale_broadcast_delta(0, 0, &[1; 4]);
        let node = ShardedNode::new(NodeId(0), 4, 3).with_code(code);
        for s in 0..3u64 {
            let r = node.handle(Request::Add {
                stripe: StripeId(s),
                delta: vec![1; 4],
                ntid: tid(s + 1),
                otid: None,
                epoch: Epoch(0),
                scale: Some((0, 0)),
            });
            assert!(matches!(r, Reply::Add(a) if a.status == AddStatus::Ok));
            let view = node.lock_all();
            assert_eq!(view.block_state(StripeId(s)).unwrap().raw_block(), &expected[..]);
        }
    }

    #[test]
    fn fail_remap_and_client_failure_span_shards() {
        let node = ShardedNode::new(NodeId(0), 2, 3);
        for s in 0..6u64 {
            node.handle(Request::Swap {
                stripe: StripeId(s),
                value: vec![1; 2],
                ntid: tid(s + 1),
            });
        }
        node.handle(Request::TryLock {
            stripe: StripeId(4),
            lm: LMode::L1,
            caller: ClientId(9),
        });
        assert_eq!(node.on_client_failure(ClientId(9)), 1);
        node.fail_remap(0xEE);
        let view = node.lock_all();
        for s in 0..6u64 {
            assert_eq!(view.block_state(StripeId(s)).unwrap().raw_block(), &[0xEE; 2]);
        }
    }

    #[test]
    fn disjoint_shard_traffic_never_contends() {
        // Four threads, each hammering a stripe in its own shard: the
        // contention counter must stay exactly zero — the measurable form
        // of "independent-stripe batches don't serialize".
        let node = Arc::new(ShardedNode::new(NodeId(0), 8, 4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let node = Arc::clone(&node);
                s.spawn(move || {
                    for i in 0..500u64 {
                        node.handle(Request::Batch(vec![
                            Request::Swap {
                                stripe: StripeId(t),
                                value: vec![i as u8; 8],
                                ntid: Tid::new(i + 1, 0, ClientId(t as u32)),
                            },
                            Request::Read { stripe: StripeId(t) },
                        ]));
                    }
                });
            }
        });
        assert_eq!(
            node.contended_shard_locks(),
            0,
            "disjoint-shard batches must not serialize"
        );
        assert_eq!(node.shard_lock_acquisitions(), 4 * 500);
    }

    #[test]
    fn wal_restart_with_disk_recovers_blocks_and_metadata() {
        use crate::persist::{scratch_dir, Persistence, WalBackend};
        use crate::types::OpMode;
        let dir = scratch_dir("shard");
        let wal: Arc<dyn Persistence> = Arc::new(WalBackend::create(dir.join("n.wal")));
        let node = ShardedNode::new(NodeId(0), 2, 3).with_persistence(Arc::clone(&wal));
        for s in 0..5u64 {
            node.handle(Request::Swap {
                stripe: StripeId(s),
                value: vec![s as u8 + 1; 2],
                ntid: tid(s + 1),
            });
        }
        // A held recovery lock, an expired one, and a batch.
        node.handle(Request::TryLock {
            stripe: StripeId(1),
            lm: LMode::L1,
            caller: ClientId(7),
        });
        node.handle(Request::TryLock {
            stripe: StripeId(2),
            lm: LMode::L1,
            caller: ClientId(9),
        });
        assert_eq!(node.on_client_failure(ClientId(9)), 1);
        node.handle(Request::Batch(vec![add(0, 9), add(4, 10)]));

        let snapshot: Vec<_> = {
            let view = node.lock_all();
            (0..5u64)
                .map(|s| {
                    let b = view.block_state(StripeId(s)).unwrap();
                    (b.raw_block().to_vec(), b.opmode(), b.lmode(), b.epoch())
                })
                .collect()
        };
        assert!(node.restart_from_disk(), "WAL backend must recover");
        let view = node.lock_all();
        for (s, (bytes, opmode, lmode, epoch)) in snapshot.iter().enumerate() {
            let b = view.block_state(StripeId(s as u64)).unwrap();
            assert_eq!(b.raw_block(), &bytes[..], "stripe {s} bytes");
            assert_eq!(b.opmode(), *opmode, "stripe {s} opmode");
            assert_eq!(b.lmode(), *lmode, "stripe {s} lmode");
            assert_eq!(b.epoch(), *epoch, "stripe {s} epoch");
        }
        assert_eq!(view.block_state(StripeId(1)).unwrap().lmode(), LMode::L1);
        assert_eq!(view.block_state(StripeId(2)).unwrap().lmode(), LMode::Exp);
        assert_eq!(view.block_state(StripeId(0)).unwrap().opmode(), OpMode::Norm);
        drop(view);

        // The in-memory backend cannot restart with disk.
        let mem = ShardedNode::new(NodeId(0), 2, 3);
        mem.handle(Request::Swap {
            stripe: StripeId(0),
            value: vec![3; 2],
            ntid: tid(1),
        });
        assert!(!mem.restart_from_disk());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_shard_batches_stay_atomic_under_contention() {
        // Two threads, same stripe: contention is expected, atomicity must
        // hold (each batch's read sees its own swap).
        let node = Arc::new(ShardedNode::new(NodeId(0), 8, 4));
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let node = Arc::clone(&node);
                s.spawn(move || {
                    for i in 0..300u64 {
                        let fill = ((t as u8 + 1) * 7) ^ (i as u8);
                        let reply = node.handle(Request::Batch(vec![
                            Request::Swap {
                                stripe: StripeId(0),
                                value: vec![fill; 8],
                                ntid: Tid::new(i + 1, 0, ClientId(t)),
                            },
                            Request::Read { stripe: StripeId(0) },
                        ]));
                        let Reply::Batch(rs) = reply else { panic!() };
                        let Reply::Read(r) = &rs[1] else { panic!() };
                        assert_eq!(r.block.as_deref(), Some(&vec![fill; 8][..]));
                    }
                });
            }
        });
    }

    #[test]
    fn watchdog_allows_ascending_and_reacquisition() {
        let node = ShardedNode::new(NodeId(9), 8, 4);
        let a = node.lock_shard(0);
        let b = node.lock_shard(2);
        let c = node.lock_shard(3);
        drop(c);
        drop(b);
        drop(a);
        // After release the order state resets: a lower index is fine again.
        let d = node.lock_shard(1);
        drop(d);
        // Whole-node acquisition is ascending by construction.
        let view = node.lock_all();
        drop(view);
    }

    #[test]
    fn watchdog_catches_descending_acquisition() {
        if !cfg!(debug_assertions) {
            return; // the watchdog compiles out of release builds
        }
        let node = ShardedNode::new(NodeId(9), 8, 4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _hi = node.lock_shard(2);
            let _lo = node.lock_shard(1); // descending: must assert
        }));
        assert!(
            result.is_err(),
            "descending shard-lock acquisition must trip the lock-order watchdog"
        );
        // The unwound guards reported their release: ascending works again.
        let a = node.lock_shard(1);
        let b = node.lock_shard(2);
        drop(b);
        drop(a);
    }

    #[test]
    fn watchdog_tracks_nodes_independently() {
        // Holding a high shard on one node must not forbid a low shard on
        // another: the ordering discipline is per node.
        let n1 = ShardedNode::new(NodeId(1), 8, 4);
        let n2 = ShardedNode::new(NodeId(2), 8, 4);
        let hi = n1.lock_shard(3);
        let lo = n2.lock_shard(0);
        drop(lo);
        drop(hi);
    }
}
