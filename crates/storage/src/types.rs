//! Shared protocol types: identifiers, modes, and tid-list entries.
//!
//! These mirror the global variables of the paper's storage-node pseudocode
//! (Fig. 4/5/6) and the write identifiers of Fig. 5 line 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a client node (`p` in the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a *logical* storage node (`S_1..S_n`, zero-based). Logical
/// identity survives fail-remap (§3.5): the directory points it at a fresh
/// physical node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifies an erasure-code stripe. All protocol state (locks, epochs,
/// tid lists) is kept **per stripe-block**, so recovery of one stripe never
/// interferes with others.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct StripeId(pub u64);

impl fmt::Display for StripeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe{}", self.0)
    }
}

/// A unique write identifier: the paper's `tid = ⟨seq, i, p⟩` (Fig. 5
/// line 2) — sequence number, data-block index within the stripe, and the
/// originating client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Tid {
    /// Client-local sequence number.
    pub seq: u64,
    /// Index `i` of the data block the write targets (`0..k`).
    pub block: usize,
    /// The writing client `p`.
    pub client: ClientId,
}

impl Tid {
    /// Builds a tid; mirrors `ntid ← ⟨seq, i, p⟩`.
    pub fn new(seq: u64, block: usize, client: ClientId) -> Self {
        Tid { seq, block, client }
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},{}⟩", self.seq, self.block, self.client)
    }
}

/// Recovery epoch number (§3.8 "Epochs"). Incremented by every completed
/// recovery; storage nodes reject `add`s from earlier epochs so a `WRITE`
/// whose `swap` ran before a recovery cannot garble the recovered stripe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch after this one.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Operational mode of a stripe-block (Fig. 4 line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OpMode {
    /// Valid data in `block`.
    #[default]
    Norm,
    /// Recovery phase 3 in progress; `recons_set` names the consistent set.
    Recons,
    /// Invalid data (fresh node after fail-remap).
    Init,
}

/// Lock mode of a stripe-block (Fig. 4 line 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LMode {
    /// Unlocked: `swap` and `add` allowed.
    #[default]
    Unl,
    /// Partial lock: `add` allowed (recovery is waiting for outstanding
    /// writes to complete), `swap` rejected.
    L0,
    /// Full lock: both rejected.
    L1,
    /// Expired lock: the locking client crashed; the next client to see this
    /// starts recovery.
    Exp,
}

impl LMode {
    /// True for the modes in which a client may *start* recovery
    /// (`lmode ∈ {UNL, EXP}`, Fig. 4 line 3).
    pub fn allows_recovery_start(self) -> bool {
        matches!(self, LMode::Unl | LMode::Exp)
    }

    /// True if the block is held by a recovery lock (L0 or L1).
    pub fn is_locked(self) -> bool {
        matches!(self, LMode::L0 | LMode::L1)
    }
}

/// An entry of `recentlist`/`oldlist`: a write identifier stamped with the
/// node-local logical time of its arrival (Fig. 5 line 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TidEntry {
    /// The write identifier.
    pub tid: Tid,
    /// Node-local arrival time (monotonic per stripe-block).
    pub time: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_order_by_seq_then_block_then_client() {
        let a = Tid::new(1, 0, ClientId(0));
        let b = Tid::new(2, 0, ClientId(0));
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(a, Tid::new(1, 0, ClientId(0)));
    }

    #[test]
    fn lmode_predicates_match_paper() {
        assert!(LMode::Unl.allows_recovery_start());
        assert!(LMode::Exp.allows_recovery_start());
        assert!(!LMode::L0.allows_recovery_start());
        assert!(!LMode::L1.allows_recovery_start());
        assert!(LMode::L0.is_locked());
        assert!(LMode::L1.is_locked());
        assert!(!LMode::Unl.is_locked());
        assert!(!LMode::Exp.is_locked());
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch(0).next(), Epoch(1));
        assert!(Epoch(1) > Epoch(0));
    }

    #[test]
    fn display_forms_are_compact() {
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(NodeId(7).to_string(), "s7");
        assert_eq!(Tid::new(9, 1, ClientId(2)).to_string(), "⟨9,1,c2⟩");
        assert_eq!(Epoch(4).to_string(), "e4");
        assert_eq!(StripeId(11).to_string(), "stripe11");
    }

    #[test]
    fn defaults_are_paper_initial_values() {
        assert_eq!(OpMode::default(), OpMode::Norm);
        assert_eq!(LMode::default(), LMode::Unl);
        assert_eq!(Epoch::default(), Epoch(0));
    }
}
