//! The per-stripe-block state machine — a line-by-line implementation of
//! the storage-node pseudocode in the paper's Fig. 4 (read), Fig. 5
//! (swap/add/checktid), Fig. 6 (recovery operations) and Fig. 7 (garbage
//! collection).
//!
//! Everything here is a pure, transport-agnostic state machine: one request
//! in, one reply out, no I/O. That is the paper's *thin server* principle
//! ("storage nodes ... implement very simple functionality", §1) made
//! literal — the entire server logic fits in this file.

use crate::types::{ClientId, Epoch, LMode, OpMode, Tid, TidEntry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reply to `read` (Fig. 4 lines 12-14).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadReply {
    /// The block content, or `None` (the paper's ⊥) if the node is not in
    /// normal mode or is locked.
    pub block: Option<Vec<u8>>,
    /// The node's lock mode, so the client can decide whether to start
    /// recovery (`UNL`/`EXP`) or wait (`L0`/`L1`).
    pub lmode: LMode,
}

/// Reply to `swap` (Fig. 5 lines 27-34).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapReply {
    /// The *previous* block content `w`, or `None` on rejection.
    pub block: Option<Vec<u8>>,
    /// The node's current epoch, piggybacked into subsequent `add`s.
    pub epoch: Epoch,
    /// Identifier of the previous write to this block (`otid`), used to
    /// order concurrent writes to the same block.
    pub otid: Option<Tid>,
    /// Lock mode at the time of the call.
    pub lmode: LMode,
}

/// Status component of an [`AddReply`] (Fig. 5 lines 36-42).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddStatus {
    /// The increment was applied.
    Ok,
    /// The previous write (`otid`) has not reached this node yet; retry
    /// later so adds apply in the same order everywhere (§3.7).
    Order,
    /// Rejected: not in normal mode, locked against adds, or stale epoch
    /// (the paper's ⊥).
    Unavail,
}

/// Reply to `add`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddReply {
    /// Outcome of the add.
    pub status: AddStatus,
    /// Operational mode, so the client can detect crashed/INIT nodes.
    pub opmode: OpMode,
    /// Lock mode, so the client can detect in-progress or expired recovery.
    pub lmode: LMode,
}

/// Reply to `checktid` (Fig. 5 lines 43-45).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckTidReply {
    /// `ntid` is gone from the recentlist: the node crashed and remapped.
    Init,
    /// `otid` is gone: the write we were ordering behind has completed and
    /// been garbage collected — no need to keep checking order.
    Gc,
    /// Both tids still present; keep waiting.
    NoChange,
}

/// Reply to `trylock` (Fig. 6 lines 25-26).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TryLockReply {
    /// `true` if the lock was acquired (`status: OK`).
    pub ok: bool,
    /// The lock mode before the call — needed to release correctly when
    /// lock acquisition fails partway (Fig. 6 line 5).
    pub old_lmode: LMode,
}

/// Reply to `get_state` (Fig. 6 lines 27-28): everything recovery needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GetStateReply {
    /// Operational mode; `RECONS` means a crashed client left phase-3 state.
    pub opmode: OpMode,
    /// The consistent set saved by a previous (crashed) recovery.
    pub recons_set: Vec<usize>,
    /// Garbage-collection list: tids whose write completed everywhere.
    pub oldlist: Vec<TidEntry>,
    /// Recent-write list used to judge consistency.
    pub recentlist: Vec<TidEntry>,
    /// Block content, or `None` if `opmode ≠ NORM` ("block has garbage").
    /// Also `None` in replies to metadata-only probes (`GetMeta`).
    pub block: Option<Vec<u8>>,
    /// The node's current epoch: targeted rebuild computes the finalize
    /// epoch as the max over *all* nodes' `get_state`/`get_meta` replies,
    /// not just the nodes it reconstructs.
    pub epoch: Epoch,
}

/// The state of one stripe-block at one storage node: the global variables
/// of Figs. 4-6 plus the node-local clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockState {
    block: Vec<u8>,
    opmode: OpMode,
    lmode: LMode,
    epoch: Epoch,
    recentlist: Vec<TidEntry>,
    oldlist: Vec<TidEntry>,
    /// Node-local logical time, "auto incremented at some rate" (Fig. 5
    /// line 26); we advance it on every operation.
    time: u64,
    /// The client holding the recovery lock (Fig. 6, `lid`).
    lid: Option<ClientId>,
    /// Saved consistent set for crash-tolerant recovery (Fig. 6).
    recons_set: Vec<usize>,
    /// Replies of pending swaps, keyed by tid, so a duplicate delivery can
    /// replay the *original* reply. A swap's reply carries the previous
    /// block content, which the writer turns into redundancy increments —
    /// answering a duplicate with the current (post-swap) content would
    /// hand the writer a zero delta and silently void the redundancy
    /// update. Entries live exactly as long as the tid's recentlist entry.
    swap_replays: BTreeMap<Tid, SwapReply>,
}

impl BlockState {
    /// A fresh block in normal mode holding `size` zero bytes ("block,
    /// initially 0", Fig. 4 line 7).
    pub fn new(size: usize) -> Self {
        BlockState {
            block: vec![0; size],
            opmode: OpMode::Norm,
            lmode: LMode::Unl,
            epoch: Epoch(0),
            recentlist: Vec::new(),
            oldlist: Vec::new(),
            time: 0,
            lid: None,
            recons_set: Vec::new(),
            swap_replays: BTreeMap::new(),
        }
    }

    /// The state after fail-remap (§3.5): random garbage content, `opmode =
    /// INIT`, `lmode = UNL`, epoch 0, empty lists. The caller supplies the
    /// garbage bytes (tests make them adversarial).
    pub fn after_fail_remap(garbage: Vec<u8>) -> Self {
        BlockState {
            block: garbage,
            opmode: OpMode::Init,
            lmode: LMode::Unl,
            epoch: Epoch(0),
            recentlist: Vec::new(),
            oldlist: Vec::new(),
            time: 0,
            lid: None,
            recons_set: Vec::new(),
            swap_replays: BTreeMap::new(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.time += 1;
        self.time
    }

    /// `read()` — Fig. 4 lines 12-14.
    pub fn read(&mut self) -> ReadReply {
        self.tick();
        if self.opmode != OpMode::Norm || self.lmode != LMode::Unl {
            ReadReply {
                block: None,
                lmode: self.lmode,
            }
        } else {
            ReadReply {
                block: Some(self.block.clone()),
                lmode: self.lmode,
            }
        }
    }

    /// `swap(v, ntid)` — Fig. 5 lines 27-34: atomically replaces the block
    /// with `v`, returning the old content, the current epoch, and the tid
    /// of the most recent previous write.
    pub fn swap(&mut self, v: Vec<u8>, ntid: Tid) -> SwapReply {
        let now = self.tick();
        if self.opmode != OpMode::Norm || self.lmode != LMode::Unl {
            return SwapReply {
                block: None,
                epoch: self.epoch,
                otid: None,
                lmode: self.lmode,
            };
        }
        if self.seen_tid(ntid) {
            // At-least-once delivery: this swap already executed. Applying
            // it again would record the tid twice; instead replay the
            // *original* reply. The reply must be exact: the writer derives
            // its redundancy increments from the returned old content, so a
            // fabricated reply (e.g. the current content) would yield a
            // zero delta and silently void the update. If the replay was
            // already pruned (tid GC'd — its write long since completed and
            // acknowledged), reject like a lock refusal; nothing can still
            // be waiting on it.
            return self.swap_replays.get(&ntid).cloned().unwrap_or(SwapReply {
                block: None,
                epoch: self.epoch,
                otid: None,
                lmode: self.lmode,
            });
        }
        let retblk = std::mem::replace(&mut self.block, v);
        let otid = self
            .recentlist
            .iter()
            .max_by_key(|e| e.time)
            .map(|e| e.tid);
        self.recentlist.push(TidEntry { tid: ntid, time: now });
        let reply = SwapReply {
            block: Some(retblk),
            epoch: self.epoch,
            otid,
            lmode: self.lmode,
        };
        self.swap_replays.insert(ntid, reply.clone());
        reply
    }

    /// Whether `tid` was already recorded here (either list) — the
    /// duplicate-delivery guard for the non-idempotent mutations.
    fn seen_tid(&self, tid: Tid) -> bool {
        self.recentlist
            .iter()
            .chain(self.oldlist.iter())
            .any(|entry| entry.tid == tid)
    }

    /// `add(v, ntid, otid, e)` — Fig. 5 lines 36-42: XORs the increment into
    /// the block if the node is available, the epoch is current, and the
    /// previous write (`otid`) has already been seen here.
    pub fn add(&mut self, v: &[u8], ntid: Tid, otid: Option<Tid>, e: Epoch) -> AddReply {
        let now = self.tick();
        if self.opmode != OpMode::Norm
            || !matches!(self.lmode, LMode::Unl | LMode::L0)
            || e < self.epoch
        {
            return AddReply {
                status: AddStatus::Unavail,
                opmode: self.opmode,
                lmode: self.lmode,
            };
        }
        if let Some(otid) = otid {
            let seen = self
                .recentlist
                .iter()
                .chain(self.oldlist.iter())
                .any(|entry| entry.tid == otid);
            if !seen {
                return AddReply {
                    status: AddStatus::Order,
                    opmode: self.opmode,
                    lmode: self.lmode,
                };
            }
        }
        if !self.seen_tid(ntid) {
            // At-least-once delivery: a duplicated add must not XOR the
            // increment a second time — in GF(2^w) that *cancels* the
            // update while the bookkeeping still claims it happened.
            ajx_gf::slice::add_assign(&mut self.block, v);
            self.recentlist.push(TidEntry { tid: ntid, time: now });
        }
        AddReply {
            status: AddStatus::Ok,
            opmode: self.opmode,
            lmode: self.lmode,
        }
    }

    /// `checktid(ntid, otid)` — Fig. 5 lines 43-45.
    pub fn checktid(&mut self, ntid: Tid, otid: Tid) -> CheckTidReply {
        self.tick();
        let in_recent = |t: Tid| self.recentlist.iter().any(|e| e.tid == t);
        if !in_recent(ntid) {
            CheckTidReply::Init
        } else if !in_recent(otid) {
            CheckTidReply::Gc
        } else {
            CheckTidReply::NoChange
        }
    }

    /// `trylock(lm)` — Fig. 6 lines 25-26: acquires the recovery lock unless
    /// another recovery already holds it (L0/L1).
    ///
    /// Re-entrant for the current holder: a recovery retried after an
    /// indeterminate RPC (its first `trylock` executed but the reply was
    /// lost) or restarted after a transient error must be able to reacquire
    /// its own locks instead of deadlocking against itself until a failure
    /// notification expires them.
    pub fn trylock(&mut self, lm: LMode, caller: ClientId) -> TryLockReply {
        self.tick();
        if self.lmode.is_locked() && self.lid != Some(caller) {
            return TryLockReply {
                ok: false,
                old_lmode: self.lmode,
            };
        }
        let old = self.lmode;
        self.lmode = lm;
        self.lid = Some(caller);
        TryLockReply { ok: true, old_lmode: old }
    }

    /// `setlock(lm)` — lock-mode change by the recovery owner.
    ///
    /// In Fig. 6 only the client that won `trylock` ever calls this, so the
    /// pseudocode leaves it unconditional. With lossy transport a client
    /// may issue a releasing `setlock` *after* losing the stripe (its error
    /// path fires a best-effort unlock while a competing recovery holds the
    /// locks), so a `setlock` from a non-holder on a locked block is
    /// ignored rather than allowed to clobber the active recovery.
    /// A second guard covers blocks in `RECONS` mode: once a `reconstruct`
    /// has landed, the next recovery will re-decode from this block's saved
    /// `recons_set` without re-checking it (Fig. 6 line 9), so the block
    /// must not return to `UNL` before a `finalize` — even for the holder's
    /// own error-path unlock. (`EXP` is still allowed: it keeps writes out
    /// and lets a successor recovery take over.)
    pub fn setlock(&mut self, lm: LMode, caller: ClientId) {
        self.tick();
        if self.lmode.is_locked() && self.lid != Some(caller) {
            return;
        }
        if self.opmode == OpMode::Recons && lm == LMode::Unl {
            return;
        }
        self.lmode = lm;
        self.lid = Some(caller);
    }

    /// `get_state()` — Fig. 6 lines 27-28.
    ///
    /// Deviation from the pseudocode (which returns ⊥ unless `opmode =
    /// NORM`): content is also returned in RECONS mode. A client picking up
    /// a crashed recovery (Fig. 6 line 9) must decode from the saved
    /// consistent set, and some of those nodes may already have been
    /// `reconstruct`ed by the crashed client — their content is the
    /// recovered (hence correct) value, since re-encoding a consistent set
    /// reproduces that set's blocks exactly. Only INIT content is garbage.
    pub fn get_state(&mut self) -> GetStateReply {
        self.tick();
        GetStateReply {
            opmode: self.opmode,
            recons_set: self.recons_set.clone(),
            oldlist: self.oldlist.clone(),
            recentlist: self.recentlist.clone(),
            block: if self.opmode == OpMode::Init {
                None
            } else {
                Some(self.block.clone())
            },
            epoch: self.epoch,
        }
    }

    /// `getrecent(lm)` — changes the lock mode and returns the recentlist
    /// in one atomic step (recovery's re-lock before new adds, Fig. 6
    /// line 19).
    pub fn getrecent(&mut self, lm: LMode, caller: ClientId) -> Vec<TidEntry> {
        self.tick();
        self.lmode = lm;
        self.lid = Some(caller);
        self.recentlist.clone()
    }

    /// `reconstruct(set, blk)` — Fig. 6 lines 29-30: installs recovered
    /// content and remembers the consistent set so another client can finish
    /// recovery if this one crashes.
    pub fn reconstruct(&mut self, set: Vec<usize>, blk: Vec<u8>) -> Epoch {
        self.tick();
        self.opmode = OpMode::Recons;
        self.recons_set = set;
        self.block = blk;
        self.epoch
    }

    /// `finalize(ep)` — Fig. 6 lines 31-33: bumps the epoch, clears the tid
    /// lists, returns to normal mode, and unlocks.
    pub fn finalize(&mut self, ep: Epoch) {
        self.tick();
        self.epoch = ep;
        self.recentlist.clear();
        self.oldlist.clear();
        self.swap_replays.clear();
        if self.opmode == OpMode::Recons {
            self.opmode = OpMode::Norm;
        }
        self.lmode = LMode::Unl;
        self.lid = None;
    }

    /// `gc_old(list)` — Fig. 7: phase 1 of GC, dropping tids from `oldlist`.
    /// Returns `false` (the paper's ⊥) if the node is busy.
    pub fn gc_old(&mut self, tids: &[Tid]) -> bool {
        self.tick();
        if self.opmode != OpMode::Norm || self.lmode != LMode::Unl {
            return false;
        }
        self.oldlist.retain(|e| !tids.contains(&e.tid));
        true
    }

    /// `gc_recent(list)` — Fig. 7: phase 2 of GC, moving completed tids from
    /// `recentlist` to `oldlist`. Returns `false` if the node is busy.
    pub fn gc_recent(&mut self, tids: &[Tid]) -> bool {
        self.tick();
        if self.opmode != OpMode::Norm || self.lmode != LMode::Unl {
            return false;
        }
        let mut moved = Vec::new();
        self.recentlist.retain(|e| {
            if tids.contains(&e.tid) {
                moved.push(*e);
                false
            } else {
                true
            }
        });
        for e in &moved {
            self.swap_replays.remove(&e.tid);
        }
        self.oldlist.extend(moved);
        true
    }

    /// "upon failure of `lid` when `lmode ∈ {L0, L1}`: `lmode ← EXP`"
    /// (Fig. 6 line 34). Returns `true` if the lock actually expired.
    pub fn expire_lock_if_held_by(&mut self, failed: ClientId) -> bool {
        if self.lid == Some(failed) && self.lmode.is_locked() {
            self.lmode = LMode::Exp;
            true
        } else {
            false
        }
    }

    /// Current lock mode (for monitoring and tests).
    pub fn lmode(&self) -> LMode {
        self.lmode
    }

    /// Current operational mode (for monitoring, §3.10).
    pub fn opmode(&self) -> OpMode {
        self.opmode
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The client currently holding the recovery lock, if any.
    pub fn lock_holder(&self) -> Option<ClientId> {
        self.lid
    }

    /// Direct (test/monitoring) view of the block bytes, regardless of mode.
    pub fn raw_block(&self) -> &[u8] {
        &self.block
    }

    /// Number of entries across both tid lists (monitoring, §3.10: "recent
    /// list has some old tid" signals an unfinished write).
    pub fn pending_tids(&self) -> usize {
        self.recentlist.len()
    }

    /// Oldest recentlist entry's age in ticks, if any — the monitor's
    /// "started but unfinished write" signal (§3.10).
    pub fn oldest_recent_age(&self) -> Option<u64> {
        self.recentlist.iter().map(|e| self.time - e.time).max()
    }

    /// Monitoring probe: advances the local clock (the paper's `time` is
    /// "auto incremented at some rate"; ours ticks per operation,
    /// *including* probes, so abandoned writes age even on otherwise idle
    /// blocks) and reports the §3.10 signals.
    pub fn probe(&mut self) -> (OpMode, LMode, Option<u64>) {
        self.tick();
        (self.opmode, self.lmode, self.oldest_recent_age())
    }

    /// Bytes of protocol metadata kept beyond the block content (§6.5):
    /// modes + epoch + clock + tid-list entries.
    pub fn metadata_bytes(&self) -> usize {
        // opmode + lmode: 1 byte each; epoch: 8; time: 8; lid: 4;
        // each tid entry: tid (8 + 4 + 4) + time (8) = 24 bytes;
        // recons_set: 2 bytes per index (n <= 256 in practice).
        1 + 1 + 8 + 8 + 4
            + 24 * (self.recentlist.len() + self.oldlist.len())
            + 2 * self.recons_set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(seq: u64) -> Tid {
        Tid::new(seq, 0, ClientId(1))
    }

    #[test]
    fn read_returns_block_in_normal_unlocked_state() {
        let mut s = BlockState::new(4);
        let r = s.read();
        assert_eq!(r.block, Some(vec![0; 4]));
        assert_eq!(r.lmode, LMode::Unl);
    }

    #[test]
    fn duplicated_add_is_applied_exactly_once() {
        let mut s = BlockState::new(4);
        let r = s.add(&[7, 7, 7, 7], tid(1), None, Epoch(0));
        assert_eq!(r.status, AddStatus::Ok);
        assert_eq!(s.raw_block(), &[7, 7, 7, 7]);
        // An at-least-once network redelivers the same add: a second XOR
        // would cancel the update entirely.
        let r = s.add(&[7, 7, 7, 7], tid(1), None, Epoch(0));
        assert_eq!(r.status, AddStatus::Ok, "duplicate is acknowledged");
        assert_eq!(s.raw_block(), &[7, 7, 7, 7], "but not re-applied");
        assert_eq!(s.pending_tids(), 1, "and not re-recorded");
    }

    #[test]
    fn duplicated_swap_is_applied_exactly_once() {
        let mut s = BlockState::new(4);
        let first = s.swap(vec![9; 4], tid(1));
        let dup = s.swap(vec![9; 4], tid(1));
        assert_eq!(s.raw_block(), &[9, 9, 9, 9]);
        assert_eq!(s.pending_tids(), 1, "tid recorded once");
        // The duplicate must replay the original reply exactly: the writer
        // computes its redundancy delta from the returned old content, so
        // answering with the post-swap content would zero the delta.
        assert_eq!(dup, first);
        assert_eq!(dup.block.as_deref(), Some(&[0u8, 0, 0, 0][..]));
    }

    #[test]
    fn trylock_is_reentrant_for_the_holder_only() {
        let mut s = BlockState::new(4);
        assert!(s.trylock(LMode::L1, ClientId(1)).ok);
        // A competing recovery is still refused.
        let r = s.trylock(LMode::L1, ClientId(2));
        assert!(!r.ok);
        assert_eq!(r.old_lmode, LMode::L1);
        // The holder retrying (lost reply / restarted recovery) reacquires.
        let r = s.trylock(LMode::L1, ClientId(1));
        assert!(r.ok);
        assert_eq!(r.old_lmode, LMode::L1);
        assert_eq!(s.lock_holder(), Some(ClientId(1)));
    }

    #[test]
    fn setlock_from_a_non_holder_cannot_clobber_a_held_lock() {
        let mut s = BlockState::new(4);
        s.trylock(LMode::L1, ClientId(1));
        // A stale unlock from a client that lost the stripe is ignored...
        s.setlock(LMode::Unl, ClientId(2));
        assert_eq!(s.lmode(), LMode::L1);
        assert_eq!(s.lock_holder(), Some(ClientId(1)));
        // ...while the holder's own transitions still work.
        s.setlock(LMode::L0, ClientId(1));
        assert_eq!(s.lmode(), LMode::L0);
        s.setlock(LMode::Unl, ClientId(1));
        assert_eq!(s.lmode(), LMode::Unl);
        // Once unlocked, anyone may set a mode (e.g. restoring EXP).
        s.setlock(LMode::Exp, ClientId(2));
        assert_eq!(s.lmode(), LMode::Exp);
    }

    #[test]
    fn recons_block_cannot_be_unlocked_before_finalize() {
        let mut s = BlockState::new(4);
        s.trylock(LMode::L1, ClientId(1));
        s.reconstruct(vec![0, 1], vec![7; 4]);
        // The holder's own error-path unlock must not reopen the stripe to
        // writes while a stale recons_set is pinned here...
        s.setlock(LMode::Unl, ClientId(1));
        assert_eq!(s.lmode(), LMode::L1);
        // ...but expiry (failed-holder detection) still transitions it, and
        // finalize performs the real unlock.
        assert!(s.expire_lock_if_held_by(ClientId(1)));
        assert_eq!(s.lmode(), LMode::Exp);
        s.trylock(LMode::L1, ClientId(2));
        s.finalize(Epoch(3));
        assert_eq!(s.lmode(), LMode::Unl);
        assert_eq!(s.opmode(), OpMode::Norm);
    }

    #[test]
    fn probe_reports_lock_mode() {
        let mut s = BlockState::new(4);
        assert_eq!(s.probe().1, LMode::Unl);
        s.trylock(LMode::L1, ClientId(1));
        assert_eq!(s.probe().1, LMode::L1);
    }

    #[test]
    fn read_fails_when_locked_or_init() {
        let mut s = BlockState::new(4);
        s.trylock(LMode::L1, ClientId(9));
        assert_eq!(s.read().block, None);

        let mut s = BlockState::after_fail_remap(vec![0xAA; 4]);
        let r = s.read();
        assert_eq!(r.block, None);
        assert_eq!(r.lmode, LMode::Unl);
    }

    #[test]
    fn swap_returns_old_content_and_previous_tid() {
        let mut s = BlockState::new(2);
        let r1 = s.swap(vec![1, 1], tid(1));
        assert_eq!(r1.block, Some(vec![0, 0]));
        assert_eq!(r1.otid, None, "first write has no predecessor");
        let r2 = s.swap(vec![2, 2], tid(2));
        assert_eq!(r2.block, Some(vec![1, 1]));
        assert_eq!(r2.otid, Some(tid(1)));
        let r3 = s.swap(vec![3, 3], tid(3));
        assert_eq!(r3.otid, Some(tid(2)), "otid tracks the latest write");
    }

    #[test]
    fn swap_rejected_when_locked_and_when_init() {
        let mut s = BlockState::new(2);
        s.trylock(LMode::L0, ClientId(9));
        let r = s.swap(vec![1, 1], tid(1));
        assert_eq!(r.block, None);
        assert_eq!(r.lmode, LMode::L0);

        let mut s = BlockState::after_fail_remap(vec![7, 7]);
        assert_eq!(s.swap(vec![1, 1], tid(1)).block, None);
    }

    #[test]
    fn add_xors_and_records_tid() {
        let mut s = BlockState::new(2);
        let r = s.add(&[0x0F, 0xF0], tid(1), None, Epoch(0));
        assert_eq!(r.status, AddStatus::Ok);
        assert_eq!(s.raw_block(), &[0x0F, 0xF0]);
        assert_eq!(s.pending_tids(), 1);
    }

    #[test]
    fn add_enforces_write_order_via_otid() {
        let mut s = BlockState::new(2);
        // otid 5 never seen here: must return ORDER and not modify.
        let r = s.add(&[1, 1], tid(6), Some(tid(5)), Epoch(0));
        assert_eq!(r.status, AddStatus::Order);
        assert_eq!(s.raw_block(), &[0, 0]);
        // After tid 5 arrives, the add goes through.
        assert_eq!(s.add(&[2, 2], tid(5), None, Epoch(0)).status, AddStatus::Ok);
        assert_eq!(s.add(&[1, 1], tid(6), Some(tid(5)), Epoch(0)).status, AddStatus::Ok);
        assert_eq!(s.raw_block(), &[3, 3]);
    }

    #[test]
    fn add_accepts_otid_found_in_oldlist() {
        let mut s = BlockState::new(1);
        s.add(&[1], tid(1), None, Epoch(0));
        assert!(s.gc_recent(&[tid(1)]));
        // tid(1) now lives in oldlist only; ordering check must still pass.
        let r = s.add(&[2], tid(2), Some(tid(1)), Epoch(0));
        assert_eq!(r.status, AddStatus::Ok);
    }

    #[test]
    fn add_rejects_stale_epoch() {
        let mut s = BlockState::new(1);
        s.finalize(Epoch(3));
        let r = s.add(&[1], tid(1), None, Epoch(2));
        assert_eq!(r.status, AddStatus::Unavail);
        // Current and future epochs pass (future can happen transiently
        // while finalize sweeps across nodes).
        assert_eq!(s.add(&[1], tid(2), None, Epoch(3)).status, AddStatus::Ok);
        assert_eq!(s.add(&[1], tid(3), None, Epoch(4)).status, AddStatus::Ok);
    }

    #[test]
    fn add_allowed_under_l0_but_not_l1() {
        let mut s = BlockState::new(1);
        s.trylock(LMode::L1, ClientId(9));
        assert_eq!(s.add(&[1], tid(1), None, Epoch(0)).status, AddStatus::Unavail);
        s.setlock(LMode::L0, ClientId(9));
        assert_eq!(s.add(&[1], tid(1), None, Epoch(0)).status, AddStatus::Ok);
    }

    #[test]
    fn checktid_distinguishes_crash_gc_and_nochange() {
        let mut s = BlockState::new(1);
        s.add(&[1], tid(1), None, Epoch(0));
        s.add(&[1], tid(2), Some(tid(1)), Epoch(0));
        assert_eq!(s.checktid(tid(2), tid(1)), CheckTidReply::NoChange);
        // GC tid(1) out of recentlist:
        assert!(s.gc_recent(&[tid(1)]));
        assert_eq!(s.checktid(tid(2), tid(1)), CheckTidReply::Gc);
        // A remapped node lost everything:
        let mut fresh = BlockState::after_fail_remap(vec![0]);
        assert_eq!(fresh.checktid(tid(2), tid(1)), CheckTidReply::Init);
    }

    #[test]
    fn trylock_refuses_when_already_locked() {
        let mut s = BlockState::new(1);
        assert!(s.trylock(LMode::L1, ClientId(1)).ok);
        let r = s.trylock(LMode::L1, ClientId(2));
        assert!(!r.ok);
        assert_eq!(r.old_lmode, LMode::L1);
        assert_eq!(s.lock_holder(), Some(ClientId(1)));
    }

    #[test]
    fn trylock_succeeds_over_expired_lock() {
        let mut s = BlockState::new(1);
        s.trylock(LMode::L1, ClientId(1));
        assert!(s.expire_lock_if_held_by(ClientId(1)));
        let r = s.trylock(LMode::L1, ClientId(2));
        assert!(r.ok);
        assert_eq!(r.old_lmode, LMode::Exp);
    }

    #[test]
    fn lock_expiry_only_for_the_holder() {
        let mut s = BlockState::new(1);
        s.trylock(LMode::L0, ClientId(1));
        assert!(!s.expire_lock_if_held_by(ClientId(2)));
        assert_eq!(s.lmode(), LMode::L0);
        assert!(s.expire_lock_if_held_by(ClientId(1)));
        assert_eq!(s.lmode(), LMode::Exp);
        // Expiring twice is a no-op (lock no longer held).
        assert!(!s.expire_lock_if_held_by(ClientId(1)));
    }

    #[test]
    fn get_state_hides_garbage_blocks() {
        let mut s = BlockState::after_fail_remap(vec![9, 9]);
        let st = s.get_state();
        assert_eq!(st.opmode, OpMode::Init);
        assert_eq!(st.block, None);

        let mut s = BlockState::new(2);
        assert_eq!(s.get_state().block, Some(vec![0, 0]));
    }

    #[test]
    fn get_state_exposes_recons_content_for_recovery_pickup() {
        // A node already reconstructed by a crashed recovery holds correct
        // content; the pickup client must be able to read it (Fig. 6 line 9).
        let mut s = BlockState::new(2);
        s.reconstruct(vec![0, 1], vec![4, 2]);
        let st = s.get_state();
        assert_eq!(st.opmode, OpMode::Recons);
        assert_eq!(st.block, Some(vec![4, 2]));
    }

    #[test]
    fn reconstruct_and_finalize_complete_recovery() {
        let mut s = BlockState::after_fail_remap(vec![0xFF; 2]);
        let ep = s.reconstruct(vec![0, 1, 2], vec![5, 5]);
        assert_eq!(ep, Epoch(0));
        assert_eq!(s.opmode(), OpMode::Recons);
        assert_eq!(s.get_state().recons_set, vec![0, 1, 2]);
        s.finalize(Epoch(1));
        assert_eq!(s.opmode(), OpMode::Norm);
        assert_eq!(s.lmode(), LMode::Unl);
        assert_eq!(s.epoch(), Epoch(1));
        assert_eq!(s.read().block, Some(vec![5, 5]));
        assert_eq!(s.pending_tids(), 0);
    }

    #[test]
    fn gc_two_phase_moves_then_drops() {
        let mut s = BlockState::new(1);
        s.add(&[1], tid(1), None, Epoch(0));
        s.add(&[1], tid(2), Some(tid(1)), Epoch(0));
        assert!(s.gc_recent(&[tid(1)]));
        let st = s.get_state();
        assert_eq!(st.recentlist.len(), 1);
        assert_eq!(st.oldlist.len(), 1);
        assert!(s.gc_old(&[tid(1)]));
        let st = s.get_state();
        assert_eq!(st.oldlist.len(), 0);
        assert_eq!(st.recentlist.len(), 1, "uncollected tid remains");
    }

    #[test]
    fn gc_rejected_while_locked() {
        let mut s = BlockState::new(1);
        s.trylock(LMode::L1, ClientId(1));
        assert!(!s.gc_recent(&[tid(1)]));
        assert!(!s.gc_old(&[tid(1)]));
    }

    #[test]
    fn metadata_overhead_is_small_when_gc_keeps_up() {
        // §6.5: ~10 bytes/block steady state. With empty tid lists our
        // fixed metadata is 22 bytes (we keep an explicit clock and lid);
        // what matters is that it is O(1) per block, not proportional to
        // history. See `sec65_overhead` bench for the reported number.
        let mut s = BlockState::new(1024);
        s.add(&[0; 1024], tid(1), None, Epoch(0));
        s.gc_recent(&[tid(1)]);
        s.gc_old(&[tid(1)]);
        assert!(s.metadata_bytes() <= 32, "got {}", s.metadata_bytes());
    }

    #[test]
    fn oldest_recent_age_grows_with_time() {
        let mut s = BlockState::new(1);
        assert_eq!(s.oldest_recent_age(), None);
        s.add(&[1], tid(1), None, Epoch(0));
        assert_eq!(s.oldest_recent_age(), Some(0));
        s.read();
        s.read();
        assert_eq!(s.oldest_recent_age(), Some(2));
    }
}
