//! Thin storage nodes for the AJX erasure-coded storage protocol.
//!
//! This crate is the **server side** of the paper (*Using Erasure Codes
//! Efficiently for Storage in a Distributed System*, DSN 2005): a
//! line-by-line Rust implementation of the storage-node pseudocode in
//! Figs. 4-7. The design follows the paper's *thin server* principle —
//! "storage nodes ... implement very simple functionality" (§1) — so the
//! whole node is a pure request→reply state machine with no orchestration
//! logic; all coordination lives in the client crate `ajx-core`.
//!
//! Key pieces:
//!
//! * [`BlockState`] — per-stripe-block state machine: `swap`/`add`/`read`
//!   (Fig. 4/5), the `recentlist`/`oldlist` write bookkeeping, recovery
//!   locks and epochs (Fig. 6), and two-phase GC (Fig. 7).
//! * [`StorageNode`] — a node hosting one block of many stripes behind the
//!   [`Request`]/[`Reply`] wire interface, with fail-remap (§3.5),
//!   broadcast-mode coefficient multiplication and deferred flushing
//!   (§3.11), and metadata accounting (§6.5).
//! * The shared identifier types ([`Tid`], [`Epoch`], [`StripeId`], …) used
//!   across the workspace.
//!
//! # Example
//!
//! ```
//! use ajx_storage::{ClientId, NodeId, Request, Reply, StorageNode, StripeId, Tid, Epoch};
//!
//! let mut node = StorageNode::new(NodeId(3), 8);
//! // A client swaps new data in and learns the old content:
//! let t = Tid::new(1, 0, ClientId(1));
//! let Reply::Swap(swap) = node.handle(Request::Swap {
//!     stripe: StripeId(0),
//!     value: vec![9; 8],
//!     ntid: t,
//! }) else { unreachable!() };
//! assert_eq!(swap.block, Some(vec![0; 8]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod persist;
mod shard;
mod state;
mod types;

pub use node::{FlushPolicy, Reply, Request, StorageNode, MSG_HEADER_BYTES};
pub use persist::{
    backend_for, scratch_dir, scratch_dir_fast, InMemoryPersistence, PersistMode, PersistStats, Persistence,
    WalBackend, WalRecord, WalRecordRef,
};
pub use shard::{NodeView, ShardedNode};
pub use state::{
    AddReply, AddStatus, BlockState, CheckTidReply, GetStateReply, ReadReply, SwapReply,
    TryLockReply,
};
pub use types::{ClientId, Epoch, LMode, NodeId, OpMode, StripeId, Tid, TidEntry};
