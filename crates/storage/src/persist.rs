//! Pluggable node persistence: the in-memory backend and a crash-safe
//! write-ahead log (DESIGN.md §10).
//!
//! The paper's protocol is safe only if a node that answers a request can
//! be trusted to still *know* about it after a restart — the recentlist,
//! epoch, lock mode, and reconstruction set are what §4's recovery
//! reasoning leans on, not just the block payload. [`Persistence`]
//! abstracts that durability contract behind the node:
//!
//! * [`InMemoryPersistence`] — the original node: nothing survives, a
//!   restart is indistinguishable from data loss (full rebuild required).
//! * [`WalBackend`] — a file-backed write-ahead log that journals every
//!   state-mutating request (payload *and* protocol metadata, since the
//!   node state machine is deterministic) and replays it on restart.
//!
//! The WAL is a **logical request log**: rather than serializing the
//! per-stripe [`BlockState`](crate::BlockState) maps, it records the
//! requests (and node-side events: client-failure expiry, fail-remap)
//! that produced them, in shard-conflict order. Replaying the log through
//! a fresh node reproduces every durable fact — block bytes, recentlist /
//! oldlist, epoch, op/lock modes, recons_set, swap-reply dedup state —
//! because the node is a pure state machine. Read-only requests (`read`,
//! `get_state`, `probe`, `checktid`) advance only the node's logical
//! clock and are not journaled; the clock is monitoring state, not
//! protocol state.
//!
//! Group commit: appends are buffered in memory while shard locks are
//! held; [`Persistence::commit`] writes and fsyncs the whole buffer once
//! per node round trip, so an m-operation batch costs one fsync, the same
//! shape as the §3.11 one-round-trip batching.
//!
//! Power-loss testing: [`Persistence::power_fail_at`] arms a byte offset
//! at which the *next* commit tears — everything before the offset
//! reaches the medium, everything after (possibly mid-record) is lost,
//! and the backend refuses further work, exactly like a machine losing
//! power mid-write. Replay detects the torn tail by CRC and truncates to
//! the last complete record.

use crate::node::Request;
use crate::types::{ClientId, Epoch, LMode, StripeId, Tid};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which persistence backend a node (or a whole network of nodes) uses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PersistMode {
    /// Pure in-memory node: restarts lose everything (the original
    /// behavior, and still the default).
    #[default]
    InMemory,
    /// Write-ahead-logged nodes: each node journals to
    /// `<dir>/node-<id>.wal` and can be restarted with its disk.
    Wal {
        /// Directory holding one WAL file per node.
        dir: PathBuf,
    },
}

/// One durable event in the journal. `Apply` covers every state-mutating
/// request (batches are one record: they execute atomically, so they must
/// recover atomically); the other two are node-side events that mutate
/// protocol state without a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A state-mutating [`Request`] the node executed.
    Apply(Request),
    /// Fail-stop detector notification: expire this client's recovery
    /// locks (Fig. 6 line 34).
    ClientFailure(ClientId),
    /// §3.5 directory remap onto a fresh (garbage) disk. Always the first
    /// record of a journal: remap replaces the medium, so the WAL is
    /// truncated before this is written.
    FailRemap(u8),
}

/// Borrowed form of [`WalRecord`] for the append path, so journaling a
/// request costs no clone (the in-memory backend drops it untouched).
#[derive(Debug, Clone, Copy)]
pub enum WalRecordRef<'a> {
    /// See [`WalRecord::Apply`].
    Apply(&'a Request),
    /// See [`WalRecord::ClientFailure`].
    ClientFailure(ClientId),
    /// See [`WalRecord::FailRemap`].
    FailRemap(u8),
}

/// Counters a backend exposes for the durability bench and tooling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Commits that reached the medium (fsyncs issued).
    pub fsyncs: u64,
    /// Records appended since creation (including uncommitted ones).
    pub records: u64,
    /// Bytes currently durable on the medium.
    pub durable_bytes: u64,
}

/// The durability contract behind a storage node. All methods take
/// `&self`: the backend is shared by the node's worker threads and does
/// its own locking.
pub trait Persistence: Send + Sync + std::fmt::Debug {
    /// Whether a restart can recover state from this backend. `false`
    /// means "restart-with-disk" degenerates to "wipe-and-rebuild".
    fn is_durable(&self) -> bool;

    /// Journals one record. Called while the shard locks covering the
    /// record's stripes are held, so the journal order is a valid
    /// linearization of the node's execution order.
    fn append(&self, rec: WalRecordRef<'_>);

    /// Flushes buffered records to the medium (one fsync — group commit).
    /// Returns `false` if the backend has power-failed: the caller must
    /// treat every acknowledgement covered by this commit as lost.
    fn commit(&self) -> bool;

    /// Whether an armed power failure has tripped (the node is "off").
    fn tripped(&self) -> bool;

    /// Arms a simulated power failure: the commit that would push the
    /// durable length past `offset` bytes tears there instead.
    fn power_fail_at(&self, offset: u64);

    /// Reads the journal back, truncating any torn tail, and clears the
    /// tripped state (the machine rebooted). `None` = nothing durable
    /// here (in-memory backend).
    fn replay(&self) -> Option<Vec<WalRecord>>;

    /// Discards the journal (the medium was replaced — §3.5 remap).
    /// Also clears any armed/tripped power-failure state.
    fn truncate(&self);

    /// Durability counters for benches and tooling.
    fn stats(&self) -> PersistStats;
}

/// The no-op backend: the original pure in-memory node.
#[derive(Debug, Default, Clone, Copy)]
pub struct InMemoryPersistence;

impl Persistence for InMemoryPersistence {
    fn is_durable(&self) -> bool {
        false
    }
    fn append(&self, _rec: WalRecordRef<'_>) {}
    fn commit(&self) -> bool {
        true
    }
    fn tripped(&self) -> bool {
        false
    }
    fn power_fail_at(&self, _offset: u64) {}
    fn replay(&self) -> Option<Vec<WalRecord>> {
        None
    }
    fn truncate(&self) {}
    fn stats(&self) -> PersistStats {
        PersistStats::default()
    }
}

/// File-backed write-ahead log. Records are framed
/// `[len: u32][crc32: u32][payload]`, little-endian, CRC over the
/// payload; replay stops at the first frame that is incomplete or fails
/// its CRC and truncates the file there (torn-tail recovery).
#[derive(Debug)]
pub struct WalBackend {
    path: PathBuf,
    inner: Mutex<WalInner>,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Appended-but-uncommitted frames (group-commit buffer).
    buf: Vec<u8>,
    /// Bytes known durable on the medium.
    durable_len: u64,
    /// Armed power-failure byte offset, if any.
    armed: Option<u64>,
    /// A power failure tripped; the node is off until `replay`.
    tripped: bool,
    fsyncs: u64,
    records: u64,
}

impl WalBackend {
    /// Creates (truncating) the journal at `path` — a fresh disk.
    pub fn create(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        if let Some(parent) = path.parent() {
            // LINT-ALLOW(panic-free: setup path — runs at node construction
            // before any request is served; a node that cannot create its
            // journal cannot start)
            std::fs::create_dir_all(parent).expect("create WAL directory");
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            // LINT-ALLOW(panic-free: setup path, as above)
            .expect("create WAL file");
        WalBackend {
            path,
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                durable_len: 0,
                armed: None,
                tripped: false,
                fsyncs: 0,
                records: 0,
            }),
        }
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Persistence for WalBackend {
    fn is_durable(&self) -> bool {
        true
    }

    fn append(&self, rec: WalRecordRef<'_>) {
        let mut inner = self.inner.lock();
        if inner.tripped {
            // The machine is off: nothing further reaches the journal.
            return;
        }
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        inner.buf.extend_from_slice(&frame);
        inner.records += 1;
    }

    fn commit(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.tripped {
            return false;
        }
        if inner.buf.is_empty() {
            // Nothing mutated since the last commit: no fsync charged —
            // reads are free on the write-ahead path.
            return true;
        }
        let pending = std::mem::take(&mut inner.buf);
        if let Some(offset) = inner.armed {
            let end = inner.durable_len + pending.len() as u64;
            if end >= offset {
                // Power dies mid-write: bytes before the armed offset
                // land (unsynced writes often do), the rest — possibly a
                // torn half-record — never reaches the platter, and the
                // machine is off.
                let keep = ((offset.saturating_sub(inner.durable_len)) as usize).min(pending.len());
                let (landed, _torn) = pending.split_at(keep);
                // A write error here changes nothing: the machine is going
                // down either way.
                let _ = inner.file.write_all(landed);
                let _ = inner.file.flush();
                inner.tripped = true;
                inner.armed = None;
                return false;
            }
        }
        if inner.file.write_all(&pending).is_err() || inner.file.sync_data().is_err() {
            // A real media error is indistinguishable from power loss at
            // the protocol level: trip the backend so the node presents as
            // off (§3.5 recovery replaces it) instead of panicking inside
            // a request.
            inner.tripped = true;
            return false;
        }
        inner.durable_len += pending.len() as u64;
        inner.fsyncs += 1;
        true
    }

    fn tripped(&self) -> bool {
        self.inner.lock().tripped
    }

    fn power_fail_at(&self, offset: u64) {
        self.inner.lock().armed = Some(offset);
    }

    fn replay(&self) -> Option<Vec<WalRecord>> {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        // Any I/O error on the replay path means the journal is unreadable:
        // report "not durable" (`None`) and the caller wipes and rebuilds
        // through the §3.5 recovery protocol instead of panicking mid-restart.
        if inner.file.seek(SeekFrom::Start(0)).is_err() {
            return None;
        }
        let mut bytes = Vec::new();
        if inner.file.read_to_end(&mut bytes).is_err() {
            return None;
        }
        let mut records = Vec::new();
        let mut at = 0usize;
        // `decode_frame` returns None on a torn tail, a CRC mismatch, or an
        // undecodable payload: all three end the usable prefix of the log.
        while let Some((rec, next)) = decode_frame(&bytes, at) {
            records.push(rec);
            at = next;
        }
        // Truncate the torn tail so future appends extend a clean log.
        if inner.file.set_len(at as u64).is_err() || inner.file.seek(SeekFrom::End(0)).is_err() {
            return None;
        }
        inner.durable_len = at as u64;
        inner.records = records.len() as u64;
        inner.tripped = false;
        inner.armed = None;
        Some(records)
    }

    fn truncate(&self) {
        let mut inner = self.inner.lock();
        // An I/O failure while wiping means the medium is gone: trip the
        // backend so the node presents as off rather than half-wiped.
        if inner.file.set_len(0).is_err()
            || inner.file.seek(SeekFrom::Start(0)).is_err()
            || inner.file.sync_data().is_err()
        {
            inner.tripped = true;
            return;
        }
        inner.buf.clear();
        inner.durable_len = 0;
        inner.records = 0;
        inner.tripped = false;
        inner.armed = None;
    }

    fn stats(&self) -> PersistStats {
        let inner = self.inner.lock();
        PersistStats {
            fsyncs: inner.fsyncs,
            records: inner.records,
            durable_bytes: inner.durable_len,
        }
    }
}

/// A fresh per-process scratch directory under the system temp dir, for
/// WAL-backed tests, simulators, and benches. The caller owns cleanup.
pub fn scratch_dir(tag: &str) -> PathBuf {
    scratch_under(std::env::temp_dir(), tag)
}

/// Like [`scratch_dir`], but prefers the RAM-backed `/dev/shm` when the
/// platform provides one. Deterministic-trace tests (chaos, power loss)
/// compare event streams across runs, and a journal fsync stalling on a
/// physical disk that is busy with unrelated work would make reply
/// timing — and therefore timeout-vs-reply races — depend on machine
/// load. Benches measuring real fsync cost must keep [`scratch_dir`].
pub fn scratch_dir_fast(tag: &str) -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        scratch_under(shm.to_path_buf(), tag)
    } else {
        scratch_dir(tag)
    }
}

fn scratch_under(base: PathBuf, tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = base.join(format!(
        "ajx-wal-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    // LINT-ALLOW(panic-free: test/bench scaffolding setup, never reached
    // by request handling or replay)
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Decodes the frame starting at byte `at` of the journal image. Returns
/// the record and the offset of the next frame, or `None` if the bytes
/// from `at` on are not one complete, CRC-valid, decodable frame — which
/// ends the usable prefix of the log (torn-tail recovery).
fn decode_frame(bytes: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    let header = bytes.get(at..at.checked_add(8)?)?;
    let (len_bytes, crc_bytes) = header.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    let start = at.checked_add(8)?;
    let payload = bytes.get(start..start.checked_add(len)?)?;
    if crc32(payload) != crc {
        return None; // torn or corrupt frame
    }
    let rec = decode_record(payload)?;
    Some((rec, start + len))
}

/// Wraps `mode` into a backend for node `node_id`. Returns the default
/// in-memory backend unless `mode` selects the WAL.
pub fn backend_for(mode: &PersistMode, node_id: u32) -> Arc<dyn Persistence> {
    match mode {
        PersistMode::InMemory => Arc::new(InMemoryPersistence),
        PersistMode::Wal { dir } => {
            Arc::new(WalBackend::create(dir.join(format!("node-{node_id}.wal"))))
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial), table built at compile time.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        // LINT-ALLOW(panic-free: const-evaluated at compile time — an
        // out-of-bounds index here is a compile error, not a runtime panic;
        // the loop bound keeps i < 256)
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        // LINT-ALLOW(panic-free: the index is masked with 0xFF, so it is
        // always below the table's 256 entries)
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// ---------------------------------------------------------------------------
// Record codec: hand-rolled little-endian binary (the workspace's serde is
// an offline derive shim with no wire format, so the WAL brings its own).

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

fn put_tid(out: &mut Vec<u8>, t: &Tid) {
    put_u64(out, t.seq);
    put_u64(out, t.block as u64);
    put_u32(out, t.client.0);
}

fn put_opt_tid(out: &mut Vec<u8>, t: &Option<Tid>) {
    match t {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_tid(out, t);
        }
    }
}

fn lmode_tag(lm: LMode) -> u8 {
    match lm {
        LMode::Unl => 0,
        LMode::L0 => 1,
        LMode::L1 => 2,
        LMode::Exp => 3,
    }
}

fn encode_request(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Read { stripe } => {
            out.push(0);
            put_u64(out, stripe.0);
        }
        Request::Swap { stripe, value, ntid } => {
            out.push(1);
            put_u64(out, stripe.0);
            put_bytes(out, value);
            put_tid(out, ntid);
        }
        Request::Add { stripe, delta, ntid, otid, epoch, scale } => {
            out.push(2);
            put_u64(out, stripe.0);
            put_bytes(out, delta);
            put_tid(out, ntid);
            put_opt_tid(out, otid);
            put_u64(out, epoch.0);
            match scale {
                None => out.push(0),
                Some((j, i)) => {
                    out.push(1);
                    put_u64(out, *j as u64);
                    put_u64(out, *i as u64);
                }
            }
        }
        Request::CheckTid { stripe, ntid, otid } => {
            out.push(3);
            put_u64(out, stripe.0);
            put_tid(out, ntid);
            put_tid(out, otid);
        }
        Request::TryLock { stripe, lm, caller } => {
            out.push(4);
            put_u64(out, stripe.0);
            out.push(lmode_tag(*lm));
            put_u32(out, caller.0);
        }
        Request::SetLock { stripe, lm, caller } => {
            out.push(5);
            put_u64(out, stripe.0);
            out.push(lmode_tag(*lm));
            put_u32(out, caller.0);
        }
        Request::GetState { stripe } => {
            out.push(6);
            put_u64(out, stripe.0);
        }
        Request::GetRecent { stripe, lm, caller } => {
            out.push(7);
            put_u64(out, stripe.0);
            out.push(lmode_tag(*lm));
            put_u32(out, caller.0);
        }
        Request::Reconstruct { stripe, cset, block } => {
            out.push(8);
            put_u64(out, stripe.0);
            put_u32(out, cset.len() as u32);
            for &i in cset {
                put_u64(out, i as u64);
            }
            put_bytes(out, block);
        }
        Request::Finalize { stripe, epoch } => {
            out.push(9);
            put_u64(out, stripe.0);
            put_u64(out, epoch.0);
        }
        Request::GcOld { stripe, tids } => {
            out.push(10);
            put_u64(out, stripe.0);
            put_u32(out, tids.len() as u32);
            for t in tids {
                put_tid(out, t);
            }
        }
        Request::GcRecent { stripe, tids } => {
            out.push(11);
            put_u64(out, stripe.0);
            put_u32(out, tids.len() as u32);
            for t in tids {
                put_tid(out, t);
            }
        }
        Request::Probe { stripe } => {
            out.push(12);
            put_u64(out, stripe.0);
        }
        Request::Batch(members) => {
            out.push(13);
            put_u32(out, members.len() as u32);
            for m in members {
                encode_request(out, m);
            }
        }
        Request::GetMeta { stripe } => {
            out.push(14);
            put_u64(out, stripe.0);
        }
    }
}

fn encode_record(rec: WalRecordRef<'_>) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecordRef::Apply(req) => {
            out.push(0);
            encode_request(&mut out, req);
        }
        WalRecordRef::ClientFailure(c) => {
            out.push(1);
            put_u32(&mut out, c.0);
        }
        WalRecordRef::FailRemap(g) => {
            out.push(2);
            out.push(g);
        }
    }
    out
}

/// Byte cursor for decoding; every getter returns `None` past the end.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(self.at..self.at + 4)?.try_into().ok()?);
        self.at += 4;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.bytes.get(self.at..self.at + 8)?.try_into().ok()?);
        self.at += 8;
        Some(v)
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        let v = self.bytes.get(self.at..self.at + len)?.to_vec();
        self.at += len;
        Some(v)
    }
    fn tid(&mut self) -> Option<Tid> {
        let seq = self.u64()?;
        let block = self.u64()? as usize;
        let client = ClientId(self.u32()?);
        Some(Tid::new(seq, block, client))
    }
    fn opt_tid(&mut self) -> Option<Option<Tid>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.tid()?)),
            _ => None,
        }
    }
    fn lmode(&mut self) -> Option<LMode> {
        Some(match self.u8()? {
            0 => LMode::Unl,
            1 => LMode::L0,
            2 => LMode::L1,
            3 => LMode::Exp,
            _ => return None,
        })
    }
}

fn decode_request(c: &mut Cursor<'_>) -> Option<Request> {
    Some(match c.u8()? {
        0 => Request::Read { stripe: StripeId(c.u64()?) },
        1 => Request::Swap {
            stripe: StripeId(c.u64()?),
            value: c.bytes()?,
            ntid: c.tid()?,
        },
        2 => Request::Add {
            stripe: StripeId(c.u64()?),
            delta: c.bytes()?,
            ntid: c.tid()?,
            otid: c.opt_tid()?,
            epoch: Epoch(c.u64()?),
            scale: match c.u8()? {
                0 => None,
                1 => Some((c.u64()? as usize, c.u64()? as usize)),
                _ => return None,
            },
        },
        3 => Request::CheckTid {
            stripe: StripeId(c.u64()?),
            ntid: c.tid()?,
            otid: c.tid()?,
        },
        4 => Request::TryLock {
            stripe: StripeId(c.u64()?),
            lm: c.lmode()?,
            caller: ClientId(c.u32()?),
        },
        5 => Request::SetLock {
            stripe: StripeId(c.u64()?),
            lm: c.lmode()?,
            caller: ClientId(c.u32()?),
        },
        6 => Request::GetState { stripe: StripeId(c.u64()?) },
        7 => Request::GetRecent {
            stripe: StripeId(c.u64()?),
            lm: c.lmode()?,
            caller: ClientId(c.u32()?),
        },
        8 => {
            let stripe = StripeId(c.u64()?);
            let n = c.u32()? as usize;
            let mut cset = Vec::with_capacity(n);
            for _ in 0..n {
                cset.push(c.u64()? as usize);
            }
            Request::Reconstruct { stripe, cset, block: c.bytes()? }
        }
        9 => Request::Finalize {
            stripe: StripeId(c.u64()?),
            epoch: Epoch(c.u64()?),
        },
        10 => {
            let stripe = StripeId(c.u64()?);
            let n = c.u32()? as usize;
            let mut tids = Vec::with_capacity(n);
            for _ in 0..n {
                tids.push(c.tid()?);
            }
            Request::GcOld { stripe, tids }
        }
        11 => {
            let stripe = StripeId(c.u64()?);
            let n = c.u32()? as usize;
            let mut tids = Vec::with_capacity(n);
            for _ in 0..n {
                tids.push(c.tid()?);
            }
            Request::GcRecent { stripe, tids }
        }
        12 => Request::Probe { stripe: StripeId(c.u64()?) },
        13 => {
            let n = c.u32()? as usize;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(decode_request(c)?);
            }
            Request::Batch(members)
        }
        14 => Request::GetMeta { stripe: StripeId(c.u64()?) },
        _ => return None,
    })
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor { bytes: payload, at: 0 };
    let rec = match c.u8()? {
        0 => WalRecord::Apply(decode_request(&mut c)?),
        1 => WalRecord::ClientFailure(ClientId(c.u32()?)),
        2 => WalRecord::FailRemap(c.u8()?),
        _ => return None,
    };
    // A trailing-garbage payload is not a record we wrote.
    (c.at == payload.len()).then_some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Read { stripe: StripeId(7) },
            Request::Swap {
                stripe: StripeId(1),
                value: vec![1, 2, 3],
                ntid: Tid::new(9, 2, ClientId(4)),
            },
            Request::Add {
                stripe: StripeId(2),
                delta: vec![0xFF; 4],
                ntid: Tid::new(3, 0, ClientId(1)),
                otid: Some(Tid::new(2, 0, ClientId(1))),
                epoch: Epoch(5),
                scale: Some((3, 1)),
            },
            Request::CheckTid {
                stripe: StripeId(3),
                ntid: Tid::new(1, 0, ClientId(1)),
                otid: Tid::new(0, 0, ClientId(2)),
            },
            Request::TryLock {
                stripe: StripeId(4),
                lm: LMode::L1,
                caller: ClientId(8),
            },
            Request::SetLock {
                stripe: StripeId(4),
                lm: LMode::Unl,
                caller: ClientId(8),
            },
            Request::GetState { stripe: StripeId(5) },
            Request::GetRecent {
                stripe: StripeId(5),
                lm: LMode::L0,
                caller: ClientId(2),
            },
            Request::Reconstruct {
                stripe: StripeId(6),
                cset: vec![0, 2, 3],
                block: vec![9; 8],
            },
            Request::Finalize { stripe: StripeId(6), epoch: Epoch(2) },
            Request::GcOld {
                stripe: StripeId(7),
                tids: vec![Tid::new(1, 0, ClientId(1))],
            },
            Request::GcRecent { stripe: StripeId(7), tids: vec![] },
            Request::Probe { stripe: StripeId(8) },
            Request::GetMeta { stripe: StripeId(9) },
            Request::Batch(vec![
                Request::Read { stripe: StripeId(0) },
                Request::Batch(vec![Request::Probe { stripe: StripeId(1) }]),
            ]),
        ]
    }

    #[test]
    fn codec_round_trips_every_request_shape() {
        for req in sample_requests() {
            let payload = encode_record(WalRecordRef::Apply(&req));
            assert_eq!(
                decode_record(&payload),
                Some(WalRecord::Apply(req.clone())),
                "round trip failed for {req:?}"
            );
        }
        let payload = encode_record(WalRecordRef::ClientFailure(ClientId(3)));
        assert_eq!(decode_record(&payload), Some(WalRecord::ClientFailure(ClientId(3))));
        let payload = encode_record(WalRecordRef::FailRemap(0xA5));
        assert_eq!(decode_record(&payload), Some(WalRecord::FailRemap(0xA5)));
    }

    #[test]
    fn decoder_rejects_truncation_and_trailing_garbage() {
        let req = Request::Swap {
            stripe: StripeId(1),
            value: vec![1, 2, 3],
            ntid: Tid::new(9, 2, ClientId(4)),
        };
        let payload = encode_record(WalRecordRef::Apply(&req));
        for cut in 0..payload.len() {
            assert_eq!(decode_record(&payload[..cut]), None, "accepted a {cut}-byte prefix");
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(decode_record(&padded), None, "accepted trailing garbage");
    }

    #[test]
    fn wal_appends_commit_and_replay() {
        let dir = scratch_dir("unit");
        let wal = WalBackend::create(dir.join("a.wal"));
        let reqs = sample_requests();
        for r in &reqs {
            wal.append(WalRecordRef::Apply(r));
        }
        wal.append(WalRecordRef::ClientFailure(ClientId(1)));
        assert!(wal.commit());
        assert_eq!(wal.stats().fsyncs, 1, "group commit = one fsync");
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len(), reqs.len() + 1);
        for (got, want) in replayed.iter().zip(&reqs) {
            assert_eq!(got, &WalRecord::Apply(want.clone()));
        }
        assert_eq!(replayed.last(), Some(&WalRecord::ClientFailure(ClientId(1))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_commit_costs_no_fsync() {
        let dir = scratch_dir("unit");
        let wal = WalBackend::create(dir.join("a.wal"));
        assert!(wal.commit());
        assert!(wal.commit());
        assert_eq!(wal.stats().fsyncs, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn power_failure_tears_at_the_armed_byte_and_replay_recovers_the_prefix() {
        let dir = scratch_dir("unit");
        let wal = WalBackend::create(dir.join("a.wal"));
        let swap = |s: u64| Request::Swap {
            stripe: StripeId(s),
            value: vec![s as u8; 16],
            ntid: Tid::new(s + 1, 0, ClientId(1)),
        };
        // Two durable records...
        wal.append(WalRecordRef::Apply(&swap(0)));
        wal.append(WalRecordRef::Apply(&swap(1)));
        assert!(wal.commit());
        let durable = wal.stats().durable_bytes;
        // ...then power dies 5 bytes into the third record's frame.
        wal.power_fail_at(durable + 5);
        wal.append(WalRecordRef::Apply(&swap(2)));
        assert!(!wal.commit(), "tripped commit must report failure");
        assert!(wal.tripped());
        // While off, nothing lands.
        wal.append(WalRecordRef::Apply(&swap(3)));
        assert!(!wal.commit());
        // Reboot: the torn third record is dropped, the first two replay.
        let replayed = wal.replay().unwrap();
        assert_eq!(
            replayed,
            vec![WalRecord::Apply(swap(0)), WalRecord::Apply(swap(1))]
        );
        assert!(!wal.tripped());
        assert_eq!(wal.stats().durable_bytes, durable, "torn tail truncated");
        // The log keeps working after recovery.
        wal.append(WalRecordRef::Apply(&swap(4)));
        assert!(wal.commit());
        assert_eq!(wal.replay().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_discards_everything_and_rearms() {
        let dir = scratch_dir("unit");
        let wal = WalBackend::create(dir.join("a.wal"));
        wal.append(WalRecordRef::FailRemap(1));
        assert!(wal.commit());
        wal.power_fail_at(2);
        wal.truncate();
        assert_eq!(wal.replay().unwrap(), vec![]);
        // The armed failure was cleared by the medium swap.
        wal.append(WalRecordRef::FailRemap(2));
        assert!(wal.commit());
        std::fs::remove_dir_all(&dir).ok();
    }
}
