//! The storage node: a map of per-stripe [`BlockState`] machines behind a
//! single request/reply interface, plus the node-level concerns the paper
//! describes — fail-remap (§3.5), the broadcast-mode coefficient multiply
//! (§3.11), deferred redundant-block flushing for sequential I/O (§3.11),
//! and the metadata accounting of §6.5.

use crate::state::{
    AddReply, BlockState, CheckTidReply, GetStateReply, ReadReply, SwapReply, TryLockReply,
};
use crate::types::{ClientId, Epoch, LMode, NodeId, OpMode, StripeId, Tid, TidEntry};
use ajx_erasure::CodeFamily;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Approximate fixed wire overhead of one RPC message (headers,
/// stripe/epoch/tid fields). Used only for bandwidth *accounting* (Fig. 1);
/// the in-process transport never serializes.
pub const MSG_HEADER_BYTES: usize = 32;

/// A request to a storage node. One variant per remote procedure in
/// Figs. 4-7.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// `read()` on a stripe-block (Fig. 4).
    Read {
        /// Target stripe.
        stripe: StripeId,
    },
    /// `swap(v, ntid)` (Fig. 5).
    Swap {
        /// Target stripe.
        stripe: StripeId,
        /// New block content `v`.
        value: Vec<u8>,
        /// This write's identifier.
        ntid: Tid,
    },
    /// `add(v, ntid, otid, e)` (Fig. 5). When `scale` is set, the node
    /// multiplies the payload by its erasure coefficient before adding —
    /// the broadcast optimization of §3.11 where "the storage nodes, not
    /// the client, must do the multiplication by α_ji".
    Add {
        /// Target stripe.
        stripe: StripeId,
        /// The increment (already scaled by the client unless `scale` set).
        delta: Vec<u8>,
        /// This write's identifier.
        ntid: Tid,
        /// Identifier of the write this one is ordered behind.
        otid: Option<Tid>,
        /// The epoch the client observed at `swap` time.
        epoch: Epoch,
        /// `Some((j, i))`: multiply by `α_ji` node-side (broadcast mode).
        scale: Option<(usize, usize)>,
    },
    /// `checktid(ntid, otid)` (Fig. 5).
    CheckTid {
        /// Target stripe.
        stripe: StripeId,
        /// The blocked write.
        ntid: Tid,
        /// Its predecessor.
        otid: Tid,
    },
    /// `trylock(lm)` (Fig. 6).
    TryLock {
        /// Target stripe.
        stripe: StripeId,
        /// Desired lock mode.
        lm: LMode,
        /// The recovering client (the node's `lid`).
        caller: ClientId,
    },
    /// `setlock(lm)` (Fig. 6).
    SetLock {
        /// Target stripe.
        stripe: StripeId,
        /// New lock mode.
        lm: LMode,
        /// The recovering client.
        caller: ClientId,
    },
    /// `get_state()` (Fig. 6).
    GetState {
        /// Target stripe.
        stripe: StripeId,
    },
    /// `get_state()` without the block payload: the metadata-only probe the
    /// byte-accounted rebuild engine uses to classify every node's stripe
    /// state before fetching blocks from only the repair set. Answered with
    /// a [`Reply::GetState`] whose `block` is `None`.
    GetMeta {
        /// Target stripe.
        stripe: StripeId,
    },
    /// `getrecent(lm)` (Fig. 6).
    GetRecent {
        /// Target stripe.
        stripe: StripeId,
        /// Lock mode to set atomically with the read.
        lm: LMode,
        /// The recovering client.
        caller: ClientId,
    },
    /// `reconstruct(set, blk)` (Fig. 6).
    Reconstruct {
        /// Target stripe.
        stripe: StripeId,
        /// The consistent set used for decoding.
        cset: Vec<usize>,
        /// Recovered block content for this node.
        block: Vec<u8>,
    },
    /// `finalize(ep)` (Fig. 6).
    Finalize {
        /// Target stripe.
        stripe: StripeId,
        /// The new epoch (max observed + 1).
        epoch: Epoch,
    },
    /// `gc_old(list)` (Fig. 7).
    GcOld {
        /// Target stripe.
        stripe: StripeId,
        /// Tids to drop from `oldlist`.
        tids: Vec<Tid>,
    },
    /// `gc_recent(list)` (Fig. 7).
    GcRecent {
        /// Target stripe.
        stripe: StripeId,
        /// Tids to move from `recentlist` to `oldlist`.
        tids: Vec<Tid>,
    },
    /// Monitoring probe (§3.10): age of oldest pending tid + opmode.
    Probe {
        /// Target stripe.
        stripe: StripeId,
    },
    /// Several operations coalesced into one message (§3.11 batching): the
    /// node applies them in order under a single lock acquisition and
    /// answers with one [`Reply::Batch`] of the same length. The transport
    /// treats the whole batch as *one* exchange — one round trip, one fault
    /// decision — which is what makes m same-node operations cost one round
    /// instead of m.
    Batch(Vec<Request>),
}

impl Request {
    /// The stripe this request addresses.
    pub fn stripe(&self) -> StripeId {
        match self {
            Request::Read { stripe }
            | Request::Swap { stripe, .. }
            | Request::Add { stripe, .. }
            | Request::CheckTid { stripe, .. }
            | Request::TryLock { stripe, .. }
            | Request::SetLock { stripe, .. }
            | Request::GetState { stripe }
            | Request::GetMeta { stripe }
            | Request::GetRecent { stripe, .. }
            | Request::Reconstruct { stripe, .. }
            | Request::Finalize { stripe, .. }
            | Request::GcOld { stripe, .. }
            | Request::GcRecent { stripe, .. }
            | Request::Probe { stripe } => *stripe,
            // A batch may span stripes; report the first operation's (used
            // only for logging/accounting — dispatch unpacks the batch).
            Request::Batch(reqs) => reqs.first().map_or(StripeId(0), Request::stripe),
        }
    }

    /// Whether re-sending this request after an indeterminate failure
    /// (timeout / lost reply) is safe even if the first copy executed.
    ///
    /// `swap` returns the *previous* content and `add` XORs the delta in —
    /// executing either twice corrupts the write, so the retry layer must
    /// surface their timeouts instead of re-sending. Everything else is a
    /// read, an idempotent state transition (`setlock`, `finalize`,
    /// `reconstruct`, the GC moves), or — given re-entrant locking — a
    /// `trylock` by the same caller.
    pub fn is_idempotent(&self) -> bool {
        // Exhaustive on purpose (no `_` arm): a new Request variant must
        // be classified here or the build breaks — the ajx-lint
        // codec-exhaustive rule additionally requires every variant name
        // to appear in this body.
        match self {
            Request::Swap { .. } | Request::Add { .. } => false,
            // A batch may be re-sent only if every member may.
            Request::Batch(reqs) => reqs.iter().all(Request::is_idempotent),
            Request::Read { .. }
            | Request::CheckTid { .. }
            | Request::TryLock { .. }
            | Request::SetLock { .. }
            | Request::GetState { .. }
            | Request::GetMeta { .. }
            | Request::GetRecent { .. }
            | Request::Reconstruct { .. }
            | Request::Finalize { .. }
            | Request::GcOld { .. }
            | Request::GcRecent { .. }
            | Request::Probe { .. } => true,
        }
    }

    /// Payload bytes carried by this request (block-sized fields only),
    /// plus the fixed header. Used for the Fig. 1 bandwidth columns and the
    /// simulator's bandwidth model.
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Request::Swap { value, .. } => value.len(),
            Request::Add { delta, .. } => delta.len(),
            Request::Reconstruct { block, .. } => block.len(),
            // One shared header for the whole batch: the coalescing saves
            // (m − 1) headers of fixed overhead on the wire.
            Request::Batch(reqs) => {
                return MSG_HEADER_BYTES
                    + reqs
                        .iter()
                        .map(|r| r.wire_bytes() - MSG_HEADER_BYTES)
                        .sum::<usize>()
            }
            // Header-only requests, named one by one so a new payload-
            // carrying variant cannot silently fall into the zero bucket.
            Request::Read { .. }
            | Request::CheckTid { .. }
            | Request::TryLock { .. }
            | Request::SetLock { .. }
            | Request::GetState { .. }
            | Request::GetMeta { .. }
            | Request::GetRecent { .. }
            | Request::Finalize { .. }
            | Request::GcOld { .. }
            | Request::GcRecent { .. }
            | Request::Probe { .. } => 0,
        };
        MSG_HEADER_BYTES + payload
    }

    /// Block-content bytes carried by this request — the share of
    /// [`Request::wire_bytes`] that is actual stripe data (`swap` values,
    /// `add` deltas, reconstructed blocks), with headers and metadata
    /// excluded. This is the quantity repair-bandwidth optimization
    /// shrinks, so the transport counts it separately from total bytes.
    pub fn payload_bytes(&self) -> usize {
        // Exhaustive like `wire_bytes`: a new payload-carrying variant
        // must be named here (the ajx-lint codec rule enforces it).
        match self {
            Request::Swap { value, .. } => value.len(),
            Request::Add { delta, .. } => delta.len(),
            Request::Reconstruct { block, .. } => block.len(),
            Request::Batch(reqs) => reqs.iter().map(Request::payload_bytes).sum(),
            Request::Read { .. }
            | Request::CheckTid { .. }
            | Request::TryLock { .. }
            | Request::SetLock { .. }
            | Request::GetState { .. }
            | Request::GetMeta { .. }
            | Request::GetRecent { .. }
            | Request::Finalize { .. }
            | Request::GcOld { .. }
            | Request::GcRecent { .. }
            | Request::Probe { .. } => 0,
        }
    }
}

/// A reply from a storage node; variants mirror [`Request`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reply {
    /// Reply to [`Request::Read`].
    Read(ReadReply),
    /// Reply to [`Request::Swap`].
    Swap(SwapReply),
    /// Reply to [`Request::Add`].
    Add(AddReply),
    /// Reply to [`Request::CheckTid`].
    CheckTid(CheckTidReply),
    /// Reply to [`Request::TryLock`].
    TryLock(TryLockReply),
    /// Reply to [`Request::SetLock`] / [`Request::Finalize`] (no payload).
    Ack,
    /// Reply to [`Request::GetState`].
    GetState(GetStateReply),
    /// Reply to [`Request::GetRecent`].
    GetRecent(Vec<TidEntry>),
    /// Reply to [`Request::Reconstruct`]: the node's pre-bump epoch.
    Reconstruct(Epoch),
    /// Reply to [`Request::GcOld`] / [`Request::GcRecent`]: `false` = busy.
    Gc(bool),
    /// Reply to [`Request::Probe`].
    Probe {
        /// Operational mode (INIT signals a remapped, unrecovered node).
        opmode: OpMode,
        /// Lock mode — lets a prober distinguish "recovered and released"
        /// from "recovery still holds the stripe".
        lmode: LMode,
        /// Age (in node ticks) of the oldest pending write tid, if any.
        oldest_pending_age: Option<u64>,
    },
    /// The node rejected a scaled add because it has no code configured.
    NoCode,
    /// Replies to a [`Request::Batch`], one per member, in request order.
    Batch(Vec<Reply>),
}

impl Reply {
    /// Payload bytes carried by this reply, plus the fixed header.
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Reply::Read(r) => r.block.as_ref().map_or(0, Vec::len),
            Reply::Swap(r) => r.block.as_ref().map_or(0, Vec::len),
            Reply::GetState(r) => {
                r.block.as_ref().map_or(0, Vec::len) + 24 * (r.recentlist.len() + r.oldlist.len())
            }
            Reply::GetRecent(l) => 24 * l.len(),
            // Mirrors `Request::Batch`: one shared header for the batch.
            Reply::Batch(replies) => {
                return MSG_HEADER_BYTES
                    + replies
                        .iter()
                        .map(|r| r.wire_bytes() - MSG_HEADER_BYTES)
                        .sum::<usize>()
            }
            // Header-only replies, named one by one for the same reason as
            // `Request::wire_bytes`.
            Reply::Add(_)
            | Reply::CheckTid(_)
            | Reply::TryLock(_)
            | Reply::Ack
            | Reply::Reconstruct(_)
            | Reply::Gc(_)
            | Reply::Probe { .. }
            | Reply::NoCode => 0,
        };
        MSG_HEADER_BYTES + payload
    }

    /// Block-content bytes carried by this reply (read/swap/get_state
    /// block payloads), headers and tid-list metadata excluded — the
    /// reply-side counterpart of [`Request::payload_bytes`].
    pub fn payload_bytes(&self) -> usize {
        match self {
            Reply::Read(r) => r.block.as_ref().map_or(0, Vec::len),
            Reply::Swap(r) => r.block.as_ref().map_or(0, Vec::len),
            Reply::GetState(r) => r.block.as_ref().map_or(0, Vec::len),
            Reply::Batch(replies) => replies.iter().map(Reply::payload_bytes).sum(),
            Reply::Add(_)
            | Reply::CheckTid(_)
            | Reply::TryLock(_)
            | Reply::Ack
            | Reply::GetRecent(_)
            | Reply::Reconstruct(_)
            | Reply::Gc(_)
            | Reply::Probe { .. }
            | Reply::NoCode => 0,
        }
    }
}

/// How the node persists redundant-block updates to its backing medium
/// (§3.11's sequential-write optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Every mutation is written through to the medium immediately.
    #[default]
    WriteThrough,
    /// Mutations mark the stripe-block dirty; the media write happens when
    /// the node learns the sequential pass has moved on (a write arrives
    /// for a different stripe) or on [`StorageNode::flush_all`].
    Deferred,
}

/// A thin storage node hosting one block of every stripe it participates in.
///
/// The node is a *pure state machine*: [`StorageNode::handle`] maps a
/// [`Request`] to a [`Reply`] with no side channels, which is what lets the
/// paper's protocol treat servers as passive and push all orchestration to
/// clients.
///
/// # Example
///
/// ```
/// use ajx_storage::{NodeId, Request, Reply, StorageNode, StripeId, Tid, ClientId};
///
/// let mut node = StorageNode::new(NodeId(0), 16);
/// let tid = Tid::new(1, 0, ClientId(1));
/// let reply = node.handle(Request::Swap {
///     stripe: StripeId(0),
///     value: vec![7; 16],
///     ntid: tid,
/// });
/// match reply {
///     Reply::Swap(r) => assert_eq!(r.block, Some(vec![0; 16])),
///     other => panic!("unexpected reply {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct StorageNode {
    id: NodeId,
    block_size: usize,
    blocks: HashMap<StripeId, BlockState>,
    code: Option<CodeFamily>,
    flush_policy: FlushPolicy,
    dirty: Option<StripeId>,
    media_writes: u64,
    ops_handled: u64,
    lock_ops: u64,
    /// `Some(garbage)` after a fail-remap: stripes touched for the first
    /// time materialize as INIT garbage, because the *whole replacement
    /// node* starts uninitialized (§3.5), not just previously-seen stripes.
    remap_garbage: Option<u8>,
}

impl StorageNode {
    /// Creates a node with the given identity and block size; blocks start
    /// zeroed in normal mode.
    pub fn new(id: NodeId, block_size: usize) -> Self {
        StorageNode {
            id,
            block_size,
            blocks: HashMap::new(),
            code: None,
            flush_policy: FlushPolicy::WriteThrough,
            dirty: None,
            media_writes: 0,
            ops_handled: 0,
            lock_ops: 0,
            remap_garbage: None,
        }
    }

    /// Equips the node with the erasure code so it can perform the
    /// broadcast-mode coefficient multiply (§3.11).
    pub fn with_code(mut self, code: CodeFamily) -> Self {
        self.code = Some(code);
        self
    }

    /// Selects the media flush policy (§3.11 ablation).
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total requests handled (instrumentation).
    pub fn ops_handled(&self) -> u64 {
        self.ops_handled
    }

    /// Lock-protocol requests handled (`trylock` / `setlock` /
    /// `getrecent`) — instrumentation for asserting that the degraded-read
    /// fast path really takes no locks.
    pub fn lock_ops(&self) -> u64 {
        self.lock_ops
    }

    /// Media writes performed under the current [`FlushPolicy`]
    /// (instrumentation for the §3.11 sequential-write ablation).
    pub fn media_writes(&self) -> u64 {
        self.media_writes
    }

    /// Handles a request, advancing the target stripe-block state machine.
    ///
    /// A [`Request::Batch`] is unpacked here and applied member-by-member in
    /// order; because the caller already holds the node (the transport
    /// worker locks the node once per `handle` call), the whole batch
    /// executes under a single lock acquisition with no interleaved foreign
    /// requests.
    pub fn handle(&mut self, req: Request) -> Reply {
        match req {
            Request::Batch(reqs) => {
                Reply::Batch(reqs.into_iter().map(|r| self.handle(r)).collect())
            }
            other => self.handle_one(other),
        }
    }

    /// Applies one non-batch request. `ops_handled` counts individual
    /// operations, so a batch of m increments it m times.
    fn handle_one(&mut self, req: Request) -> Reply {
        self.ops_handled += 1;
        if matches!(
            req,
            Request::TryLock { .. } | Request::SetLock { .. } | Request::GetRecent { .. }
        ) {
            self.lock_ops += 1;
        }
        let stripe = req.stripe();
        let mutates = matches!(
            req,
            Request::Swap { .. } | Request::Add { .. } | Request::Reconstruct { .. }
        );
        let block_size = self.block_size;
        // Resolve the scaled delta before borrowing the block state.
        let req = match req {
            Request::Add {
                stripe,
                mut delta,
                ntid,
                otid,
                epoch,
                scale: Some((j, i)),
            } => match &self.code {
                None => return Reply::NoCode,
                Some(code) => {
                    // The delta arrived owned; scale it where it sits
                    // instead of copying it into a fresh block.
                    code.scale_in_place(j, i, &mut delta);
                    Request::Add {
                        stripe,
                        delta,
                        ntid,
                        otid,
                        epoch,
                        scale: None,
                    }
                }
            },
            other => other,
        };

        let remap_garbage = self.remap_garbage;
        let state = self.blocks.entry(stripe).or_insert_with(|| match remap_garbage {
            Some(g) => BlockState::after_fail_remap(vec![g; block_size]),
            None => BlockState::new(block_size),
        });

        let reply = match req {
            Request::Read { .. } => Reply::Read(state.read()),
            Request::Swap { value, ntid, .. } => Reply::Swap(state.swap(value, ntid)),
            Request::Add {
                delta, ntid, otid, epoch, ..
            } => Reply::Add(state.add(&delta, ntid, otid, epoch)),
            Request::CheckTid { ntid, otid, .. } => Reply::CheckTid(state.checktid(ntid, otid)),
            Request::TryLock { lm, caller, .. } => Reply::TryLock(state.trylock(lm, caller)),
            Request::SetLock { lm, caller, .. } => {
                state.setlock(lm, caller);
                Reply::Ack
            }
            Request::GetState { .. } => Reply::GetState(state.get_state()),
            Request::GetMeta { .. } => {
                let mut meta = state.get_state();
                meta.block = None;
                Reply::GetState(meta)
            }
            Request::GetRecent { lm, caller, .. } => Reply::GetRecent(state.getrecent(lm, caller)),
            Request::Reconstruct { cset, block, .. } => {
                Reply::Reconstruct(state.reconstruct(cset, block))
            }
            Request::Finalize { epoch, .. } => {
                state.finalize(epoch);
                Reply::Ack
            }
            Request::GcOld { tids, .. } => Reply::Gc(state.gc_old(&tids)),
            Request::GcRecent { tids, .. } => Reply::Gc(state.gc_recent(&tids)),
            Request::Probe { .. } => {
                let (opmode, lmode, oldest_pending_age) = state.probe();
                Reply::Probe {
                    opmode,
                    lmode,
                    oldest_pending_age,
                }
            }
            // LINT-ALLOW(panic-free: handle() routes every Batch — nested
            // ones included — through its own arm, and handle_one is
            // private to this file; this arm cannot be reached by input)
            Request::Batch(_) => unreachable!("batches are unpacked by handle()"),
        };

        if mutates && !matches!(reply, Reply::NoCode) {
            self.account_media_write(stripe);
        }
        reply
    }

    fn account_media_write(&mut self, stripe: StripeId) {
        match self.flush_policy {
            FlushPolicy::WriteThrough => self.media_writes += 1,
            FlushPolicy::Deferred => match self.dirty {
                Some(d) if d == stripe => {} // coalesced with pending flush
                Some(_) => {
                    // Sequential pass moved on: flush the previous block.
                    self.media_writes += 1;
                    self.dirty = Some(stripe);
                }
                None => self.dirty = Some(stripe),
            },
        }
    }

    /// Flushes any deferred dirty block to the medium.
    pub fn flush_all(&mut self) {
        if self.dirty.take().is_some() {
            self.media_writes += 1;
        }
    }

    /// Simulates a crash + remap (§3.5): every stripe-block is replaced by
    /// INIT state holding the supplied garbage pattern. The node keeps its
    /// *logical* identity; the directory layer models the physical swap.
    pub fn fail_remap(&mut self, garbage_byte: u8) {
        self.remap_garbage = Some(garbage_byte);
        let stripes: Vec<StripeId> = self.blocks.keys().copied().collect();
        for s in stripes {
            self.blocks
                .insert(s, BlockState::after_fail_remap(vec![garbage_byte; self.block_size]));
        }
        self.dirty = None;
    }

    /// Notifies the node that `client` crashed, expiring any recovery locks
    /// it holds (Fig. 6 line 34). Returns how many locks expired.
    pub fn on_client_failure(&mut self, client: ClientId) -> usize {
        self.blocks
            .values_mut()
            .map(|b| usize::from(b.expire_lock_if_held_by(client)))
            .sum()
    }

    /// Resets the node to power-on state: blocks, dirty marker, remap
    /// garbage, and counters all cleared; identity, code, and flush policy
    /// kept. WAL replay rebuilds state on top of this (restart-with-disk).
    pub(crate) fn reset(&mut self) {
        self.blocks.clear();
        self.dirty = None;
        self.media_writes = 0;
        self.ops_handled = 0;
        self.lock_ops = 0;
        self.remap_garbage = None;
    }

    /// Direct access to a stripe-block's state (tests and monitoring only).
    pub fn block_state(&self, stripe: StripeId) -> Option<&BlockState> {
        self.blocks.get(&stripe)
    }

    /// Mutable access for fault-injection in tests.
    pub fn block_state_mut(&mut self, stripe: StripeId) -> Option<&mut BlockState> {
        self.blocks.get_mut(&stripe)
    }

    /// Stripes this node currently holds state for.
    pub fn stripes(&self) -> impl Iterator<Item = StripeId> + '_ {
        self.blocks.keys().copied()
    }

    /// Total protocol metadata bytes across all stripe-blocks (§6.5).
    pub fn metadata_bytes(&self) -> usize {
        self.blocks.values().map(BlockState::metadata_bytes).sum()
    }

    /// Number of stripe-blocks materialized at this node.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AddStatus;

    fn tid(seq: u64) -> Tid {
        Tid::new(seq, 0, ClientId(1))
    }

    #[test]
    fn lazy_block_materialization() {
        let mut node = StorageNode::new(NodeId(0), 8);
        assert_eq!(node.resident_blocks(), 0);
        let r = node.handle(Request::Read { stripe: StripeId(5) });
        assert!(matches!(r, Reply::Read(ReadReply { block: Some(b), .. }) if b == vec![0; 8]));
        assert_eq!(node.resident_blocks(), 1);
    }

    #[test]
    fn stripes_are_independent() {
        let mut node = StorageNode::new(NodeId(0), 2);
        node.handle(Request::TryLock {
            stripe: StripeId(1),
            lm: LMode::L1,
            caller: ClientId(7),
        });
        // Stripe 2 is unaffected by stripe 1's lock.
        let r = node.handle(Request::Swap {
            stripe: StripeId(2),
            value: vec![1, 1],
            ntid: tid(1),
        });
        assert!(matches!(r, Reply::Swap(SwapReply { block: Some(_), .. })));
        let r = node.handle(Request::Swap {
            stripe: StripeId(1),
            value: vec![1, 1],
            ntid: tid(2),
        });
        assert!(matches!(r, Reply::Swap(SwapReply { block: None, .. })));
    }

    #[test]
    fn scaled_add_requires_code() {
        let mut node = StorageNode::new(NodeId(0), 4);
        let req = Request::Add {
            stripe: StripeId(0),
            delta: vec![1; 4],
            ntid: tid(1),
            otid: None,
            epoch: Epoch(0),
            scale: Some((0, 0)),
        };
        assert_eq!(node.handle(req.clone()), Reply::NoCode);

        let code = CodeFamily::rs(2, 4).unwrap();
        let expected = code.scale_broadcast_delta(0, 0, &[1; 4]);
        let mut node = StorageNode::new(NodeId(0), 4).with_code(code);
        assert!(matches!(
            node.handle(req),
            Reply::Add(AddReply { status: AddStatus::Ok, .. })
        ));
        assert_eq!(
            node.block_state(StripeId(0)).unwrap().raw_block(),
            &expected[..]
        );
    }

    #[test]
    fn fail_remap_resets_all_stripes_to_init() {
        let mut node = StorageNode::new(NodeId(0), 2);
        for s in 0..3 {
            node.handle(Request::Swap {
                stripe: StripeId(s),
                value: vec![s as u8; 2],
                ntid: tid(s),
            });
        }
        node.fail_remap(0xEE);
        for s in 0..3 {
            let st = node.block_state(StripeId(s)).unwrap();
            assert_eq!(st.opmode(), OpMode::Init);
            assert_eq!(st.raw_block(), &[0xEE, 0xEE]);
        }
        // Reads now fail, which is what triggers client-side recovery.
        let r = node.handle(Request::Read { stripe: StripeId(0) });
        assert!(matches!(r, Reply::Read(ReadReply { block: None, .. })));
    }

    #[test]
    fn client_failure_expires_only_their_locks() {
        let mut node = StorageNode::new(NodeId(0), 2);
        node.handle(Request::TryLock {
            stripe: StripeId(0),
            lm: LMode::L1,
            caller: ClientId(1),
        });
        node.handle(Request::TryLock {
            stripe: StripeId(1),
            lm: LMode::L0,
            caller: ClientId(2),
        });
        assert_eq!(node.on_client_failure(ClientId(1)), 1);
        assert_eq!(
            node.block_state(StripeId(0)).unwrap().lmode(),
            LMode::Exp
        );
        assert_eq!(node.block_state(StripeId(1)).unwrap().lmode(), LMode::L0);
    }

    #[test]
    fn write_through_counts_every_mutation() {
        let mut node = StorageNode::new(NodeId(0), 2);
        for i in 0..5 {
            node.handle(Request::Add {
                stripe: StripeId(0),
                delta: vec![1, 1],
                ntid: tid(i),
                otid: None,
                epoch: Epoch(0),
                scale: None,
            });
        }
        assert_eq!(node.media_writes(), 5);
    }

    #[test]
    fn deferred_flush_coalesces_sequential_updates() {
        // §3.11: a redundant block updated by k sequential writes should hit
        // the medium once, not k times.
        let mut node =
            StorageNode::new(NodeId(0), 2).with_flush_policy(FlushPolicy::Deferred);
        for i in 0..4 {
            node.handle(Request::Add {
                stripe: StripeId(0),
                delta: vec![1, 1],
                ntid: tid(i),
                otid: None,
                epoch: Epoch(0),
                scale: None,
            });
        }
        assert_eq!(node.media_writes(), 0, "still buffered");
        // Sequential pass moves to the next stripe: previous block flushes.
        node.handle(Request::Add {
            stripe: StripeId(1),
            delta: vec![1, 1],
            ntid: tid(9),
            otid: None,
            epoch: Epoch(0),
            scale: None,
        });
        assert_eq!(node.media_writes(), 1);
        node.flush_all();
        assert_eq!(node.media_writes(), 2);
        node.flush_all();
        assert_eq!(node.media_writes(), 2, "flush is idempotent");
    }

    #[test]
    fn wire_byte_accounting_counts_payloads() {
        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![0; 1024],
            ntid: tid(1),
        };
        assert_eq!(swap.wire_bytes(), MSG_HEADER_BYTES + 1024);
        assert_eq!(
            Request::Read { stripe: StripeId(0) }.wire_bytes(),
            MSG_HEADER_BYTES
        );
        let reply = Reply::Read(ReadReply {
            block: Some(vec![0; 512]),
            lmode: LMode::Unl,
        });
        assert_eq!(reply.wire_bytes(), MSG_HEADER_BYTES + 512);
    }

    #[test]
    fn get_meta_strips_the_block_but_keeps_metadata() {
        let mut node = StorageNode::new(NodeId(0), 4);
        node.handle(Request::Swap {
            stripe: StripeId(0),
            value: vec![9; 4],
            ntid: tid(1),
        });
        let full = node.handle(Request::GetState { stripe: StripeId(0) });
        let meta = node.handle(Request::GetMeta { stripe: StripeId(0) });
        let (Reply::GetState(full), Reply::GetState(meta)) = (full, meta) else {
            panic!("expected Reply::GetState for both");
        };
        assert_eq!(full.block, Some(vec![9; 4]));
        assert_eq!(meta.block, None, "meta probe carries no payload");
        assert_eq!(meta.recentlist, full.recentlist);
        assert_eq!(meta.oldlist, full.oldlist);
        assert_eq!(meta.opmode, full.opmode);
        assert_eq!(meta.epoch, full.epoch);
        // The wire savings the rebuild engine banks on.
        let meta_req = Request::GetMeta { stripe: StripeId(0) };
        assert_eq!(meta_req.wire_bytes(), MSG_HEADER_BYTES);
        assert!(meta_req.is_idempotent());
        assert!(Reply::GetState(meta).payload_bytes() == 0);
        assert_eq!(Reply::GetState(full).payload_bytes(), 4);
    }

    #[test]
    fn payload_bytes_count_block_content_only() {
        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![0; 100],
            ntid: tid(1),
        };
        assert_eq!(swap.payload_bytes(), 100);
        assert_eq!(Request::Read { stripe: StripeId(0) }.payload_bytes(), 0);
        let batch = Request::Batch(vec![
            swap,
            Request::Reconstruct {
                stripe: StripeId(1),
                cset: vec![0, 1],
                block: vec![0; 50],
            },
            Request::GetMeta { stripe: StripeId(2) },
        ]);
        assert_eq!(batch.payload_bytes(), 150);
        // Reply side: blocks count, tid-list metadata does not.
        let gs = Reply::GetState(GetStateReply {
            opmode: OpMode::Norm,
            recons_set: vec![],
            oldlist: vec![TidEntry { tid: tid(1), time: 0 }],
            recentlist: vec![TidEntry { tid: tid(2), time: 0 }],
            block: Some(vec![0; 64]),
            epoch: Epoch(0),
        });
        assert_eq!(gs.payload_bytes(), 64);
        assert!(gs.wire_bytes() > gs.payload_bytes(), "headers excluded");
        assert_eq!(Reply::Ack.payload_bytes(), 0);
    }

    #[test]
    fn batch_applies_members_in_order_under_one_call() {
        let mut node = StorageNode::new(NodeId(0), 4);
        // swap then read of the same stripe, plus a read of another stripe,
        // all in one message: the read must observe the swap's effect.
        let reply = node.handle(Request::Batch(vec![
            Request::Swap {
                stripe: StripeId(0),
                value: vec![7; 4],
                ntid: tid(1),
            },
            Request::Read { stripe: StripeId(0) },
            Request::Read { stripe: StripeId(3) },
        ]));
        let Reply::Batch(replies) = reply else {
            panic!("expected Reply::Batch");
        };
        assert_eq!(replies.len(), 3);
        assert!(matches!(&replies[0], Reply::Swap(s) if s.block == Some(vec![0; 4])));
        assert!(matches!(&replies[1], Reply::Read(r) if r.block == Some(vec![7; 4])));
        assert!(matches!(&replies[2], Reply::Read(r) if r.block == Some(vec![0; 4])));
        // ops_handled counts individual operations, not messages.
        assert_eq!(node.ops_handled(), 3);
    }

    #[test]
    fn batched_get_state_spans_stripes_and_takes_no_locks() {
        // The rebuild engine's phase 2: one message probing many stripes'
        // states. The replies must be per-stripe and the whole batch must
        // leave the lock counter untouched.
        let mut node = StorageNode::new(NodeId(0), 4);
        node.handle(Request::Swap {
            stripe: StripeId(1),
            value: vec![9; 4],
            ntid: tid(1),
        });
        let reply = node.handle(Request::Batch(
            (0..3).map(|s| Request::GetState { stripe: StripeId(s) }).collect(),
        ));
        let Reply::Batch(replies) = reply else {
            panic!("expected Reply::Batch");
        };
        assert_eq!(replies.len(), 3);
        let Reply::GetState(s1) = &replies[1] else {
            panic!("expected Reply::GetState");
        };
        assert_eq!(s1.block.as_deref(), Some(&[9u8; 4][..]));
        assert_eq!(s1.recentlist.len(), 1);
        assert_eq!(node.lock_ops(), 0, "get_state is not a lock operation");
        // Lock-protocol requests do tick the counter, batched or not.
        node.handle(Request::Batch(vec![
            Request::TryLock {
                stripe: StripeId(0),
                lm: LMode::L1,
                caller: ClientId(3),
            },
            Request::SetLock {
                stripe: StripeId(0),
                lm: LMode::Unl,
                caller: ClientId(3),
            },
        ]));
        node.handle(Request::GetRecent {
            stripe: StripeId(1),
            lm: LMode::L1,
            caller: ClientId(3),
        });
        assert_eq!(node.lock_ops(), 3);
    }

    #[test]
    fn batch_wire_bytes_share_one_header() {
        let members = vec![
            Request::Swap {
                stripe: StripeId(0),
                value: vec![0; 100],
                ntid: tid(1),
            },
            Request::Read { stripe: StripeId(0) },
            Request::Add {
                stripe: StripeId(1),
                delta: vec![0; 100],
                ntid: tid(2),
                otid: None,
                epoch: Epoch(0),
                scale: None,
            },
        ];
        let batched = Request::Batch(members.clone()).wire_bytes();
        let separate: usize = members.iter().map(Request::wire_bytes).sum();
        assert_eq!(batched, MSG_HEADER_BYTES + 200);
        assert_eq!(separate - batched, 2 * MSG_HEADER_BYTES, "two headers saved");
        // Reply side mirrors the request side.
        let r = Reply::Batch(vec![
            Reply::Read(ReadReply {
                block: Some(vec![0; 64]),
                lmode: LMode::Unl,
            }),
            Reply::Ack,
        ]);
        assert_eq!(r.wire_bytes(), MSG_HEADER_BYTES + 64);
    }

    #[test]
    fn batch_idempotence_is_the_conjunction_of_members() {
        let read = Request::Read { stripe: StripeId(0) };
        let swap = Request::Swap {
            stripe: StripeId(0),
            value: vec![0; 4],
            ntid: tid(1),
        };
        assert!(Request::Batch(vec![read.clone(), read.clone()]).is_idempotent());
        assert!(!Request::Batch(vec![read.clone(), swap]).is_idempotent());
        assert!(Request::Batch(vec![]).is_idempotent());
        // Empty batch still has a defined stripe for accounting.
        assert_eq!(Request::Batch(vec![]).stripe(), StripeId(0));
        assert_eq!(
            Request::Batch(vec![Request::Read { stripe: StripeId(9) }, read]).stripe(),
            StripeId(9)
        );
    }

    #[test]
    fn probe_reports_pending_writes_and_opmode() {
        let mut node = StorageNode::new(NodeId(0), 2);
        node.handle(Request::Add {
            stripe: StripeId(0),
            delta: vec![1, 1],
            ntid: tid(1),
            otid: None,
            epoch: Epoch(0),
            scale: None,
        });
        match node.handle(Request::Probe { stripe: StripeId(0) }) {
            Reply::Probe {
                opmode,
                lmode,
                oldest_pending_age,
            } => {
                assert_eq!(opmode, OpMode::Norm);
                assert_eq!(lmode, LMode::Unl);
                assert!(oldest_pending_age.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
