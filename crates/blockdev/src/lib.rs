//! A byte-addressable virtual disk on top of the AJX erasure-coded block
//! store.
//!
//! The paper's §2: "Target applications include operating systems,
//! databases, distributed file servers, or other higher-level services
//! that require block storage. These applications access data through a
//! block interface ... we prefer that all peculiarities of erasure codes
//! be hidden from applications." This crate is that hiding layer: a
//! [`VirtualDisk`] exposes plain `read(offset, len)` / `write(offset,
//! data)` over bytes, while underneath an `ajx-core` client maps every
//! access onto erasure-coded logical blocks (with read-modify-write at
//! unaligned edges) — and inherits the protocol's fault tolerance
//! transparently.
//!
//! # Example
//!
//! ```
//! use ajx_blockdev::VirtualDisk;
//! use ajx_core::{Client, ProtocolConfig};
//! use ajx_storage::ClientId;
//! use ajx_transport::{Network, NetworkConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), ajx_core::ProtocolError> {
//! let cfg = ProtocolConfig::new(2, 4, 512).expect("valid code");
//! let net = Network::new(NetworkConfig {
//!     n_nodes: cfg.n(),
//!     block_size: cfg.block_size,
//!     ..NetworkConfig::default()
//! });
//! let disk = VirtualDisk::new(Arc::new(Client::new(net.client(ClientId(1)), cfg)));
//!
//! disk.write(1000, b"hello across block boundaries")?;
//! assert_eq!(disk.read(1000, 29)?, b"hello across block boundaries");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ajx_core::{Client, ProtocolError};
use std::sync::Arc;

/// A byte-addressable disk backed by erasure-coded blocks.
///
/// Cheap to clone-share via the inner [`Arc`]; all methods take `&self`
/// and may be called from many threads (each call maps to one or more
/// block-level protocol operations).
#[derive(Debug, Clone)]
pub struct VirtualDisk {
    client: Arc<Client>,
    block_size: usize,
}

impl VirtualDisk {
    /// Wraps a protocol client as a disk.
    pub fn new(client: Arc<Client>) -> Self {
        let block_size = client.config().block_size;
        VirtualDisk { client, block_size }
    }

    /// The underlying block size (the device's "sector size").
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The underlying protocol client.
    pub fn client(&self) -> &Arc<Client> {
        &self.client
    }

    /// Reads `len` bytes starting at byte `offset`.
    ///
    /// Unwritten regions read as zero, like a fresh disk.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (unrecoverable stripes, exhausted
    /// retries); transient failures are handled by the protocol layer.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, ProtocolError> {
        let bs = self.block_size as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let lb = pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = (len - out.len()).min(self.block_size - in_block);
            let block = self.client.read_block(lb)?;
            out.extend_from_slice(&block[in_block..in_block + chunk]);
            pos += chunk as u64;
        }
        Ok(out)
    }

    /// Writes `data` starting at byte `offset`.
    ///
    /// Interior full blocks are overwritten directly (one `swap` + `p`
    /// `add`s each); partial blocks at the edges use read-modify-write.
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::read`]. A failure mid-call may leave a prefix of
    /// the range written (per-block writes are atomic; the multi-block call
    /// is not — the same contract as a physical disk).
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), ProtocolError> {
        let bs = self.block_size as u64;
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let lb = pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = remaining.len().min(self.block_size - in_block);
            let block = if in_block == 0 && chunk == self.block_size {
                remaining[..chunk].to_vec() // full overwrite: no read needed
            } else {
                let mut b = self.client.read_block(lb)?;
                b[in_block..in_block + chunk].copy_from_slice(&remaining[..chunk]);
                b
            };
            self.client.write_block(lb, block)?;
            pos += chunk as u64;
            remaining = &remaining[chunk..];
        }
        Ok(())
    }

    /// Fills `[offset, offset + len)` with `byte` (e.g. zeroing a range).
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::write`].
    pub fn fill(&self, offset: u64, len: usize, byte: u8) -> Result<(), ProtocolError> {
        // Reuse write() chunk logic with a staged buffer per block span.
        let bs = self.block_size;
        let mut pos = offset;
        let mut remaining = len;
        while remaining > 0 {
            let in_block = (pos % bs as u64) as usize;
            let chunk = remaining.min(bs - in_block);
            self.write(pos, &vec![byte; chunk])?;
            pos += chunk as u64;
            remaining -= chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_cluster::Cluster;
    use ajx_core::ProtocolConfig;
    use proptest::prelude::*;

    const BS: usize = 64;

    fn disk() -> (Cluster, VirtualDisk) {
        let cfg = ProtocolConfig::new(2, 4, BS).unwrap();
        let cluster = Cluster::new(cfg, 1);
        let d = VirtualDisk::new(cluster.client(0).clone());
        (cluster, d)
    }

    #[test]
    fn fresh_disk_reads_zero() {
        let (_c, d) = disk();
        assert_eq!(d.read(0, 10).unwrap(), vec![0; 10]);
        assert_eq!(d.read(1_000_000, 3).unwrap(), vec![0; 3]);
        assert_eq!(d.block_size(), BS);
    }

    #[test]
    fn aligned_full_block_roundtrip() {
        let (_c, d) = disk();
        let data: Vec<u8> = (0..BS as u8).collect();
        d.write(0, &data).unwrap();
        assert_eq!(d.read(0, BS).unwrap(), data);
    }

    #[test]
    fn unaligned_write_spanning_blocks() {
        let (_c, d) = disk();
        let data: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        d.write(37, &data).unwrap();
        assert_eq!(d.read(37, 200).unwrap(), data);
        // Bytes around the range are untouched zeros.
        assert_eq!(d.read(0, 37).unwrap(), vec![0; 37]);
        assert_eq!(d.read(237, 20).unwrap(), vec![0; 20]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let (_c, d) = disk();
        d.write(10, &[1; 100]).unwrap();
        d.write(50, &[2; 30]).unwrap();
        let got = d.read(10, 100).unwrap();
        assert_eq!(&got[..40], &[1; 40][..]);
        assert_eq!(&got[40..70], &[2; 30][..]);
        assert_eq!(&got[70..], &[1; 30][..]);
    }

    #[test]
    fn empty_operations_are_noops() {
        let (_c, d) = disk();
        d.write(5, &[]).unwrap();
        assert_eq!(d.read(5, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fill_zeroes_a_range() {
        let (_c, d) = disk();
        d.write(0, &[0xFF; 3 * BS]).unwrap();
        d.fill(10, 2 * BS, 0).unwrap();
        let got = d.read(0, 3 * BS).unwrap();
        assert!(got[..10].iter().all(|&b| b == 0xFF));
        assert!(got[10..10 + 2 * BS].iter().all(|&b| b == 0));
        assert!(got[10 + 2 * BS..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn survives_node_crash_mid_use() {
        let (c, d) = disk();
        let data: Vec<u8> = (0..150).map(|i| i as u8).collect();
        d.write(20, &data).unwrap();
        c.crash_storage_node(ajx_storage::NodeId(1));
        assert_eq!(d.read(20, 150).unwrap(), data);
        d.write(30, &[9; 50]).unwrap();
        let got = d.read(20, 150).unwrap();
        assert_eq!(&got[10..60], &[9; 50][..]);
    }

    #[test]
    fn concurrent_disjoint_writers_share_a_disk() {
        let cfg = ProtocolConfig::new(2, 4, BS).unwrap();
        let cluster = Cluster::new(cfg, 2);
        let d0 = VirtualDisk::new(cluster.client(0).clone());
        let d1 = VirtualDisk::new(cluster.client(1).clone());
        let h0 = {
            let d = d0.clone();
            std::thread::spawn(move || {
                for i in 0..40u8 {
                    d.write(0, &[i; 100]).unwrap();
                }
            })
        };
        let h1 = {
            let d = d1.clone();
            std::thread::spawn(move || {
                for i in 0..40u8 {
                    d.write(1000, &[i ^ 0xFF; 100]).unwrap();
                }
            })
        };
        h0.join().unwrap();
        h1.join().unwrap();
        assert_eq!(d1.read(0, 100).unwrap(), vec![39; 100]);
        assert_eq!(d0.read(1000, 100).unwrap(), vec![39 ^ 0xFF; 100]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random sequences of byte-level writes against a plain Vec model.
        #[test]
        fn prop_matches_flat_memory_model(
            ops in proptest::collection::vec(
                (0u64..500, proptest::collection::vec(any::<u8>(), 1..120)),
                1..12
            )
        ) {
            let (_c, d) = disk();
            let mut model = vec![0u8; 1024];
            for (offset, data) in &ops {
                d.write(*offset, data).unwrap();
                let end = *offset as usize + data.len();
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[*offset as usize..end].copy_from_slice(data);
            }
            prop_assert_eq!(d.read(0, model.len()).unwrap(), model);
        }
    }
}
