//! A byte-addressable virtual disk on top of the AJX erasure-coded block
//! store.
//!
//! The paper's §2: "Target applications include operating systems,
//! databases, distributed file servers, or other higher-level services
//! that require block storage. These applications access data through a
//! block interface ... we prefer that all peculiarities of erasure codes
//! be hidden from applications." This crate is that hiding layer: a
//! [`VirtualDisk`] exposes plain `read(offset, len)` / `write(offset,
//! data)` over bytes, while underneath an `ajx-core` client maps every
//! access onto erasure-coded logical blocks (with read-modify-write at
//! unaligned edges) — and inherits the protocol's fault tolerance
//! transparently.
//!
//! # Example
//!
//! ```
//! use ajx_blockdev::VirtualDisk;
//! use ajx_core::{Client, ProtocolConfig};
//! use ajx_storage::ClientId;
//! use ajx_transport::{Network, NetworkConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), ajx_core::ProtocolError> {
//! let cfg = ProtocolConfig::new(2, 4, 512).expect("valid code");
//! let net = Network::new(NetworkConfig {
//!     n_nodes: cfg.n(),
//!     block_size: cfg.block_size,
//!     ..NetworkConfig::default()
//! });
//! let disk = VirtualDisk::new(Arc::new(Client::new(net.client(ClientId(1)), cfg)));
//!
//! disk.write(1000, b"hello across block boundaries")?;
//! assert_eq!(disk.read(1000, 29)?, b"hello across block boundaries");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ajx_core::{Client, ProtocolError};
use std::sync::Arc;

/// A byte-addressable disk backed by erasure-coded blocks.
///
/// Cheap to clone-share via the inner [`Arc`]; all methods take `&self`
/// and may be called from many threads (each call maps to one or more
/// block-level protocol operations).
#[derive(Debug, Clone)]
pub struct VirtualDisk {
    client: Arc<Client>,
    block_size: usize,
}

impl VirtualDisk {
    /// Wraps a protocol client as a disk.
    pub fn new(client: Arc<Client>) -> Self {
        let block_size = client.config().block_size;
        VirtualDisk { client, block_size }
    }

    /// The underlying block size (the device's "sector size").
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The underlying protocol client.
    pub fn client(&self) -> &Arc<Client> {
        &self.client
    }

    /// Reads `len` bytes starting at byte `offset`.
    ///
    /// Unwritten regions read as zero, like a fresh disk. The whole range
    /// is fetched with one batched multi-block `READ`
    /// ([`Client::read_blocks`]): one message per storage node instead of
    /// one round trip per block.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (unrecoverable stripes, exhausted
    /// retries); transient failures are handled by the protocol layer.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, ProtocolError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let lbs: Vec<u64> = (first..=last).collect();
        let blocks = self.client.read_blocks(&lbs)?;
        let mut out = Vec::with_capacity(len);
        let mut in_block = (offset % bs) as usize;
        for block in &blocks {
            let chunk = (len - out.len()).min(self.block_size - in_block);
            out.extend_from_slice(&block[in_block..in_block + chunk]);
            in_block = 0;
        }
        Ok(out)
    }

    /// Writes `data` starting at byte `offset`.
    ///
    /// Partial blocks at the (at most two) edges are fetched with one
    /// batched read and patched; interior full blocks are borrowed straight
    /// from `data` with no copy. Everything then goes out as a single
    /// batched multi-block `WRITE` ([`Client::write_blocks`]): stripes are
    /// pipelined and each stripe pays one coalesced message per node.
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::read`]. A failure mid-call may leave part of the
    /// range written (per-block writes are atomic; the multi-block call is
    /// not — the same contract as a physical disk).
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), ProtocolError> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let head_off = (offset % bs) as usize;
        let tail_len = ((offset + data.len() as u64 - 1) % bs) as usize + 1;
        let single = first == last;
        let head_rmw = head_off != 0 || (single && tail_len != self.block_size);
        let tail_rmw = !single && tail_len != self.block_size;

        // Read-modify-write staging for the partial edge blocks, fetched
        // together in one batched read.
        let mut need: Vec<u64> = Vec::with_capacity(2);
        if head_rmw {
            need.push(first);
        }
        if tail_rmw {
            need.push(last);
        }
        let mut edges = self.client.read_blocks(&need)?;
        let mut tail_block = if tail_rmw { edges.pop() } else { None };
        let mut head_block = if head_rmw { edges.pop() } else { None };
        if let Some(b) = &mut head_block {
            let chunk = data.len().min(self.block_size - head_off);
            b[head_off..head_off + chunk].copy_from_slice(&data[..chunk]);
        }
        if let Some(b) = &mut tail_block {
            b[..tail_len].copy_from_slice(&data[data.len() - tail_len..]);
        }

        let mut writes: Vec<(u64, &[u8])> = Vec::with_capacity((last - first) as usize + 1);
        if let Some(b) = &head_block {
            writes.push((first, b.as_slice()));
        }
        let lb_start = if head_rmw { first + 1 } else { first };
        let lb_end = if tail_rmw { last } else { last + 1 };
        for lb in lb_start..lb_end {
            let start = (lb - first) as usize * self.block_size - head_off;
            writes.push((lb, &data[start..start + self.block_size]));
        }
        if let Some(b) = &tail_block {
            writes.push((last, b.as_slice()));
        }
        self.client.write_blocks(&writes)
    }

    /// Fills `[offset, offset + len)` with `byte` (e.g. zeroing a range).
    ///
    /// One shared block-sized pattern buffer serves every full block in the
    /// range (borrowed repeatedly, never duplicated); only the partial
    /// edges are staged, and the whole range goes out as one batched
    /// multi-block `WRITE`.
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::write`].
    pub fn fill(&self, offset: u64, len: usize, byte: u8) -> Result<(), ProtocolError> {
        if len == 0 {
            return Ok(());
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let head_off = (offset % bs) as usize;
        let tail_len = ((offset + len as u64 - 1) % bs) as usize + 1;
        let single = first == last;
        let head_rmw = head_off != 0 || (single && tail_len != self.block_size);
        let tail_rmw = !single && tail_len != self.block_size;

        let mut need: Vec<u64> = Vec::with_capacity(2);
        if head_rmw {
            need.push(first);
        }
        if tail_rmw {
            need.push(last);
        }
        let mut edges = self.client.read_blocks(&need)?;
        let mut tail_block = if tail_rmw { edges.pop() } else { None };
        let mut head_block = if head_rmw { edges.pop() } else { None };
        if let Some(b) = &mut head_block {
            let chunk = len.min(self.block_size - head_off);
            b[head_off..head_off + chunk].fill(byte);
        }
        if let Some(b) = &mut tail_block {
            b[..tail_len].fill(byte);
        }

        let pattern = vec![byte; self.block_size];
        let mut writes: Vec<(u64, &[u8])> = Vec::with_capacity((last - first) as usize + 1);
        if let Some(b) = &head_block {
            writes.push((first, b.as_slice()));
        }
        let lb_start = if head_rmw { first + 1 } else { first };
        let lb_end = if tail_rmw { last } else { last + 1 };
        for lb in lb_start..lb_end {
            writes.push((lb, pattern.as_slice()));
        }
        if let Some(b) = &tail_block {
            writes.push((last, b.as_slice()));
        }
        self.client.write_blocks(&writes)
    }

    /// Scatter read (`preadv` shape): fills each `(offset, buffer)` pair,
    /// coalescing *all* the underlying block fetches — across every
    /// segment — into one batched multi-block `READ`.
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::read`]; on error no buffer content is guaranteed.
    pub fn read_vectored(&self, iovs: &mut [(u64, &mut [u8])]) -> Result<(), ProtocolError> {
        let bs = self.block_size as u64;
        let mut lbs: Vec<u64> = Vec::new();
        for (offset, buf) in iovs.iter() {
            if buf.is_empty() {
                continue;
            }
            let first = offset / bs;
            let last = (offset + buf.len() as u64 - 1) / bs;
            lbs.extend(first..=last);
        }
        lbs.sort_unstable();
        lbs.dedup();
        let blocks = self.client.read_blocks(&lbs)?;
        let block_at =
            |lb: u64| blocks[lbs.binary_search(&lb).expect("every touched block was fetched")]
                .as_slice();
        for (offset, buf) in iovs.iter_mut() {
            let len = buf.len();
            let mut filled = 0usize;
            let mut pos = *offset;
            while filled < len {
                let lb = pos / bs;
                let in_block = (pos % bs) as usize;
                let chunk = (len - filled).min(self.block_size - in_block);
                buf[filled..filled + chunk]
                    .copy_from_slice(&block_at(lb)[in_block..in_block + chunk]);
                filled += chunk;
                pos += chunk as u64;
            }
        }
        Ok(())
    }

    /// Gather write (`pwritev` shape): writes each `(offset, data)` segment
    /// as if by sequential [`VirtualDisk::write`] calls — overlapping
    /// segments resolve in favor of the later one — but stages every
    /// touched block once and issues a single batched multi-block `WRITE`.
    ///
    /// # Errors
    ///
    /// As [`VirtualDisk::write`].
    pub fn write_vectored(&self, iovs: &[(u64, &[u8])]) -> Result<(), ProtocolError> {
        use std::collections::BTreeMap;
        let bs = self.block_size as u64;

        // Per touched block, the byte intervals the segments cover.
        let mut spans: BTreeMap<u64, Vec<(usize, usize)>> = BTreeMap::new();
        for &(offset, data) in iovs {
            let mut pos = offset;
            let mut remaining = data.len();
            while remaining > 0 {
                let lb = pos / bs;
                let in_block = (pos % bs) as usize;
                let chunk = remaining.min(self.block_size - in_block);
                spans.entry(lb).or_default().push((in_block, in_block + chunk));
                pos += chunk as u64;
                remaining -= chunk;
            }
        }
        if spans.is_empty() {
            return Ok(());
        }

        // Blocks whose segments don't cover every byte need their current
        // content underneath — fetched together in one batched read.
        let covers_block = |sp: &[(usize, usize)]| {
            let mut sorted = sp.to_vec();
            sorted.sort_unstable();
            let mut reach = 0usize;
            for (s, e) in sorted {
                if s > reach {
                    return false;
                }
                reach = reach.max(e);
            }
            reach >= self.block_size
        };
        let need: Vec<u64> = spans
            .iter()
            .filter(|(_, sp)| !covers_block(sp))
            .map(|(&lb, _)| lb)
            .collect();
        let fetched = self.client.read_blocks(&need)?;
        let mut staged: BTreeMap<u64, Vec<u8>> = need.into_iter().zip(fetched).collect();
        for &lb in spans.keys() {
            staged.entry(lb).or_insert_with(|| vec![0; self.block_size]);
        }

        // Apply the segments in order: later segments win, exactly as with
        // sequential write() calls.
        for &(offset, data) in iovs {
            let mut pos = offset;
            let mut written = 0usize;
            while written < data.len() {
                let lb = pos / bs;
                let in_block = (pos % bs) as usize;
                let chunk = (data.len() - written).min(self.block_size - in_block);
                staged.get_mut(&lb).expect("every touched block is staged")
                    [in_block..in_block + chunk]
                    .copy_from_slice(&data[written..written + chunk]);
                written += chunk;
                pos += chunk as u64;
            }
        }
        let writes: Vec<(u64, &[u8])> =
            staged.iter().map(|(&lb, b)| (lb, b.as_slice())).collect();
        self.client.write_blocks(&writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_cluster::Cluster;
    use ajx_core::ProtocolConfig;
    use proptest::prelude::*;

    const BS: usize = 64;

    fn disk() -> (Cluster, VirtualDisk) {
        let cfg = ProtocolConfig::new(2, 4, BS).unwrap();
        let cluster = Cluster::new(cfg, 1);
        let d = VirtualDisk::new(cluster.client(0).clone());
        (cluster, d)
    }

    #[test]
    fn fresh_disk_reads_zero() {
        let (_c, d) = disk();
        assert_eq!(d.read(0, 10).unwrap(), vec![0; 10]);
        assert_eq!(d.read(1_000_000, 3).unwrap(), vec![0; 3]);
        assert_eq!(d.block_size(), BS);
    }

    #[test]
    fn aligned_full_block_roundtrip() {
        let (_c, d) = disk();
        let data: Vec<u8> = (0..BS as u8).collect();
        d.write(0, &data).unwrap();
        assert_eq!(d.read(0, BS).unwrap(), data);
    }

    #[test]
    fn unaligned_write_spanning_blocks() {
        let (_c, d) = disk();
        let data: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        d.write(37, &data).unwrap();
        assert_eq!(d.read(37, 200).unwrap(), data);
        // Bytes around the range are untouched zeros.
        assert_eq!(d.read(0, 37).unwrap(), vec![0; 37]);
        assert_eq!(d.read(237, 20).unwrap(), vec![0; 20]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let (_c, d) = disk();
        d.write(10, &[1; 100]).unwrap();
        d.write(50, &[2; 30]).unwrap();
        let got = d.read(10, 100).unwrap();
        assert_eq!(&got[..40], &[1; 40][..]);
        assert_eq!(&got[40..70], &[2; 30][..]);
        assert_eq!(&got[70..], &[1; 30][..]);
    }

    #[test]
    fn empty_operations_are_noops() {
        let (_c, d) = disk();
        d.write(5, &[]).unwrap();
        assert_eq!(d.read(5, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fill_zeroes_a_range() {
        let (_c, d) = disk();
        d.write(0, &[0xFF; 3 * BS]).unwrap();
        d.fill(10, 2 * BS, 0).unwrap();
        let got = d.read(0, 3 * BS).unwrap();
        assert!(got[..10].iter().all(|&b| b == 0xFF));
        assert!(got[10..10 + 2 * BS].iter().all(|&b| b == 0));
        assert!(got[10 + 2 * BS..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn survives_node_crash_mid_use() {
        let (c, d) = disk();
        let data: Vec<u8> = (0..150).map(|i| i as u8).collect();
        d.write(20, &data).unwrap();
        c.crash_storage_node(ajx_storage::NodeId(1));
        assert_eq!(d.read(20, 150).unwrap(), data);
        d.write(30, &[9; 50]).unwrap();
        let got = d.read(20, 150).unwrap();
        assert_eq!(&got[10..60], &[9; 50][..]);
    }

    #[test]
    fn concurrent_disjoint_writers_share_a_disk() {
        let cfg = ProtocolConfig::new(2, 4, BS).unwrap();
        let cluster = Cluster::new(cfg, 2);
        let d0 = VirtualDisk::new(cluster.client(0).clone());
        let d1 = VirtualDisk::new(cluster.client(1).clone());
        let h0 = {
            let d = d0.clone();
            std::thread::spawn(move || {
                for i in 0..40u8 {
                    d.write(0, &[i; 100]).unwrap();
                }
            })
        };
        let h1 = {
            let d = d1.clone();
            std::thread::spawn(move || {
                for i in 0..40u8 {
                    d.write(1000, &[i ^ 0xFF; 100]).unwrap();
                }
            })
        };
        h0.join().unwrap();
        h1.join().unwrap();
        assert_eq!(d1.read(0, 100).unwrap(), vec![39; 100]);
        assert_eq!(d0.read(1000, 100).unwrap(), vec![39 ^ 0xFF; 100]);
    }

    #[test]
    fn vectored_read_gathers_disjoint_ranges() {
        let (_c, d) = disk();
        d.write(0, &(0..=255u8).cycle().take(6 * BS).collect::<Vec<_>>())
            .unwrap();
        let mut a = vec![0u8; 50];
        let mut b = vec![0u8; 70];
        let mut c2 = vec![0u8; 0];
        let mut iovs: Vec<(u64, &mut [u8])> =
            vec![(10, &mut a), (300, &mut b), (5, &mut c2)];
        d.read_vectored(&mut iovs).unwrap();
        assert_eq!(a, d.read(10, 50).unwrap());
        assert_eq!(b, d.read(300, 70).unwrap());
    }

    #[test]
    fn vectored_write_matches_sequential_writes_even_when_overlapping() {
        let (_c, d1) = disk();
        let (_c2, d2) = disk();
        let seg1: Vec<u8> = (0..150).map(|i| i as u8).collect();
        let seg2 = vec![0xEE; 90];
        let seg3 = vec![0x11; 40];
        // Overlapping segments: the later one wins, as with sequential
        // write() calls.
        let iovs: Vec<(u64, &[u8])> =
            vec![(30, &seg1), (100, &seg2), (95, &seg3)];
        d1.write_vectored(&iovs).unwrap();
        for &(off, data) in &iovs {
            d2.write(off, data).unwrap();
        }
        assert_eq!(d1.read(0, 256).unwrap(), d2.read(0, 256).unwrap());
    }

    #[test]
    fn sequential_run_costs_one_round_trip_per_node_not_per_block() {
        let (_c, d) = disk();
        let data = vec![0xAB; 8 * BS]; // 8 blocks over 4 stripes of 2-of-4
        d.write(0, &data).unwrap();
        let stats = d.client().endpoint().stats();
        let before = stats.snapshot();
        assert_eq!(d.read(0, 8 * BS).unwrap(), data);
        let read_cost = stats.snapshot().since(&before);
        // The rotated layout spreads the 8 data blocks over 4 nodes, each
        // answering one 2-read batch: 4 round trips, not 8.
        assert_eq!(read_cost.round_trips, 4);

        let before = stats.snapshot();
        d.write(0, &data).unwrap();
        let write_cost = stats.snapshot().since(&before);
        // Per stripe: 2 swaps + 2 batched adds = 4 round trips; with the
        // stripes pipelined the total is 16 instead of the sequential
        // loop's 8 x (1 + 2) = 24.
        assert_eq!(write_cost.round_trips, 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random sequences of byte-level writes against a plain Vec model.
        #[test]
        fn prop_matches_flat_memory_model(
            ops in proptest::collection::vec(
                (0u64..500, proptest::collection::vec(any::<u8>(), 1..120)),
                1..12
            )
        ) {
            let (_c, d) = disk();
            let mut model = vec![0u8; 1024];
            for (offset, data) in &ops {
                d.write(*offset, data).unwrap();
                let end = *offset as usize + data.len();
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[*offset as usize..end].copy_from_slice(data);
            }
            prop_assert_eq!(d.read(0, model.len()).unwrap(), model);
        }
    }
}
