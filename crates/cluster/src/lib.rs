//! In-process cluster harness — the reproduction's analogue of the paper's
//! §5.1 testbed ("a small system with 8 hosts, where we varied the role of
//! a host per experiment between client and storage node").
//!
//! A [`Cluster`] wires `n` storage nodes and any number of protocol clients
//! over the `ajx-transport` network, and adds what experiments need:
//!
//! * fault injection — crash/remap storage nodes, kill clients mid-protocol
//!   and propagate fail-stop detection (lock expiry);
//! * ground-truth inspection — [`Cluster::stripe_is_consistent`] decodes a
//!   stripe directly from node memory, bypassing the protocol;
//! * workload driving — [`drive`] runs closed-loop threads against clients
//!   and reports throughput (the paper's "number of threads ... limits the
//!   number of outstanding calls");
//! * chaos schedules — [`run_chaos`] drives a seeded nemesis (crashes,
//!   remaps, partitions, drops, slowdowns) against live traffic and checks
//!   the recorded history for multi-writer regularity.
//!
//! # Example
//!
//! ```
//! use ajx_cluster::Cluster;
//! use ajx_core::ProtocolConfig;
//!
//! # fn main() -> Result<(), ajx_core::ProtocolError> {
//! let cfg = ProtocolConfig::new(2, 4, 64).expect("valid code");
//! let cluster = Cluster::new(cfg, 2);
//! cluster.client(0).write_block(5, vec![1; 64])?;
//! assert_eq!(cluster.client(1).read_block(5)?, vec![1; 64]);
//! assert!(cluster.stripe_is_consistent(ajx_storage::StripeId(2)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod harness;
mod powerloss;
mod workload;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport, NemesisEvent};
pub use harness::Cluster;
pub use powerloss::{run_power_loss, PowerLossOptions, PowerLossReport};
pub use workload::{drive, DriveReport, Workload};
