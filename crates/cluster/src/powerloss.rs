//! Deterministic power-loss simulator (DESIGN.md §10).
//!
//! One node's write-ahead log is armed to tear at a seeded random byte
//! offset — mid-record, like a real machine losing power during a
//! write — and the run then proves the durability story end to end:
//!
//! 1. drive live traffic until the armed commit trips (the node dies
//!    *before* acking, so the interrupted write surfaces to its client as
//!    indeterminate, exactly like a lost reply);
//! 2. keep operating degraded (reads are served by the lock-free
//!    degraded path, writes touching the dead node fail indeterminately);
//! 3. restart the node **with its disk**: RAM wiped, journal replayed,
//!    torn tail truncated;
//! 4. repair with the batched rebuild engine (under deferred commits the
//!    replayed node is stale — a prefix of what it acked — and the
//!    rebuild reconciles it from its peers);
//! 5. check: every touched stripe satisfies the erasure equation, every
//!    block reads back, and the full history is regular under
//!    [`ajx_consistency::check_regular`] with interrupted writes folded
//!    in as forever-concurrent.
//!
//! The run is single-threaded and seeded: identical `(cfg, opts)`
//! produce byte-identical [`PowerLossReport::trace`]s, the same contract
//! as the chaos harness and fault-injection transport.

use crate::harness::Cluster;
use ajx_consistency::{check_regular, Recorder};
use ajx_core::ProtocolConfig;
use ajx_storage::{FlushPolicy, NodeId, PersistMode, StripeId};
use ajx_transport::NetworkConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Options for one [`run_power_loss`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLossOptions {
    /// Seed for the victim draw, the armed byte offset, and the workload.
    pub seed: u64,
    /// Total operations driven (half before arming, half after).
    pub ops: u64,
    /// Size of the logical block space operations target.
    pub blocks: u64,
    /// Percentage of operations that are reads.
    pub read_pct: u8,
    /// Node media/journal flush policy. Under [`FlushPolicy::Deferred`]
    /// the journal commits only at flush points, so the recovered node
    /// can be stale — the case the post-restart rebuild exists for.
    pub flush_policy: FlushPolicy,
    /// Under [`FlushPolicy::Deferred`]: force a node flush (and therefore
    /// a journal group commit) every this many operations.
    pub flush_every: u64,
}

impl Default for PowerLossOptions {
    fn default() -> Self {
        PowerLossOptions {
            seed: 0xD15C,
            ops: 48,
            blocks: 16,
            read_pct: 25,
            flush_policy: FlushPolicy::WriteThrough,
            flush_every: 6,
        }
    }
}

/// Outcome of one [`run_power_loss`] execution.
#[derive(Debug, Default, Clone)]
pub struct PowerLossReport {
    /// The node whose power was cut.
    pub victim: u32,
    /// The WAL byte offset the failure was armed at.
    pub armed_offset: u64,
    /// Operations that completed successfully.
    pub ops_ok: u64,
    /// Reads that failed (they constrain nothing).
    pub reads_failed: u64,
    /// Writes that failed indeterminately (folded into the history as
    /// forever-concurrent).
    pub writes_indeterminate: u64,
    /// Journal records replayed by the restart.
    pub replayed_records: u64,
    /// The deterministic event trace (byte-identical across runs with the
    /// same options).
    pub trace: Vec<String>,
    /// Everything that went wrong; empty = the run passed.
    pub violations: Vec<String>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs one seeded power-loss scenario end to end. See the module docs
/// for the phases; identical `(cfg, opts)` produce identical traces.
pub fn run_power_loss(cfg: ProtocolConfig, opts: &PowerLossOptions) -> PowerLossReport {
    let mut cfg = cfg;
    // Determinism: single driver thread, no worker pools (same contract
    // as the chaos harness), and *no* auto-remap — a remap swaps the
    // medium and would destroy the very journal this run is about.
    cfg.pipeline_width = 1;
    cfg.rebuild_width = 1;
    cfg.auto_remap = false;
    let wal_dir = ajx_storage::scratch_dir_fast("powerloss");
    let cluster = Cluster::with_network(
        cfg.clone(),
        1,
        NetworkConfig {
            server_threads: 1,
            flush_policy: opts.flush_policy,
            persist: PersistMode::Wal { dir: wal_dir.clone() },
            ..NetworkConfig::default()
        },
    );
    let net = cluster.network().clone();
    let client = cluster.client(0);
    let rec: Arc<Recorder<Vec<u8>>> = Recorder::new();
    let mut rng = opts.seed ^ 0x7E57_AB1E_0FF0_DEAD;
    let mut report = PowerLossReport::default();
    let n = cfg.n();
    let k = cfg.k();
    let victim = NodeId((splitmix64(&mut rng) % n as u64) as u32);
    report.victim = victim.0;
    let mut trace: Vec<String> = Vec::new();
    let mut touched: BTreeSet<u64> = BTreeSet::new();
    // Stripes that may be inconsistent after the power cut: those with an
    // interrupted (indeterminate) write, plus — under deferred commits —
    // every stripe written since the victim's last durable group commit.
    // These need full recovery after the restart; everything else is
    // provably clean and goes through the rebuild engine's skip fast
    // path. This is the "node returned with disk" vs "returned empty"
    // distinction: a wiped node is INIT everywhere (the probe sees it),
    // while a returned disk looks NORM but may hide a stale tail.
    let mut suspect: BTreeSet<u64> = BTreeSet::new();
    let mut since_flush: BTreeSet<u64> = BTreeSet::new();
    let deferred = opts.flush_policy == FlushPolicy::Deferred;

    let flush_and_check = |net: &Arc<ajx_transport::Network>,
                               trace: &mut Vec<String>,
                               since_flush: &mut BTreeSet<u64>| {
        for t in 0..n {
            let id = NodeId(t as u32);
            if net.node_is_up(id) {
                net.with_node(id, |v| v.flush_all());
            }
        }
        // A deferred group commit can be the write that crosses the armed
        // offset; the machine dies at the flush, outside any RPC.
        if net.node_persist_tripped(victim) && net.node_is_up(victim) {
            net.crash_node(victim);
            trace.push(format!("power lost at s{} during deferred flush", victim.0));
        } else if net.node_is_up(victim) {
            // Everything written so far reached the victim's platter.
            since_flush.clear();
        }
    };

    let mut armed = false;
    for op in 0..opts.ops {
        // Arm the failure halfway through, at a random offset a short
        // (seeded) distance past what is already durable — so the tear
        // lands mid-record inside the second half's traffic.
        if op == opts.ops / 2 {
            let durable = net.persist_stats(victim).durable_bytes;
            let extra = 1 + splitmix64(&mut rng) % (4 * cfg.block_size as u64);
            let offset = durable + extra;
            net.arm_power_failure(victim, offset);
            report.armed_offset = offset;
            armed = true;
            trace.push(format!(
                "armed power failure at s{} wal byte {offset} (durable {durable})"
            , victim.0));
        }
        let lb = splitmix64(&mut rng) % opts.blocks;
        if (splitmix64(&mut rng) % 100) < u64::from(opts.read_pct) {
            let p = rec.invoke();
            match client.read_block(lb) {
                Ok(v) => {
                    trace.push(format!("op {op} read lb{lb} -> ok"));
                    rec.complete_read(lb, client.id().0, p, nonzero(v));
                    report.ops_ok += 1;
                }
                Err(e) => {
                    trace.push(format!("op {op} read lb{lb} -> err {e}"));
                    report.reads_failed += 1;
                }
            }
        } else {
            let fill = (splitmix64(&mut rng) % 255) as u8 + 1;
            let value = vec![fill; cfg.block_size];
            touched.insert(lb);
            if deferred {
                since_flush.insert(lb / k as u64);
            }
            let p = rec.invoke();
            match client.write_block(lb, value.clone()) {
                Ok(()) => {
                    trace.push(format!("op {op} write lb{lb} fill {fill} -> ok"));
                    rec.complete_write(lb, client.id().0, p, value);
                    report.ops_ok += 1;
                }
                Err(e) => {
                    trace.push(format!("op {op} write lb{lb} fill {fill} -> indet {e}"));
                    rec.complete_write_indeterminate(lb, client.id().0, p, value);
                    report.writes_indeterminate += 1;
                    suspect.insert(lb / k as u64);
                }
            }
        }
        if deferred && opts.flush_every != 0 && (op + 1) % opts.flush_every == 0 {
            flush_and_check(&net, &mut trace, &mut since_flush);
        }
    }
    if deferred {
        flush_and_check(&net, &mut trace, &mut since_flush);
    }

    if net.node_is_up(victim) {
        if armed {
            report
                .violations
                .push("armed power failure never tripped (workload too small)".into());
        }
    } else {
        trace.push(format!("s{} is down (power lost)", victim.0));
        // Whatever was written since the victim's last durable commit may
        // be missing from its replayed state.
        suspect.append(&mut since_flush);
    }

    // Reboot the machine with its disk: RAM wiped, journal replayed.
    if !net.node_is_up(victim) {
        if !cluster.restart_storage_node_with_disk(victim) {
            report
                .violations
                .push(format!("restart-with-disk of s{} failed", victim.0));
        } else {
            report.replayed_records = net.persist_stats(victim).records;
            trace.push(format!(
                "restart-with-disk s{}: replayed {} records, {} durable bytes",
                victim.0,
                report.replayed_records,
                net.persist_stats(victim).durable_bytes
            ));
        }
    }

    // Repair pass 1: full recovery for the suspect stripes. These look
    // NORM/unlocked to a probe (no wipe happened), so the rebuild
    // engine's skip heuristic would pass them over — but an interrupted
    // write may have reached only some redundant nodes, and a deferred
    // victim replays a stale prefix. `recover_stripe` reconciles them
    // through find-consistent, the same path the chaos harness uses for
    // stranded writes.
    for &s in &suspect {
        match client.recover_stripe(StripeId(s)) {
            Ok(()) => trace.push(format!("recovered suspect stripe {s}")),
            Err(e) => report
                .violations
                .push(format!("recovery of suspect stripe {s} failed: {e}")),
        }
    }

    // Repair pass 2: the batched rebuild engine sweeps everything else.
    // Under write-through commits it mostly *skips* (replay already
    // caught the node up — the whole point of keeping the disk).
    let stripes: Vec<StripeId> = touched
        .iter()
        .map(|&lb| lb / k as u64)
        .collect::<BTreeSet<u64>>()
        .into_iter()
        .map(StripeId)
        .collect();
    match client.rebuild_stripes(&stripes) {
        Ok(r) => trace.push(format!(
            "repair: {} stripes, {} rebuilt, {} recovered, {} skipped",
            r.stripes, r.rebuilt, r.recovered, r.skipped
        )),
        Err(e) => report.violations.push(format!("post-restart rebuild failed: {e}")),
    }

    // Final checks: read-back, erasure ground truth, regularity.
    for &lb in &touched {
        let p = rec.invoke();
        match client.read_block(lb) {
            Ok(v) => rec.complete_read(lb, client.id().0, p, nonzero(v)),
            Err(e) => report
                .violations
                .push(format!("final read of block {lb} failed: {e}")),
        }
    }
    for s in &stripes {
        if !cluster.stripe_is_consistent(*s) {
            report.violations.push(format!(
                "stripe {} violates the erasure equation [{}]",
                s.0,
                cluster.stripe_forensics(*s)
            ));
        }
    }
    let history = rec.take_history();
    if let Err(v) = check_regular(&history) {
        report.violations.push(v.to_string());
    }
    trace.push(format!(
        "done: {} ok, {} reads failed, {} writes indeterminate",
        report.ops_ok, report.reads_failed, report.writes_indeterminate
    ));
    report.trace = trace;
    std::fs::remove_dir_all(&wal_dir).ok();
    report
}

/// `None` for the all-zeros (initial-value) block, `Some` otherwise.
fn nonzero(v: Vec<u8>) -> Option<Vec<u8>> {
    if v.iter().all(|&b| b == 0) {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(2, 4, 16).unwrap()
    }

    #[test]
    fn power_loss_run_passes_and_reproduces_write_through() {
        let opts = PowerLossOptions::default();
        let a = run_power_loss(cfg(), &opts);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(a.armed_offset > 0, "failure must arm");
        assert!(a.writes_indeterminate + a.ops_ok > 0);
        assert!(a.replayed_records > 0, "restart must replay the journal");
        let b = run_power_loss(cfg(), &opts);
        assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
    }

    #[test]
    fn power_loss_run_passes_and_reproduces_deferred() {
        let opts = PowerLossOptions {
            flush_policy: FlushPolicy::Deferred,
            ..PowerLossOptions::default()
        };
        let a = run_power_loss(cfg(), &opts);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(a.replayed_records > 0);
        let b = run_power_loss(cfg(), &opts);
        assert_eq!(a.trace, b.trace, "deferred commits must stay deterministic");
    }

    /// The `tools/check.sh` power-loss smoke: three seeds, both flush
    /// policies, every run recovering to a checker-accepted state and
    /// replaying byte-identically.
    #[test]
    fn three_seeds_reproduce_byte_identically_under_both_policies() {
        for policy in [FlushPolicy::WriteThrough, FlushPolicy::Deferred] {
            for seed in [1u64, 2, 3] {
                let opts = PowerLossOptions {
                    seed,
                    flush_policy: policy,
                    ..PowerLossOptions::default()
                };
                let a = run_power_loss(cfg(), &opts);
                assert!(
                    a.violations.is_empty(),
                    "seed {seed} {policy:?}: {:?}",
                    a.violations
                );
                let b = run_power_loss(cfg(), &opts);
                assert_eq!(
                    a.trace, b.trace,
                    "seed {seed} {policy:?} must replay byte-identically"
                );
            }
        }
    }

    #[test]
    fn different_seeds_cut_power_differently() {
        let a = run_power_loss(cfg(), &PowerLossOptions::default());
        let b = run_power_loss(
            cfg(),
            &PowerLossOptions { seed: 99, ..PowerLossOptions::default() },
        );
        assert!(a.violations.is_empty(), "a: {:?}", a.violations);
        assert!(b.violations.is_empty(), "b: {:?}", b.violations);
        assert_ne!(a.trace, b.trace, "seeds must steer the run");
    }
}
