//! Seeded chaos harness: a nemesis schedule (crashes, remaps, partitions,
//! drops, slowdowns) driven against live protocol traffic, with every
//! completed operation recorded for an `ajx-consistency` regularity check.
//!
//! The driver is **single-threaded round-robin** on purpose: with one
//! driving thread and `server_threads: 1` per node, every RPC — including
//! the ones issued internally by recovery, monitoring, and GC — happens in
//! a deterministic order, so the per-link fault decisions (pure functions
//! of the seed and per-link sequence numbers) and therefore the entire
//! fault-event trace are **byte-identical across runs with the same
//! options**. Concurrent stress belongs in the multi-threaded soak tests,
//! which assert only the consistency properties, not the trace.
//!
//! The run ends with a repair epilogue — heal all faults, remap any node
//! still down, recover every touched stripe — followed by three checks:
//!
//! 1. every touched stripe satisfies the erasure equation (ground truth,
//!    [`Cluster::stripe_is_consistent`]);
//! 2. a read-back of every touched block succeeds;
//! 3. the full operation history is regular
//!    ([`ajx_consistency::check_regular`]), with writes that failed
//!    indeterminately folded in as forever-concurrent
//!    ([`Recorder::complete_write_indeterminate`]).

use crate::harness::Cluster;
use ajx_consistency::{check_regular, Recorder};
use ajx_core::ProtocolConfig;
use ajx_storage::{ClientId, NodeId, StripeId};
use ajx_transport::{LinkFaults, NetworkConfig};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Options for one [`run_chaos`] execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Seed for the nemesis schedule *and* the transport fault decisions.
    pub seed: u64,
    /// Number of protocol clients driven round-robin.
    pub n_clients: usize,
    /// Nemesis rounds; each round draws at most one nemesis event and then
    /// issues `ops_per_round` operations per client.
    pub rounds: u64,
    /// Operations per client per round.
    pub ops_per_round: u64,
    /// Size of the logical block space operations target.
    pub blocks: u64,
    /// Percentage of operations that are reads.
    pub read_pct: u8,
    /// Background fault rule applied to every link while chaos runs.
    pub link: LinkFaults,
    /// Probability that a round opens with a nemesis event.
    pub nemesis_p: f64,
    /// Per-RPC deadline — required, or dropped requests would hang forever.
    pub call_timeout: Duration,
    /// Run one GC cycle every this many rounds (0 = never).
    pub gc_every: u64,
    /// Run a §3.10 monitor sweep every this many rounds (0 = never). The
    /// sweep repairs stripes on INIT (remapped) nodes and stripes with
    /// stale unfinished writes; a fully successful sweep resets the crash
    /// budget.
    pub monitor_every: u64,
    /// Monitor age threshold (node ticks): recentlist entries older than
    /// this mark a stripe as carrying an abandoned write and trigger
    /// repair. Successful writes park tids in recentlists until GC moves
    /// them, so this must comfortably exceed the GC cadence.
    pub stale_age: u64,
    /// Maximum run length of one operation, in blocks. `1` keeps every
    /// operation single-block; larger values draw a length in
    /// `1..=max_run` per operation and issue it through the batched
    /// multi-block path ([`ajx_core::Client::read_blocks`] /
    /// [`write_blocks`](ajx_core::Client::write_blocks)), recording each
    /// block individually so the regularity check still applies per block.
    pub max_run: u64,
    /// Per-node request-queue bound (`None` = unbounded). Small values
    /// make the reactor nodes shed load with `Busy` mid-chaos, exercising
    /// the backpressure path under the determinism contract.
    pub node_queue_depth: Option<usize>,
    /// Stripe-state shards per node (see [`ajx_storage::ShardedNode`]).
    pub state_shards: usize,
    /// Back every node with a write-ahead log (scratch directory, removed
    /// when the run ends) and add [`NemesisEvent::RestartWithDisk`] to the
    /// schedule. A crashed node then has two ways back: the repair crew
    /// wipes and remaps it (rebuild from peers), or power returns and it
    /// restarts **with its disk** — journal replayed, no rebuild needed
    /// for anything it acked. The race between the two is part of the
    /// deterministic schedule.
    pub durable: bool,
}

impl Default for ChaosOptions {
    /// A small-but-hostile default: 5% drops each way, occasional delays
    /// and duplicates, a nemesis event every other round.
    fn default() -> Self {
        ChaosOptions {
            seed: 0xC4A05,
            n_clients: 2,
            rounds: 20,
            ops_per_round: 8,
            blocks: 16,
            read_pct: 40,
            link: LinkFaults {
                drop_req: 0.05,
                drop_reply: 0.05,
                delay_p: 0.05,
                delay: Duration::from_micros(100),
                dup_req: 0.05,
            },
            nemesis_p: 0.5,
            call_timeout: Duration::from_millis(10),
            gc_every: 4,
            monitor_every: 5,
            stale_age: 200,
            max_run: 1,
            node_queue_depth: Some(1024),
            state_shards: 8,
            durable: false,
        }
    }
}

/// The fault classes the nemesis schedule draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisEvent {
    /// Fail-stop a storage node (bounded by the `n − k` erasure budget).
    Crash,
    /// §3.5 directory remap of a node that is currently down.
    Remap,
    /// Block one client→node direction (requests silently lost).
    PartitionReq,
    /// Block one node→client direction (requests execute, replies lost).
    PartitionReply,
    /// Heal every partition.
    HealPartitions,
    /// Add latency to every exchange with one node.
    Slowdown,
    /// Power returns: restart a down node **with its disk** — journal
    /// replayed instead of wipe-and-rebuild. Never part of the random
    /// event table: in [`ChaosOptions::durable`] runs the round-boundary
    /// repair crew draws it (seeded coin) against [`Remap`](Self::Remap)
    /// for every node still down, so each crash races "power came back"
    /// against "the crew wiped the disk".
    RestartWithDisk,
}

const EVENTS: [NemesisEvent; 6] = [
    NemesisEvent::Crash,
    NemesisEvent::Remap,
    NemesisEvent::PartitionReq,
    NemesisEvent::PartitionReply,
    NemesisEvent::HealPartitions,
    NemesisEvent::Slowdown,
];

/// Outcome of one [`run_chaos`] execution.
#[derive(Debug, Default, Clone)]
pub struct ChaosReport {
    /// Operations that completed successfully during the chaos phase.
    pub ops_ok: u64,
    /// Reads that failed (no response recorded — a failed read returns
    /// nothing and constrains nothing).
    pub reads_failed: u64,
    /// Writes that failed indeterminately and were folded into the history
    /// as forever-concurrent.
    pub writes_indeterminate: u64,
    /// Nemesis events actually applied.
    pub nemesis_events: u64,
    /// Stripes repaired by the final recovery sweep.
    pub recovered_stripes: usize,
    /// Total operations in the checked history.
    pub history_len: usize,
    /// The deterministic fault/nemesis event stream (tracing is always on).
    pub trace: Vec<String>,
    /// Everything that went wrong: regularity violations, failed final
    /// reads, broken erasure equations. Empty = the run passed.
    pub violations: Vec<String>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn chance(state: &mut u64, p: f64) -> bool {
    ((splitmix64(state) >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// Runs a seeded chaos schedule against a fresh cluster and checks the
/// result. See the module docs for the structure of a run; identical
/// `(cfg, opts)` produce identical [`ChaosReport::trace`]s.
pub fn run_chaos(cfg: ProtocolConfig, opts: &ChaosOptions) -> ChaosReport {
    let mut cfg = cfg;
    // Multi-block writes normally pipeline stripes over worker threads;
    // here that would let thread scheduling reorder RPCs and break the
    // byte-identical-trace contract, so the pool is disabled. The rebuild
    // engine's chunk pool is serialized for the same reason.
    cfg.pipeline_width = 1;
    cfg.rebuild_width = 1;
    if opts.durable {
        // With journals behind the nodes, "wipe and remap" is a choice,
        // not the only road back — auto-remap would make every crash an
        // instant wipe and the RestartWithDisk arm unreachable. The
        // repair crew acts only through explicit nemesis draws (Remap =
        // wipe-and-rebuild, RestartWithDisk = power returned), so the
        // race between them is part of the seeded schedule.
        cfg.auto_remap = false;
    }
    let wal_dir = opts.durable.then(|| ajx_storage::scratch_dir_fast("chaos"));
    let cluster = Cluster::with_network(
        cfg.clone(),
        opts.n_clients,
        NetworkConfig {
            // Single worker per node: node-side execution order equals
            // submission order, part of the determinism contract above.
            server_threads: 1,
            call_timeout: Some(opts.call_timeout),
            node_queue_depth: opts.node_queue_depth,
            state_shards: opts.state_shards,
            persist: match &wal_dir {
                Some(dir) => ajx_storage::PersistMode::Wal { dir: dir.clone() },
                None => ajx_storage::PersistMode::InMemory,
            },
            ..NetworkConfig::default()
        },
    );
    let net = cluster.network().clone();
    net.faults().set_seed(opts.seed);
    net.faults().set_tracing(true);
    net.faults().set_default_link(opts.link);

    let rec: Arc<Recorder<Vec<u8>>> = Recorder::new();
    let mut rng = opts.seed ^ 0xA5A5_5A5A_1234_8765;
    let mut report = ChaosReport::default();
    let n = cfg.n();
    let k = cfg.k();
    // Nodes that lost data (crashed) and have not been through a verified
    // full repair yet. A node the directory already remapped is up but
    // holds garbage until per-stripe recovery runs, so crashing another
    // node is only safe while this set stays within the erasure budget.
    let mut wounded: BTreeSet<u32> = BTreeSet::new();
    // Stripes with a write that failed indeterminately and has not been
    // repaired since. Each stranded write is a §4 client failure: its adds
    // may have reached only some redundant nodes, and stacking a second
    // divergence (another strand, or wiping a data node) on the same
    // stripe can push it past what `find_consistent` can reconcile. The
    // nemesis therefore refuses to crash nodes while strands are open, and
    // the driver repairs strands promptly — the paper's assumption that
    // failures are repaired faster than they accumulate (§3.10).
    let mut stranded: BTreeSet<u64> = BTreeSet::new();
    let mut touched: BTreeSet<u64> = BTreeSet::new();
    // Durable mode: how many nodes were down at the last round boundary
    // and are owed a repair-crew visit this round.
    let mut repair_pending: usize = 0;

    for round in 0..opts.rounds {
        net.faults().note(format!("round {round}"));
        // Durable mode has no auto-remap, so the repair crew must be
        // prompt (§3.10's assumption that failures are repaired faster
        // than they accumulate — seed scans confirm that letting a node
        // stay down for many rounds stacks unreconcilable divergence).
        // Every node that was still down at the previous round boundary
        // gets repaired now; a seeded coin decides whether power returned
        // (restart with the journal) or the crew wiped and remapped it.
        for _ in 0..std::mem::take(&mut repair_pending) {
            let ev = if splitmix64(&mut rng).is_multiple_of(2) {
                NemesisEvent::RestartWithDisk
            } else {
                NemesisEvent::Remap
            };
            apply_nemesis(&cluster, ev, &mut rng, &mut wounded, &stranded, n, k);
        }
        if chance(&mut rng, opts.nemesis_p) {
            let ev = EVENTS[(splitmix64(&mut rng) % EVENTS.len() as u64) as usize];
            let applied =
                apply_nemesis(&cluster, ev, &mut rng, &mut wounded, &stranded, n, k);
            if applied {
                report.nemesis_events += 1;
            }
            // A Remap draw is the repair crew arriving. With `auto_remap`
            // on (the default), client traffic usually remaps a crashed
            // node before the nemesis does — the node is up but INIT for
            // every stripe it held — so the draw itself rarely "applies";
            // what matters is whether wiped nodes are outstanding. Drive
            // the batched rebuild engine over the touched stripes — the
            // same thing a real deployment runs after a disk replacement
            // — rotating the rebuilding client like the repair duty
            // below. Failures are tolerated here (the monitor sweep and
            // epilogue still heal), but the attempt itself is part of the
            // deterministic trace.
            if ev == NemesisEvent::Remap
                && (applied || !wounded.is_empty())
                && !touched.is_empty()
            {
                let stripes: Vec<StripeId> = touched
                    .iter()
                    .map(|&lb| StripeId(lb / k as u64))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let rebuilder =
                    cluster.client((round % cluster.n_clients() as u64) as usize);
                match rebuilder.rebuild_stripes(&stripes) {
                    Ok(r) => {
                        net.faults().note(format!(
                            "nemesis rebuild: {} stripes, {} rebuilt, {} recovered, {} skipped",
                            r.stripes, r.rebuilt, r.recovered, r.skipped
                        ));
                        // Every touched stripe verified or repaired: the
                        // failure budget is whole again (same contract as
                        // a successful monitor sweep).
                        wounded.clear();
                        stranded.clear();
                    }
                    Err(e) => {
                        net.faults().note(format!("nemesis rebuild -> err {e}"));
                    }
                }
            }
        }

        // Repair duty first: re-attempt recovery of stranded stripes,
        // rotating the repairing client so a partition pinning one client
        // off a node does not pin the stripe broken. (Fig. 4/5: any client
        // that stumbles on a broken stripe recovers it.)
        let repairer = cluster.client((round % cluster.n_clients() as u64) as usize);
        let repaired: Vec<u64> = stranded
            .iter()
            .copied()
            .filter(|&s| repairer.recover_stripe(StripeId(s)).is_ok())
            .collect();
        for s in repaired {
            stranded.remove(&s);
        }

        for c in 0..cluster.n_clients() {
            let client = cluster.client(c);
            for _ in 0..opts.ops_per_round {
                let lb = splitmix64(&mut rng) % opts.blocks;
                // Run length: 1 for the classic single-block harness, or a
                // drawn length through the batched multi-block data path.
                let run = if opts.max_run > 1 {
                    (1 + splitmix64(&mut rng) % opts.max_run).min(opts.blocks - lb)
                } else {
                    1
                };
                let lbs: Vec<u64> = (lb..lb + run).collect();
                if (splitmix64(&mut rng) % 100) < u64::from(opts.read_pct) {
                    // Each block of the run is its own operation in the
                    // history; a failed batched read fails them all (and
                    // constrains nothing).
                    let ps: Vec<_> = lbs.iter().map(|_| rec.invoke()).collect();
                    match client.read_blocks(&lbs) {
                        Ok(vs) => {
                            net.faults().note(format!(
                                "op c{c} read lb{lb}+{run} -> {}",
                                vs[0].first().copied().unwrap_or(0)
                            ));
                            for ((&b, p), v) in lbs.iter().zip(ps).zip(vs) {
                                rec.complete_read(b, client.id().0, p, nonzero(v));
                            }
                            report.ops_ok += run;
                        }
                        Err(e) => {
                            net.faults()
                                .note(format!("op c{c} read lb{lb}+{run} -> err {e}"));
                            report.reads_failed += run;
                        }
                    }
                } else {
                    // Fills are 1..=255: the all-zeros block stays reserved
                    // for "initial value" in the history. Each block of the
                    // run gets a distinct fill so the regularity check can
                    // tell them apart.
                    let fill = (splitmix64(&mut rng) % 255) as u8 + 1;
                    let values: Vec<Vec<u8>> = (0..run)
                        .map(|x| {
                            vec![(fill.wrapping_add(x as u8)).max(1); cfg.block_size]
                        })
                        .collect();
                    touched.extend(&lbs);
                    let ps: Vec<_> = lbs.iter().map(|_| rec.invoke()).collect();
                    let writes: Vec<(u64, &[u8])> = lbs
                        .iter()
                        .zip(&values)
                        .map(|(&b, v)| (b, v.as_slice()))
                        .collect();
                    match client.write_blocks(&writes) {
                        Ok(()) => {
                            net.faults().note(format!(
                                "op c{c} write lb{lb}+{run} fill {fill} -> ok"
                            ));
                            for ((&b, p), v) in lbs.iter().zip(ps).zip(values) {
                                rec.complete_write(b, client.id().0, p, v);
                            }
                            report.ops_ok += run;
                        }
                        Err(e) => {
                            net.faults().note(format!(
                                "op c{c} write lb{lb}+{run} fill {fill} -> indet {e}"
                            ));
                            // Per-block atomicity means any block of the
                            // run may or may not have landed — fold each in
                            // as forever-concurrent (the conservative,
                            // regularity-sound reading), and repair every
                            // touched stripe.
                            for ((&b, p), v) in lbs.iter().zip(ps).zip(values) {
                                rec.complete_write_indeterminate(b, client.id().0, p, v);
                            }
                            report.writes_indeterminate += run;
                            let stripes: BTreeSet<u64> =
                                lbs.iter().map(|&b| b / k as u64).collect();
                            for stripe in stripes {
                                if client.recover_stripe(StripeId(stripe)).is_err() {
                                    stranded.insert(stripe);
                                }
                            }
                        }
                    }
                }
            }
        }

        if opts.gc_every != 0 && (round + 1) % opts.gc_every == 0 {
            // Busy/unreachable nodes are retried next cycle; an aborted
            // cycle keeps its bookkeeping (the satellite-1 guarantee).
            let _ = cluster.client(0).collect_garbage();
        }
        if opts.monitor_every != 0 && (round + 1) % opts.monitor_every == 0 {
            let stripes: Vec<StripeId> = touched
                .iter()
                .map(|&lb| StripeId(lb / k as u64))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if cluster.client(0).monitor(&stripes, opts.stale_age).is_ok() {
                // Every touched stripe was probed, and every INIT node and
                // stale write among them repaired: the failure budget is
                // whole again.
                wounded.clear();
                stranded.clear();
            }
        }
        if opts.durable {
            repair_pending = (0..n as u32)
                .filter(|&t| !net.node_is_up(NodeId(t)))
                .count();
        }
    }

    // Repair epilogue: heal the network, resurrect anything still down,
    // recover every touched stripe, then check.
    net.faults().clear();
    net.faults().set_tracing(false);
    for t in 0..n {
        let node = NodeId(t as u32);
        if !net.node_is_up(node) {
            cluster.remap_storage_node(node);
        }
    }
    // The chaos phase can strand recovery locks: a recovery that gave up
    // under partition sends best-effort unlocks, and the network can eat
    // those too. With traffic quiesced, any lock still held belongs to a
    // recovery that went silent — exactly what the paper's fail-stop
    // detector is for (§2, Fig. 6 line 34). Expire them so the repair
    // sweep does not lose the race to ghosts forever.
    for c in 0..opts.n_clients {
        net.notify_client_failure(ClientId(c as u32));
    }
    let stripes: BTreeSet<u64> = touched.iter().map(|&lb| lb / k as u64).collect();
    for &s in &stripes {
        match cluster.client(0).recover_stripe(StripeId(s)) {
            Ok(()) => report.recovered_stripes += 1,
            Err(e) => report.violations.push(format!(
                "final recovery of stripe {s} failed: {e} [{}]",
                cluster.stripe_forensics(StripeId(s))
            )),
        }
    }
    for &lb in &touched {
        let p = rec.invoke();
        match cluster.client(0).read_block(lb) {
            Ok(v) => rec.complete_read(lb, cluster.client(0).id().0, p, nonzero(v)),
            Err(e) => report
                .violations
                .push(format!("final read of block {lb} failed: {e}")),
        }
    }
    for &s in &stripes {
        if !cluster.stripe_is_consistent(StripeId(s)) {
            report
                .violations
                .push(format!("stripe {s} violates the erasure equation"));
        }
    }
    let history = rec.take_history();
    report.history_len = history.len();
    if let Err(v) = check_regular(&history) {
        report.violations.push(v.to_string());
    }
    report.trace = net.faults().take_trace();
    if let Some(dir) = wal_dir {
        std::fs::remove_dir_all(dir).ok();
    }
    report
}

/// `None` for the all-zeros (initial-value) block, `Some` otherwise.
fn nonzero(v: Vec<u8>) -> Option<Vec<u8>> {
    if v.iter().all(|&b| b == 0) {
        None
    } else {
        Some(v)
    }
}

/// Applies one nemesis event, respecting the `n − k` erasure budget for
/// crashes. Returns whether anything actually happened.
fn apply_nemesis(
    cluster: &Cluster,
    ev: NemesisEvent,
    rng: &mut u64,
    wounded: &mut BTreeSet<u32>,
    stranded: &BTreeSet<u64>,
    n: usize,
    k: usize,
) -> bool {
    let net = cluster.network();
    match ev {
        NemesisEvent::Crash => {
            if wounded.len() >= n - k || !stranded.is_empty() {
                // Budget exhausted, or a stranded write's divergence is
                // still unrepaired — wiping a node on top of either can
                // exceed what the erasure code tolerates (§4).
                return false;
            }
            let victim = (splitmix64(rng) % n as u64) as u32;
            if wounded.contains(&victim) {
                return false;
            }
            wounded.insert(victim);
            net.faults().note(format!("nemesis crash s{victim}"));
            cluster.crash_storage_node(NodeId(victim));
            true
        }
        NemesisEvent::Remap => {
            let Some(down) = (0..n as u32).find(|&t| !net.node_is_up(NodeId(t))) else {
                return false;
            };
            net.faults().note(format!("nemesis remap s{down}"));
            cluster.remap_storage_node(NodeId(down));
            true
        }
        NemesisEvent::PartitionReq => {
            let c = (splitmix64(rng) % cluster.n_clients() as u64) as u32;
            let s = (splitmix64(rng) % n as u64) as u32;
            net.faults().partition_requests(ClientId(c), NodeId(s));
            true
        }
        NemesisEvent::PartitionReply => {
            let c = (splitmix64(rng) % cluster.n_clients() as u64) as u32;
            let s = (splitmix64(rng) % n as u64) as u32;
            net.faults().partition_replies(ClientId(c), NodeId(s));
            true
        }
        NemesisEvent::HealPartitions => {
            net.faults().heal_partitions();
            true
        }
        NemesisEvent::Slowdown => {
            let s = (splitmix64(rng) % n as u64) as u32;
            net.faults().set_node_slowdown(NodeId(s), Duration::from_micros(100));
            true
        }
        NemesisEvent::RestartWithDisk => {
            let Some(down) = (0..n as u32).find(|&t| !net.node_is_up(NodeId(t))) else {
                return false;
            };
            if !cluster.restart_storage_node_with_disk(NodeId(down)) {
                // No journal behind this node (durable off, or empty log).
                return false;
            }
            net.faults().note(format!("nemesis restart-with-disk s{down}"));
            // Under write-through commits the journal holds everything the
            // node ever acked, so it is back as if the crash never
            // happened — no longer wounded. In-flight writes at crash time
            // failed indeterminately at their clients and stay covered by
            // the stranded-stripe repair duty.
            wounded.remove(&down);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ChaosOptions {
        ChaosOptions {
            rounds: 6,
            ops_per_round: 4,
            blocks: 8,
            // These tests compare traces across runs; keep the deadline
            // well above scheduler-stall scale so load cannot turn one
            // run's slow reply into a spurious timeout.
            call_timeout: Duration::from_millis(30),
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn chaos_run_passes_and_reproduces() {
        let cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        let opts = quick_opts();
        let a = run_chaos(cfg.clone(), &opts);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(a.ops_ok > 0);
        let b = run_chaos(cfg, &opts);
        assert_eq!(a.trace, b.trace, "same seed must replay byte-identically");
        assert_eq!(a.ops_ok, b.ops_ok);
        assert_eq!(a.nemesis_events, b.nemesis_events);
    }

    #[test]
    fn batched_chaos_run_passes_and_reproduces() {
        let cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        let opts = ChaosOptions {
            max_run: 4,
            ..quick_opts()
        };
        let a = run_chaos(cfg.clone(), &opts);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(a.ops_ok > 0);
        let b = run_chaos(cfg, &opts);
        assert_eq!(
            a.trace, b.trace,
            "batched ops must not break trace determinism"
        );
        assert_eq!(a.ops_ok, b.ops_ok);
    }

    #[test]
    fn durable_chaos_run_passes_and_reproduces() {
        let cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        // Seed 5 is chosen so the schedule crashes a node and the repair
        // crew draws the restart-with-disk arm. WAL fsyncs put real disk
        // I/O on the reply path, so under a fully loaded test run a node
        // can stall well past quick_opts' 30 ms deadline — give the
        // trace-equality contract a much wider timeout margin.
        let opts = ChaosOptions {
            durable: true,
            rounds: 10,
            seed: 5,
            call_timeout: Duration::from_millis(100),
            ..quick_opts()
        };
        let a = run_chaos(cfg.clone(), &opts);
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(a.ops_ok > 0);
        assert!(
            a.trace.iter().any(|l| l.contains("restart-with-disk")),
            "pinned seed must exercise the restart-with-disk arm"
        );
        let b = run_chaos(cfg, &opts);
        assert_eq!(
            a.trace, b.trace,
            "journaled nodes must not break trace determinism"
        );
        assert_eq!(a.ops_ok, b.ops_ok);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let cfg = ProtocolConfig::new(2, 4, 16).unwrap();
        let a = run_chaos(cfg.clone(), &quick_opts());
        let b = run_chaos(
            cfg,
            &ChaosOptions {
                seed: 7,
                ..quick_opts()
            },
        );
        assert!(a.violations.is_empty(), "a: {:?}", a.violations);
        assert!(b.violations.is_empty(), "b: {:?}", b.violations);
        assert_ne!(a.trace, b.trace, "seeds must actually steer the run");
    }
}
