//! Closed-loop workload driving for throughput experiments.
//!
//! The paper's clients are "multi-threaded ... at the client, [the number
//! of threads] limits the number of outstanding calls" (§5.1), and Fig. 9
//! sweeps exactly that: outstanding requests per client. [`drive`] spawns
//! `threads` closed-loop workers per client and measures aggregate
//! throughput over a fixed operation count.

use crate::harness::Cluster;
use ajx_core::ProtocolError;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The operation mix a worker thread issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Writes to uniformly random logical blocks in `0..blocks`.
    RandomWrite {
        /// Size of the logical block space.
        blocks: u64,
    },
    /// Reads of uniformly random logical blocks.
    RandomRead {
        /// Size of the logical block space.
        blocks: u64,
    },
    /// A read/write mix (reads with probability `read_pct`/100).
    Mixed {
        /// Size of the logical block space.
        blocks: u64,
        /// Percentage of operations that are reads.
        read_pct: u8,
    },
    /// Sequential writes: each thread walks its own disjoint extent.
    SequentialWrite {
        /// Logical blocks per thread extent.
        extent: u64,
    },
    /// Batched sequential writes: each thread walks its own disjoint
    /// extent in runs of `run` blocks through one
    /// [`Client::write_blocks`](ajx_core::Client::write_blocks) call each
    /// (the multi-stripe coalesced/pipelined data path).
    BatchedWrite {
        /// Logical blocks per thread extent.
        extent: u64,
        /// Blocks per multi-block call.
        run: u64,
    },
    /// Batched reads of `run` consecutive blocks at a uniformly random
    /// start, through one
    /// [`Client::read_blocks`](ajx_core::Client::read_blocks) call each.
    BatchedRead {
        /// Size of the logical block space.
        blocks: u64,
        /// Blocks per multi-block call.
        run: u64,
    },
}

impl Workload {
    /// Logical blocks moved per operation (1 except for batched runs) —
    /// the weight an `Ok` adds to the throughput counters.
    fn blocks_per_op(&self) -> u64 {
        match *self {
            Workload::BatchedWrite { run, .. } => run.max(1),
            Workload::BatchedRead { blocks, run } => run.clamp(1, blocks),
            _ => 1,
        }
    }
}

/// Result of one [`drive`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveReport {
    /// Operations completed.
    pub ops: u64,
    /// Operations that failed (should be zero in failure-free runs).
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Payload bytes moved (ops × block size).
    pub payload_bytes: u64,
}

impl DriveReport {
    /// Aggregate throughput in payload MB/s.
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.payload_bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `ops_per_thread` operations on each of `threads` worker threads per
/// client, across all clients of the cluster, and reports aggregate
/// throughput.
///
/// Worker `(client c, thread t)` uses a deterministic RNG seeded from
/// `seed`, `c` and `t`, so runs are repeatable up to thread scheduling.
pub fn drive(
    cluster: &Cluster,
    threads: usize,
    ops_per_thread: u64,
    workload: Workload,
    seed: u64,
) -> DriveReport {
    let block_size = cluster.config().block_size;
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();

    crossbeam::thread::scope(|scope| {
        for c in 0..cluster.n_clients() {
            let client = cluster.client(c).clone();
            let ops = &ops;
            let errors = &errors;
            for t in 0..threads {
                let client = client.clone();
                scope.spawn(move |_| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        seed ^ (c as u64) << 32 ^ t as u64,
                    );
                    for op_idx in 0..ops_per_thread {
                        let result: Result<(), ProtocolError> = match workload {
                            Workload::RandomWrite { blocks } => {
                                let lb = rng.random_range(0..blocks);
                                let fill = rng.random::<u8>();
                                client.write_block(lb, vec![fill; block_size]).map(|_| ())
                            }
                            Workload::RandomRead { blocks } => {
                                let lb = rng.random_range(0..blocks);
                                client.read_block(lb).map(|_| ())
                            }
                            Workload::Mixed { blocks, read_pct } => {
                                let lb = rng.random_range(0..blocks);
                                if rng.random_range(0..100u8) < read_pct {
                                    client.read_block(lb).map(|_| ())
                                } else {
                                    let fill = rng.random::<u8>();
                                    client.write_block(lb, vec![fill; block_size]).map(|_| ())
                                }
                            }
                            Workload::SequentialWrite { extent } => {
                                let base = (c * threads + t) as u64 * extent;
                                let lb = base + op_idx % extent;
                                let fill = (op_idx % 251) as u8;
                                client.write_block(lb, vec![fill; block_size]).map(|_| ())
                            }
                            Workload::BatchedWrite { extent, run } => {
                                let run = run.clamp(1, extent);
                                let base = (c * threads + t) as u64 * extent;
                                let lb = base + (op_idx * run) % (extent - run + 1);
                                let bufs: Vec<Vec<u8>> = (0..run)
                                    .map(|x| vec![((op_idx + x) % 251) as u8; block_size])
                                    .collect();
                                let writes: Vec<(u64, &[u8])> = bufs
                                    .iter()
                                    .enumerate()
                                    .map(|(x, b)| (lb + x as u64, b.as_slice()))
                                    .collect();
                                client.write_blocks(&writes)
                            }
                            Workload::BatchedRead { blocks, run } => {
                                let run = run.clamp(1, blocks);
                                let lb = rng.random_range(0..=blocks - run);
                                let lbs: Vec<u64> = (lb..lb + run).collect();
                                client.read_blocks(&lbs).map(|_| ())
                            }
                        };
                        match result {
                            Ok(()) => {
                                ops.fetch_add(workload.blocks_per_op(), Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        }
    })
    .expect("workload worker panicked");

    let done = ops.load(Ordering::Relaxed);
    DriveReport {
        ops: done,
        errors: errors.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        payload_bytes: done * block_size as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_core::ProtocolConfig;
    use ajx_storage::StripeId;

    fn small_cluster(clients: usize) -> Cluster {
        Cluster::new(ProtocolConfig::new(2, 4, 16).unwrap(), clients)
    }

    #[test]
    fn random_writes_complete_and_stay_consistent() {
        let c = small_cluster(2);
        let report = drive(&c, 2, 25, Workload::RandomWrite { blocks: 20 }, 42);
        assert_eq!(report.ops, 2 * 2 * 25);
        assert_eq!(report.errors, 0);
        assert!(report.payload_bytes == report.ops * 16);
        for s in 0..10 {
            assert!(c.stripe_is_consistent(StripeId(s)), "stripe {s}");
        }
    }

    #[test]
    fn mixed_workload_runs() {
        let c = small_cluster(1);
        let report = drive(
            &c,
            4,
            25,
            Workload::Mixed {
                blocks: 16,
                read_pct: 50,
            },
            7,
        );
        assert_eq!(report.ops, 100);
        assert_eq!(report.errors, 0);
        assert!(report.ops_per_sec() > 0.0);
        assert!(report.mb_per_sec() > 0.0);
    }

    #[test]
    fn batched_workloads_complete_and_stay_consistent() {
        let c = small_cluster(2);
        let w = drive(&c, 2, 10, Workload::BatchedWrite { extent: 12, run: 4 }, 11);
        assert_eq!(w.errors, 0);
        assert_eq!(w.ops, 2 * 2 * 10 * 4, "ops count blocks moved");
        // 4 worker extents of 12 blocks = stripes 0..24 with k = 2.
        for s in 0..24 {
            assert!(c.stripe_is_consistent(StripeId(s)), "stripe {s}");
        }
        let r = drive(&c, 2, 10, Workload::BatchedRead { blocks: 48, run: 6 }, 12);
        assert_eq!(r.errors, 0);
        assert_eq!(r.ops, 2 * 2 * 10 * 6);
    }

    #[test]
    fn sequential_write_extents_do_not_collide() {
        let c = small_cluster(2);
        let report = drive(&c, 2, 30, Workload::SequentialWrite { extent: 10 }, 3);
        assert_eq!(report.errors, 0);
        // 4 worker extents of 10 blocks = stripes 0..20 with k = 2.
        for s in 0..20 {
            assert!(c.stripe_is_consistent(StripeId(s)), "stripe {s}");
        }
    }
}
