//! The [`Cluster`] type: nodes + clients + fault injection + ground truth.

use ajx_core::{Client, ProtocolConfig};
use ajx_storage::{ClientId, NodeId, OpMode, StripeId};
use ajx_transport::{Network, NetworkConfig};
use std::sync::Arc;
use std::time::Duration;

/// An in-process cluster: `cfg.n()` storage nodes plus a set of protocol
/// clients sharing one simulated network.
pub struct Cluster {
    net: Arc<Network>,
    cfg: ProtocolConfig,
    clients: Vec<Arc<Client>>,
}

impl Cluster {
    /// A cluster with no latency or bandwidth shaping — the configuration
    /// for correctness tests, where wall-clock time is irrelevant.
    pub fn new(cfg: ProtocolConfig, n_clients: usize) -> Self {
        Self::with_network_shaping(cfg, n_clients, Duration::ZERO, None, None)
    }

    /// A cluster with latency and bandwidth shaping — the configuration for
    /// the Fig. 9 throughput experiments.
    ///
    /// `client_bw` / `node_bw` are bytes/second per endpoint NIC.
    pub fn with_network_shaping(
        cfg: ProtocolConfig,
        n_clients: usize,
        one_way_latency: Duration,
        client_bw: Option<u64>,
        node_bw: Option<u64>,
    ) -> Self {
        Self::with_network_config(
            cfg,
            n_clients,
            one_way_latency,
            client_bw,
            node_bw,
            ajx_storage::FlushPolicy::WriteThrough,
        )
    }

    /// Full control, including the nodes' media flush policy (the §3.11
    /// sequential-write coalescing ablation).
    pub fn with_network_config(
        cfg: ProtocolConfig,
        n_clients: usize,
        one_way_latency: Duration,
        client_bw: Option<u64>,
        node_bw: Option<u64>,
        flush_policy: ajx_storage::FlushPolicy,
    ) -> Self {
        Self::with_network(
            cfg,
            n_clients,
            NetworkConfig {
                n_nodes: 0, // overwritten below
                block_size: 0,
                one_way_latency,
                client_bandwidth: client_bw,
                node_bandwidth: node_bw,
                server_threads: 4,
                call_timeout: None,
                code: None,
                flush_policy,
                node_queue_depth: Some(1024),
                state_shards: 8,
                persist: ajx_storage::PersistMode::InMemory,
            },
        )
    }

    /// The most general constructor: an explicit [`NetworkConfig`], with the
    /// node count, block size, and erasure code forced to match `cfg` (the
    /// chaos harness uses this to set `call_timeout` and then drive the
    /// network's [`ajx_transport::FaultPlan`]).
    pub fn with_network(cfg: ProtocolConfig, n_clients: usize, mut net_cfg: NetworkConfig) -> Self {
        net_cfg.n_nodes = cfg.n();
        net_cfg.block_size = cfg.block_size;
        net_cfg.code = Some(cfg.code.clone());
        let net = Network::new(net_cfg);
        let clients = (0..n_clients)
            .map(|i| Arc::new(Client::new(net.client(ClientId(i as u32)), cfg.clone())))
            .collect();
        Cluster { net, cfg, clients }
    }

    /// Total media writes performed across all storage nodes (the §3.11
    /// flush-coalescing instrumentation).
    pub fn total_media_writes(&self) -> u64 {
        (0..self.cfg.n())
            .map(|t| self.net.with_node(NodeId(t as u32), |sn| sn.media_writes()))
            .sum()
    }

    /// Total journal fsyncs charged across all storage nodes (the
    /// DESIGN.md §10 group-commit accounting; always zero on in-memory
    /// backends).
    pub fn total_journal_fsyncs(&self) -> u64 {
        (0..self.cfg.n())
            .map(|t| {
                self.net
                    .with_node(NodeId(t as u32), |sn| sn.persist_stats().fsyncs)
            })
            .sum()
    }

    /// Total lock-related RPCs (`TryLock` / `SetLock` / `GetRecent`)
    /// handled across all storage nodes — the instrumentation behind the
    /// "degraded reads take no locks" guarantee (DESIGN.md §8).
    pub fn total_lock_ops(&self) -> u64 {
        (0..self.cfg.n())
            .map(|t| self.net.with_node(NodeId(t as u32), |sn| sn.lock_ops()))
            .sum()
    }

    /// Flushes any deferred dirty blocks on every node.
    pub fn flush_all_nodes(&self) {
        for t in 0..self.cfg.n() {
            self.net.with_node(NodeId(t as u32), |sn| sn.flush_all());
        }
    }

    /// The protocol configuration shared by all clients.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The shared network (global stats, direct node access).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Client `idx` (panics if out of range).
    pub fn client(&self, idx: usize) -> &Arc<Client> {
        &self.clients[idx]
    }

    /// Fail-stops storage node `node`.
    pub fn crash_storage_node(&self, node: NodeId) {
        self.net.crash_node(node);
    }

    /// Installs a fresh (INIT, garbage-filled) replacement for `node`
    /// (§3.5 directory remap).
    pub fn remap_storage_node(&self, node: NodeId) {
        self.net.remap_node(node, self.cfg.remap_garbage);
    }

    /// Restarts a crashed node from its durable state (restart-with-disk,
    /// DESIGN.md §10). Returns `false` — the node stays down — if it has
    /// no durable backend; wipe-and-rebuild via
    /// [`Cluster::remap_storage_node`] is then the only way back.
    pub fn restart_storage_node_with_disk(&self, node: NodeId) -> bool {
        self.net.restart_node_with_disk(node)
    }

    /// Kills client `idx` after `calls` more RPCs and — once it is dead —
    /// lets the fail-stop detector expire its recovery locks at every node.
    ///
    /// Returns a closure the test calls *after* the victim's operation has
    /// failed, to model detection (the paper's §2: "the node's halted state
    /// can be detected by other nodes").
    pub fn kill_client_after(&self, idx: usize, calls: u64) -> impl FnOnce() -> usize + '_ {
        self.clients[idx].endpoint().kill_after(calls);
        let id = self.clients[idx].id();
        move || self.net.notify_client_failure(id)
    }

    /// Ground truth: decodes `stripe` straight from node memory and checks
    /// that data and redundancy agree — the check a real deployment cannot
    /// afford per-access (§3.4), used here to validate end states.
    ///
    /// Returns `false` if any node is down/INIT/locked or the erasure
    /// equation does not hold.
    pub fn stripe_is_consistent(&self, stripe: StripeId) -> bool {
        let n = self.cfg.n();
        let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(n);
        for t in 0..n {
            let node = NodeId(self.cfg.layout.node_for(stripe.0, t) as u32);
            if !self.net.node_is_up(node) {
                return false;
            }
            let block = self.net.with_node(node, |sn| {
                sn.block_state(stripe).map(|b| {
                    (b.opmode() == OpMode::Norm).then(|| b.raw_block().to_vec())
                })
            });
            match block {
                // Never-touched stripe-blocks are implicitly zero.
                None => blocks.push(vec![0; self.cfg.block_size]),
                Some(Some(b)) => blocks.push(b),
                Some(None) => return false,
            }
        }
        self.cfg.code.verify_stripe(&blocks).unwrap_or(false)
    }

    /// One line per in-stripe index describing `stripe`'s state at each
    /// node — up/down, op mode, lock mode, epoch, list sizes — for failure
    /// diagnostics in chaos runs and tests.
    pub fn stripe_forensics(&self, stripe: StripeId) -> String {
        (0..self.cfg.n())
            .map(|t| {
                let node = NodeId(self.cfg.layout.node_for(stripe.0, t) as u32);
                if !self.net.node_is_up(node) {
                    return format!("t{t}=s{}: DOWN", node.0);
                }
                self.net.with_node(node, |sn| match sn.block_state(stripe) {
                    None => format!("t{t}=s{}: no block", node.0),
                    Some(b) => format!(
                        "t{t}=s{}: {:?}/{:?} epoch {} pending {}",
                        node.0,
                        b.opmode(),
                        b.lmode(),
                        b.epoch().0,
                        b.pending_tids(),
                    ),
                })
            })
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// The raw contents of every block of `stripe` (None = node down),
    /// for forensic assertions in tests.
    pub fn raw_stripe(&self, stripe: StripeId) -> Vec<Option<Vec<u8>>> {
        (0..self.cfg.n())
            .map(|t| {
                let node = NodeId(self.cfg.layout.node_for(stripe.0, t) as u32);
                if !self.net.node_is_up(node) {
                    return None;
                }
                Some(self.net.with_node(node, |sn| {
                    sn.block_state(stripe)
                        .map(|b| b.raw_block().to_vec())
                        .unwrap_or_else(|| vec![0; self.cfg.block_size])
                }))
            })
            .collect()
    }

    /// Total protocol metadata bytes across all storage nodes (§6.5).
    pub fn total_metadata_bytes(&self) -> usize {
        (0..self.cfg.n())
            .map(|t| self.net.with_node(NodeId(t as u32), |sn| sn.metadata_bytes()))
            .sum()
    }

    /// Total stripe-blocks materialized across all storage nodes.
    pub fn total_resident_blocks(&self) -> usize {
        (0..self.cfg.n())
            .map(|t| self.net.with_node(NodeId(t as u32), |sn| sn.resident_blocks()))
            .sum()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("k", &self.cfg.k())
            .field("n", &self.cfg.n())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(k: usize, n: usize, clients: usize) -> Cluster {
        Cluster::new(ProtocolConfig::new(k, n, 32).unwrap(), clients)
    }

    #[test]
    fn fresh_cluster_stripes_are_consistent() {
        let c = cluster(2, 4, 1);
        assert!(c.stripe_is_consistent(StripeId(0)));
        assert!(c.stripe_is_consistent(StripeId(77)));
    }

    #[test]
    fn write_then_ground_truth_check() {
        let c = cluster(3, 5, 1);
        c.client(0).write_block(0, vec![9; 32]).unwrap();
        c.client(0).write_block(1, vec![8; 32]).unwrap();
        let stripe = StripeId(0);
        assert!(c.stripe_is_consistent(stripe));
        let raw = c.raw_stripe(stripe);
        assert_eq!(raw[0].as_deref(), Some(&[9u8; 32][..]));
        assert_eq!(raw[1].as_deref(), Some(&[8u8; 32][..]));
    }

    #[test]
    fn crashed_node_breaks_ground_truth_until_recovery() {
        let c = cluster(2, 4, 1);
        c.client(0).write_block(0, vec![1; 32]).unwrap();
        c.crash_storage_node(NodeId(0));
        assert!(!c.stripe_is_consistent(StripeId(0)));
        // A read of block 0 (placed on node 0 for stripe 0) is served by
        // the lock-free degraded path: correct data, no lock RPCs, and the
        // stripe deliberately stays degraded (the rebuild engine repairs
        // it in bulk rather than every reader racing to recover).
        let locks_before = c.total_lock_ops();
        let v = c.client(0).read_block(0).unwrap();
        assert_eq!(v, vec![1; 32]);
        assert_eq!(c.total_lock_ops(), locks_before, "degraded read locked");
        assert!(!c.stripe_is_consistent(StripeId(0)));
        // Explicit recovery repairs the stripe.
        c.client(0).recover_stripe(StripeId(0)).unwrap();
        assert!(c.stripe_is_consistent(StripeId(0)));
    }

    #[test]
    fn degraded_reads_off_falls_back_to_read_triggered_recovery() {
        let mut cfg = ProtocolConfig::new(2, 4, 32).unwrap();
        cfg.degraded_reads = false;
        let c = Cluster::new(cfg, 1);
        c.client(0).write_block(0, vec![1; 32]).unwrap();
        c.crash_storage_node(NodeId(0));
        let v = c.client(0).read_block(0).unwrap();
        assert_eq!(v, vec![1; 32]);
        assert!(c.stripe_is_consistent(StripeId(0)));
    }

    #[test]
    fn metadata_accounting_is_visible() {
        let c = cluster(2, 4, 1);
        c.client(0).write_block(0, vec![1; 32]).unwrap();
        assert!(c.total_metadata_bytes() > 0);
        assert!(c.total_resident_blocks() >= 3); // data node + 2 redundant
    }
}
