//! The rule implementations.
//!
//! Each rule is a pure function from a [`FileModel`] (or a set of them) to
//! raw findings; scoping — which files each rule runs on — lives in
//! [`crate::engine`], and `LINT-ALLOW` resolution happens there too, so
//! rules never need to know about the allowlist.

use crate::ast::{FileModel, FnSpan};
use crate::lexer::{Tok, Token};
use std::collections::HashMap;

/// A finding before allowlist resolution: rule id, line, and message.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Stable rule identifier (used in `LINT-ALLOW(<rule>: …)`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub msg: String,
}

fn finding(rule: &'static str, line: u32, msg: String) -> RawFinding {
    RawFinding { rule, line, msg }
}

// ---------------------------------------------------------------------------
// Rule 1: determinism

/// Identifier patterns that read ambient wall-clock time or entropy —
/// poison for the byte-identical-trace contract of the chaos, power-loss,
/// and fault-plan machinery.
const CLOCK_AND_ENTROPY: &[(&[&str], &str)] = &[
    (&["Instant", "now"], "`Instant::now` reads the wall clock"),
    (&["SystemTime"], "`SystemTime` reads the wall clock"),
    (&["thread_rng"], "`thread_rng` draws ambient entropy"),
    (&["from_entropy"], "`from_entropy` seeds from ambient entropy"),
    (&["rand", "random"], "`rand::random` draws ambient entropy"),
];

/// No wall-clock or ambient-entropy reads in deterministic-replay code:
/// the seeded chaos/power-loss harnesses assert byte-identical traces
/// across runs, which a single `Instant::now` or `thread_rng` silently
/// breaks.
pub fn determinism(m: &FileModel, out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    let mut in_use = false;
    for i in 0..toks.len() {
        // Importing a name is not using it: skip `use …;` declarations so
        // a shared import list doesn't double-report every call site.
        if toks[i].is_ident("use") {
            in_use = true;
        } else if in_use {
            if toks[i].is_punct(';') {
                in_use = false;
            }
            continue;
        }
        if m.is_test_code(i) {
            continue;
        }
        for (pat, why) in CLOCK_AND_ENTROPY {
            if matches_path(toks, i, pat) {
                out.push(finding(
                    "determinism",
                    toks[i].line,
                    format!("{why}; deterministic-replay code must take time/randomness from its seeded plan"),
                ));
            }
        }
    }
}

/// Whether the identifier path `pat` (segments separated by `::`) starts at
/// token `i`.
fn matches_path(toks: &[Token], i: usize, pat: &[&str]) -> bool {
    let mut at = i;
    for (seg_idx, seg) in pat.iter().enumerate() {
        if !toks.get(at).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        at += 1;
        if seg_idx + 1 < pat.len() {
            if !(toks.get(at).is_some_and(|t| t.is_punct(':'))
                && toks.get(at + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            at += 2;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Rule 2: panic-freedom

/// Rust keywords that may directly precede a `[` without forming an index
/// expression (`let [a, b] = …`, `if [x] == …`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "move", "static",
    "const", "break", "continue", "for", "where", "as", "dyn", "impl", "fn", "use", "pub",
];

/// No panics on node request-handling and WAL-replay paths: a panic there
/// is an un-modeled node failure the §3.5 recovery protocol never sees.
/// Flags `.unwrap()`, `.expect(…)`, the panicking macros, and (when
/// `check_indexing`) slice/array index expressions, which panic out of
/// bounds.
pub fn panic_free(m: &FileModel, check_indexing: bool, out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    for i in 0..toks.len() {
        if m.is_test_code(i) {
            continue;
        }
        let t = &toks[i];
        if let Some(id) = t.ident() {
            match id {
                "unwrap" | "expect"
                    if i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push(finding(
                        "panic-free",
                        t.line,
                        format!("`.{id}()` panics on the request/replay path; return an error or recover instead"),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    out.push(finding(
                        "panic-free",
                        t.line,
                        format!("`{id}!` on the request/replay path is an un-modeled node failure"),
                    ));
                }
                _ => {}
            }
        } else if check_indexing && t.is_punct('[') && i > 0 {
            let indexes = match &toks[i - 1].kind {
                Tok::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
                Tok::Punct(')') | Tok::Punct(']') => true,
                _ => false,
            };
            if indexes {
                out.push(finding(
                    "panic-free",
                    t.line,
                    "index expression panics out of bounds; use `.get()` or prove the bound with a LINT-ALLOW"
                        .to_owned(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe hygiene

/// Every `unsafe` block, fn, or impl must carry a `// SAFETY:` comment
/// stating the invariant that makes it sound, and every crate root must
/// pin its unsafe policy with `#![forbid(unsafe_code)]` (or `deny` for the
/// one kernel crate that needs a scoped allow).
pub fn safety_comment(m: &FileModel, out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    // Lines occupied by attributes, which may sit between an `unsafe fn`
    // and its SAFETY comment.
    let attr_lines: std::collections::HashSet<u32> = toks
        .iter()
        .filter(|t| t.is_punct('#'))
        .map(|t| t.line)
        .collect();
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") {
            continue;
        }
        let next = toks.get(i + 1);
        let form = match next.and_then(Token::ident) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ if next.is_some_and(|t| t.is_punct('{')) => "unsafe block",
            // `unsafe` inside an attribute (`#[unsafe(no_mangle)]`) or a
            // signature position we don't model; skip.
            _ => continue,
        };
        if !has_safety_comment(m, toks[i].line, &attr_lines) {
            out.push(finding(
                "safety-comment",
                toks[i].line,
                format!("{form} without a `// SAFETY:` comment stating why it is sound"),
            ));
        }
    }
}

/// Whether a comment containing `SAFETY` is attached above/at `line`,
/// looking through attribute lines (for `#[target_feature] unsafe fn`).
fn has_safety_comment(
    m: &FileModel,
    line: u32,
    attr_lines: &std::collections::HashSet<u32>,
) -> bool {
    // Walk upward over comment-only and attribute lines, starting at the
    // unsafe token's own line.
    let mut probe = line;
    loop {
        for c in &m.comments {
            if probe >= c.line && probe <= c.end_line && is_safety_text(&c.text) {
                return true;
            }
        }
        if probe == 0 {
            return false;
        }
        let above = probe - 1;
        let above_is_comment_only = !m.code_lines.contains(&above)
            && m.comments.iter().any(|c| above >= c.line && above <= c.end_line);
        let above_is_attr = attr_lines.contains(&above);
        if above_is_comment_only || above_is_attr {
            probe = above;
        } else {
            return false;
        }
    }
}

fn is_safety_text(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

/// Checks that a crate root (`lib.rs`) pins its unsafe policy.
pub fn unsafe_policy_attr(m: &FileModel, out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    let mut found = false;
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks
                .get(i + 3)
                .and_then(Token::ident)
                .is_some_and(|id| id == "forbid" || id == "deny")
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            found = true;
            break;
        }
    }
    if !found {
        out.push(finding(
            "safety-comment",
            1,
            "crate root must declare `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` with scoped allows)"
                .to_owned(),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 4: lock ordering

/// Every shard-lock acquisition must route through the ascending-order
/// helpers (`lock_shard` / `lock_all_shards`), which feed the
/// `debug_assertions` lock-order watchdog. A raw `self.shards[…].lock()`
/// anywhere else can deadlock against the batch path's ascending protocol.
pub fn lock_order(m: &FileModel, field: &str, allowed_fns: &[&str], out: &mut Vec<RawFinding>) {
    let toks = &m.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident(field) {
            continue;
        }
        // Look a short window ahead for a `.lock(` / `.try_lock(` applied
        // to this expression.
        let window = &toks[i..toks.len().min(i + 14)];
        let locks = window.windows(3).any(|w| {
            w[0].is_punct('.')
                && w[1]
                    .ident()
                    .is_some_and(|id| id == "lock" || id == "try_lock")
                && w[2].is_punct('(')
        });
        if !locks {
            continue;
        }
        let enclosing = m.enclosing_fn(i).map(|f| f.name.as_str());
        if enclosing.is_none_or(|f| !allowed_fns.contains(&f)) {
            out.push(finding(
                "lock-order",
                toks[i].line,
                format!(
                    "raw lock on `{field}` outside {allowed_fns:?}; route through the ascending-order helpers"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: codec exhaustiveness

/// One place a protocol enum must be exhaustively handled.
pub struct CodecSite {
    /// Which enum this site must cover (`Request` / `Reply`).
    pub enum_name: &'static str,
    /// File the function lives in (workspace-relative path suffix).
    pub file: &'static str,
    /// `impl` target the function is defined on, if any.
    pub impl_of: Option<&'static str>,
    /// Function name.
    pub fn_name: &'static str,
    /// Human description for messages.
    pub what: &'static str,
}

/// The sites where every `Request`/`Reply` variant must appear: the wire
/// accounting, the WAL codec (both directions), the journaling classifier,
/// and the idempotence classifier. A variant missing from any of these is
/// how "added a request, forgot persistence" becomes silent data loss.
pub const CODEC_SITES: &[CodecSite] = &[
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/node.rs",
        impl_of: Some("Request"),
        fn_name: "is_idempotent",
        what: "idempotence classifier",
    },
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/node.rs",
        impl_of: Some("Request"),
        fn_name: "wire_bytes",
        what: "request wire accounting",
    },
    CodecSite {
        enum_name: "Reply",
        file: "crates/storage/src/node.rs",
        impl_of: Some("Reply"),
        fn_name: "wire_bytes",
        what: "reply wire accounting",
    },
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/persist.rs",
        impl_of: None,
        fn_name: "encode_request",
        what: "WAL journal encoder",
    },
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/persist.rs",
        impl_of: None,
        fn_name: "decode_request",
        what: "WAL journal decoder",
    },
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/shard.rs",
        impl_of: None,
        fn_name: "is_journaled",
        what: "WAL journaling classifier",
    },
    CodecSite {
        enum_name: "Request",
        file: "crates/storage/src/node.rs",
        impl_of: Some("Request"),
        fn_name: "payload_bytes",
        what: "request payload accounting",
    },
    CodecSite {
        enum_name: "Reply",
        file: "crates/storage/src/node.rs",
        impl_of: Some("Reply"),
        fn_name: "payload_bytes",
        what: "reply payload accounting",
    },
];

/// File that defines the protocol enums.
pub const CODEC_ENUM_FILE: &str = "crates/storage/src/node.rs";

/// Every `Request`/`Reply` variant must be named in every codec site, so
/// adding a variant without teaching persistence/wire/idempotence about it
/// is a lint failure instead of a latent data-loss bug.
///
/// Findings are attributed to the file containing the offending site.
pub fn codec_exhaustive(
    models: &HashMap<String, FileModel>,
    out: &mut Vec<(String, RawFinding)>,
) {
    let find_model = |suffix: &str| models.iter().find(|(p, _)| p.ends_with(suffix));
    let Some((enum_path, enum_model)) = find_model(CODEC_ENUM_FILE) else {
        return; // enum file not in this scan (fixture runs)
    };
    let enums = crate::ast::enum_map(enum_model);
    for site in CODEC_SITES {
        let Some(spec) = enums.get(site.enum_name) else {
            out.push((
                enum_path.clone(),
                finding(
                    "codec-exhaustive",
                    1,
                    format!("protocol enum `{}` not found in {}", site.enum_name, CODEC_ENUM_FILE),
                ),
            ));
            continue;
        };
        let Some((path, model)) = find_model(site.file) else {
            continue; // site file not in this scan (fixture runs)
        };
        let Some(body) = model.fn_body(site.impl_of, site.fn_name) else {
            out.push((
                path.clone(),
                finding(
                    "codec-exhaustive",
                    1,
                    format!(
                        "{} `{}` not found in {} — the exhaustiveness gate lost its anchor",
                        site.what, site.fn_name, site.file
                    ),
                ),
            ));
            continue;
        };
        let body_toks = &model.tokens[body.0..body.1];
        let fn_line = model.tokens[body.0].line;
        for variant in &spec.variants {
            let present = body_toks.iter().any(|t| t.is_ident(variant));
            if !present {
                out.push((
                    path.clone(),
                    finding(
                        "codec-exhaustive",
                        fn_line,
                        format!(
                            "`{}::{}` is not handled by the {} (`{}`); a {} without it silently loses data",
                            site.enum_name, variant, site.what, site.fn_name, site.enum_name
                        ),
                    ),
                ));
            }
        }
    }
}

/// Helper for messages: the span of a function, for diagnostics.
pub fn fn_line(model: &FileModel, f: &FnSpan) -> u32 {
    model.tokens[f.kw_idx].line
}
