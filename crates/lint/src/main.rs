//! CLI for `ajx-lint`.
//!
//! Usage: `ajx-lint [--root PATH] [--summary]`
//!
//! Lints every `.rs` file under `<root>/crates/` (excluding `target/`
//! and lint fixtures) and exits non-zero if any finding survives the
//! allowlist. `--summary` prints the stable per-rule counts that
//! `tools/lint_baseline.sh` records and diffs.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut summary_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("ajx-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--summary" => summary_only = true,
            "--help" | "-h" => {
                println!("ajx-lint [--root PATH] [--summary]");
                println!("  Checks repo invariants: {}", ajx_lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ajx-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // If invoked from a subdirectory (e.g. via `cargo run -p ajx-lint`
    // with a custom cwd), walk up to the workspace root.
    if !root.join("crates").is_dir() {
        let mut probe = root.clone();
        while let Some(parent) = probe.parent().map(PathBuf::from) {
            if parent.join("crates").is_dir() && parent.join("Cargo.toml").is_file() {
                root = parent;
                break;
            }
            if parent == probe {
                break;
            }
            probe = parent;
        }
    }

    let report = match ajx_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ajx-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if summary_only {
        print!("{}", report.summary());
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
    }
    println!(
        "ajx-lint: {} files, {} findings, {} allows in use",
        report.files_scanned,
        report.findings.len(),
        report.total_allows()
    );
    for rule in ajx_lint::RULES {
        let f = report.finding_counts.get(*rule).copied().unwrap_or(0);
        let a = report.allows.get(*rule).copied().unwrap_or(0);
        println!("  {rule:<16} findings {f:>3}  allows {a:>3}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
