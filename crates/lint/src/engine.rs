//! Scoping, allowlist resolution, and reporting.
//!
//! The engine decides which rules run on which files (scopes are
//! workspace-relative path prefixes), resolves `// LINT-ALLOW(rule:
//! reason)` escape hatches against raw findings, and flags stale or
//! malformed allows so the allowlist can never rot silently.

use crate::ast::FileModel;
use crate::rules::{self, RawFinding};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// Every rule id the tool knows, in report order.
pub const RULES: &[&str] = &[
    "determinism",
    "panic-free",
    "safety-comment",
    "lock-order",
    "codec-exhaustive",
    "lint-allow",
];

/// Crates/paths reachable from the seeded chaos, power-loss, and
/// fault-plan machinery, where byte-identical replay is asserted. The
/// cluster's `workload.rs`/`harness.rs` and `transport/src/bucket.rs`
/// measure real elapsed time by design and stay out of scope; the
/// transport's `network.rs` uses the wall clock only for deadline pacing,
/// which the deterministic fault plan fates before timing matters.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/gf/src/",
    "crates/erasure/src/",
    "crates/storage/src/",
    "crates/consistency/src/",
    "crates/sim/src/",
    "crates/transport/src/fault.rs",
    "crates/cluster/src/chaos.rs",
    "crates/cluster/src/powerloss.rs",
];

/// Node request-handling and WAL-replay paths: a panic here is an
/// un-modeled node failure (§3.5 recovery never observes it).
const PANIC_FREE_SCOPE: &[&str] = &[
    "crates/storage/src/node.rs",
    "crates/storage/src/state.rs",
    "crates/storage/src/shard.rs",
    "crates/storage/src/persist.rs",
    "crates/transport/src/network.rs",
];

/// Everything under `crates/` must keep `unsafe` documented; vendored
/// `shims/` are third-party-shaped and all `#![forbid(unsafe_code)]`.
const SAFETY_SCOPE: &[&str] = &["crates/"];

/// The sharded node: all shard-lock acquisitions route through the
/// ascending-order helpers that feed the lock-order watchdog.
const LOCK_ORDER_FILE: &str = "crates/storage/src/shard.rs";
const LOCK_ORDER_FIELD: &str = "shards";
const LOCK_ORDER_HELPERS: &[&str] = &["lock_shard", "lock_all_shards"];

/// A resolved finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// Description.
    pub msg: String,
}

/// The result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings that survived allowlist resolution (the gate fails on any).
    pub findings: Vec<Finding>,
    /// Used `LINT-ALLOW` count per rule.
    pub allows: BTreeMap<String, u32>,
    /// Finding count per rule (post-allowlist).
    pub finding_counts: BTreeMap<String, u32>,
}

impl Report {
    /// Whether the tree is clean (zero unallowed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Total used allows across rules.
    pub fn total_allows(&self) -> u32 {
        self.allows.values().sum()
    }

    /// Stable machine-readable summary (one line per rule + total), the
    /// format `tools/lint_baseline.sh` diffs against.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for rule in RULES {
            let f = self.finding_counts.get(*rule).copied().unwrap_or(0);
            let a = self.allows.get(*rule).copied().unwrap_or(0);
            out.push_str(&format!("rule {rule} findings {f} allows {a}\n"));
        }
        out.push_str(&format!(
            "total findings {} allows {}\n",
            self.findings.len(),
            self.total_allows()
        ));
        out
    }
}

/// One parsed `LINT-ALLOW(rule: reason)` escape hatch.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: u32,
    end_line: u32,
    used: bool,
    malformed: Option<String>,
}

/// The content of a plain (non-doc) `//` line comment, or `None` for doc
/// comments and block comments.
fn plain_line_comment(text: &str) -> Option<&str> {
    let rest = text.trim_start().strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    Some(rest)
}

/// Parses one directive body (the text after `LINT-ALLOW`) into an
/// [`Allow`]. A directive must be a plain comment (or run of plain `//`
/// comments) whose content *starts* with `LINT-ALLOW` — doc comments and
/// prose that merely mention the syntax are not directives.
fn parse_directive(rest: &str, line: u32, end_line: u32) -> Allow {
    let make = |rule: &str, malformed: Option<String>| Allow {
        rule: rule.to_owned(),
        line,
        end_line,
        used: false,
        malformed,
    };
    let Some(open) = rest.strip_prefix('(') else {
        return make("", Some("missing `(rule: reason)`".to_owned()));
    };
    let Some(close) = open.find(')') else {
        return make("", Some("unterminated `(`".to_owned()));
    };
    let body = &open[..close];
    let (rule, reason) = match body.split_once(':') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (body.trim(), ""),
    };
    let malformed = if !RULES.contains(&rule) {
        Some(format!("unknown rule `{rule}`"))
    } else if reason.is_empty() {
        Some("missing reason — write `LINT-ALLOW(rule: why this is sound)`".to_owned())
    } else {
        None
    };
    make(rule, malformed)
}

/// Finds every `LINT-ALLOW` directive in the file. Contiguous runs of
/// plain `//` lines are treated as one logical comment, so a directive
/// may wrap across lines; it must start its run.
fn parse_allows(model: &FileModel) -> Vec<Allow> {
    let mut allows = Vec::new();
    let comments = &model.comments;
    let mut i = 0;
    while i < comments.len() {
        let c = &comments[i];
        if let Some(first) = plain_line_comment(&c.text) {
            // Merge the contiguous run of plain `//` lines.
            let mut text = first.trim().to_owned();
            let mut end = c.end_line;
            let mut j = i + 1;
            while let Some(n) = comments.get(j) {
                match plain_line_comment(&n.text) {
                    Some(b) if n.line == end + 1 => {
                        text.push(' ');
                        text.push_str(b.trim());
                        end = n.end_line;
                        j += 1;
                    }
                    _ => break,
                }
            }
            if let Some(rest) = text.strip_prefix("LINT-ALLOW") {
                allows.push(parse_directive(rest, c.line, end));
            }
            i = j;
        } else {
            // Block comment (doc styles excluded inside the helper).
            let t = c.text.trim_start();
            if let Some(body) = t.strip_prefix("/*") {
                if !body.starts_with('*') && !body.starts_with('!') {
                    let content = body.trim_end().trim_end_matches("*/").trim();
                    if let Some(rest) = content.strip_prefix("LINT-ALLOW") {
                        allows.push(parse_directive(rest, c.line, c.end_line));
                    }
                }
            }
            i += 1;
        }
    }
    allows
}

/// The source line where the statement containing `line`'s first token
/// begins — found by walking back to the nearest statement boundary
/// (`;`, `{`, `}`, or a match-arm/argument `,`). Lets an allow written
/// above a multi-line statement suppress a finding on a continuation
/// line.
fn statement_start_line(model: &FileModel, line: u32) -> u32 {
    let Some(first) = model.tokens.iter().position(|t| t.line == line) else {
        return line;
    };
    let mut i = first;
    while i > 0 {
        let t = &model.tokens[i - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
            break;
        }
        i -= 1;
    }
    model.tokens.get(i).map_or(line, |t| t.line)
}

/// Whether `path` is inside any of the scope prefixes.
fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| path.starts_with(s))
}

/// Lints a set of `(workspace-relative path, contents)` files.
///
/// This is the whole pipeline: model, per-file rules by scope, the
/// cross-file codec rule, allowlist resolution, stale-allow detection.
pub fn lint_files(files: &[(String, String)]) -> Report {
    let models: HashMap<String, FileModel> = files
        .iter()
        .map(|(p, src)| (p.clone(), FileModel::parse(p, src)))
        .collect();

    // Raw findings per file.
    let mut raw: Vec<(String, RawFinding)> = Vec::new();
    for (path, model) in &models {
        if in_scope(path, DETERMINISM_SCOPE) {
            let mut out = Vec::new();
            rules::determinism(model, &mut out);
            raw.extend(out.into_iter().map(|f| (path.clone(), f)));
        }
        if in_scope(path, PANIC_FREE_SCOPE) {
            let mut out = Vec::new();
            rules::panic_free(model, true, &mut out);
            raw.extend(out.into_iter().map(|f| (path.clone(), f)));
        }
        if in_scope(path, SAFETY_SCOPE) {
            let mut out = Vec::new();
            rules::safety_comment(model, &mut out);
            if path.starts_with("crates/") && path.ends_with("/src/lib.rs") {
                rules::unsafe_policy_attr(model, &mut out);
            }
            raw.extend(out.into_iter().map(|f| (path.clone(), f)));
        }
        if path.ends_with(LOCK_ORDER_FILE) || path == LOCK_ORDER_FILE {
            let mut out = Vec::new();
            rules::lock_order(model, LOCK_ORDER_FIELD, LOCK_ORDER_HELPERS, &mut out);
            raw.extend(out.into_iter().map(|f| (path.clone(), f)));
        }
    }
    rules::codec_exhaustive(&models, &mut raw);

    // Allowlist resolution.
    let mut allows_by_file: HashMap<&str, Vec<Allow>> = models
        .keys()
        .map(|p| (p.as_str(), parse_allows(&models[p])))
        .collect();
    let mut report = Report {
        files_scanned: models.len(),
        ..Report::default()
    };
    for rule in RULES {
        report.finding_counts.insert((*rule).to_owned(), 0);
        report.allows.insert((*rule).to_owned(), 0);
    }
    for (path, f) in raw {
        let model = &models[&path];
        let allows = allows_by_file
            .get_mut(path.as_str())
            .expect("every raw finding comes from a modeled file");
        // An allow suppresses the finding if a well-formed LINT-ALLOW for
        // this rule is attached to the finding's line or to the first line
        // of its enclosing statement (same line, or the run of comment-only
        // lines directly above).
        let mut anchors = vec![f.line];
        let stmt = statement_start_line(model, f.line);
        if stmt != f.line {
            anchors.push(stmt);
        }
        let attached: Vec<(u32, u32)> = anchors
            .iter()
            .flat_map(|&l| model.comments_attached_to_line(l))
            .map(|c| (c.line, c.end_line))
            .collect();
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.malformed.is_none()
                && a.rule == f.rule
                && attached.iter().any(|&(s, e)| s >= a.line && e <= a.end_line)
            {
                a.used = true;
                suppressed = true;
                break;
            }
        }
        if suppressed {
            *report.allows.get_mut(f.rule).expect("rule key pre-seeded") += 1;
        } else {
            *report
                .finding_counts
                .get_mut(f.rule)
                .expect("rule key pre-seeded") += 1;
            report.findings.push(Finding {
                path: path.clone(),
                line: f.line,
                rule: f.rule.to_owned(),
                msg: f.msg,
            });
        }
    }
    // Stale and malformed allows are findings: the allowlist must never
    // outlive the violation it was written for.
    for (path, allows) in allows_by_file {
        for a in allows {
            if let Some(why) = a.malformed {
                report.findings.push(Finding {
                    path: path.to_owned(),
                    line: a.line,
                    rule: "lint-allow".to_owned(),
                    msg: format!("malformed LINT-ALLOW: {why}"),
                });
                *report
                    .finding_counts
                    .get_mut("lint-allow")
                    .expect("rule key pre-seeded") += 1;
            } else if !a.used {
                report.findings.push(Finding {
                    path: path.to_owned(),
                    line: a.line,
                    rule: "lint-allow".to_owned(),
                    msg: format!(
                        "stale LINT-ALLOW({}): it suppresses nothing — delete it",
                        a.rule
                    ),
                });
                *report
                    .finding_counts
                    .get_mut("lint-allow")
                    .expect("rule key pre-seeded") += 1;
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Lints the workspace rooted at `root`: every `.rs` file under
/// `root/crates/`, excluding build output and the lint fixtures (which
/// contain deliberate violations).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(&root.join("crates"), root, &mut files)?;
    files.sort();
    let loaded: Vec<(String, String)> = files
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))?;
            Ok((rel, src))
        })
        .collect::<std::io::Result<_>>()?;
    Ok(lint_files(&loaded))
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(path: &str, src: &str) -> Report {
        lint_files(&[(path.to_owned(), src.to_owned())])
    }

    #[test]
    fn scoping_limits_rules_to_their_paths() {
        let src = "fn f() { let t = Instant::now(); }";
        let hit = run_one("crates/storage/src/clock.rs", src);
        assert_eq!(hit.finding_counts["determinism"], 1);
        let miss = run_one("crates/bench/src/lib.rs", src);
        assert_eq!(miss.finding_counts["determinism"], 0);
    }

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // LINT-ALLOW(panic-free: proven Some by caller)\n    x.unwrap()\n}";
        let r = run_one("crates/storage/src/node.rs", src);
        // The codec rule also fires here (node.rs without the enums), so
        // check the panic-free accounting specifically.
        assert_eq!(r.finding_counts["panic-free"], 0);
        assert_eq!(r.allows["panic-free"], 1);
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "// LINT-ALLOW(panic-free: nothing here)\nfn f() {}\n";
        let r = run_one("crates/storage/src/state.rs", src);
        assert_eq!(r.finding_counts["lint-allow"], 1);
        assert!(r.findings.iter().any(|f| f.msg.contains("stale")));
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let src = "fn f(x: Option<u8>) {\n    // LINT-ALLOW(panic-free)\n    x.unwrap();\n}";
        let r = run_one("crates/storage/src/state.rs", src);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "lint-allow" && f.msg.contains("missing reason")));
        // And the unwrap is NOT suppressed by the malformed allow.
        assert_eq!(r.finding_counts["panic-free"], 1);
    }

    #[test]
    fn summary_is_stable_shape() {
        let r = run_one("crates/gf/src/x.rs", "fn ok() {}");
        let s = r.summary();
        assert!(s.contains("rule determinism findings 0 allows 0"));
        assert!(s.ends_with("total findings 0 allows 0\n"));
    }
}
