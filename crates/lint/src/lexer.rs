//! A minimal Rust lexer: just enough to tell identifiers, punctuation,
//! literals, and comments apart, with line numbers.
//!
//! The rules in this crate match *token* patterns, never raw text, so a
//! banned name inside a string literal or a doc comment can never trip a
//! rule, and a `SAFETY:` marker inside a string can never satisfy one.
//! The lexer handles the full literal surface the workspace uses: nested
//! block comments, raw strings (`r#"…"#`), byte strings, char literals
//! vs. lifetimes, and numeric literals with suffixes.

/// What kind of token was lexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `unsafe`, `shards`, …).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A string/char/byte/numeric literal (content deliberately dropped).
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is exactly the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// Whether this token is exactly the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// One comment (line or block) with its line span and raw text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
}

/// Lexes `src` into code tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let ident_start = |c: char| c.is_alphabetic() || c == '_';
    let ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                end_line: line,
            });
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push(Comment {
                text: chars[start..i.min(n)].iter().collect(),
                line: start_line,
                end_line: line,
            });
        } else if c == 'r' || c == 'b' {
            // Possible raw-string / byte-string / byte-char prefix.
            let (consumed, tok) = lex_prefixed(&chars, i, &mut line);
            if consumed > 0 {
                tokens.push(Token { kind: tok, line });
                i += consumed;
            } else {
                let start = i;
                while i < n && ident_cont(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: Tok::Ident(chars[start..i].iter().collect()),
                    line,
                });
            }
        } else if ident_start(c) {
            let start = i;
            while i < n && ident_cont(chars[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: Tok::Ident(chars[start..i].iter().collect()),
                line,
            });
        } else if c == '"' {
            let start_line = line;
            i = skip_string(&chars, i, &mut line);
            tokens.push(Token { kind: Tok::Literal, line: start_line });
        } else if c == '\'' {
            // Lifetime/label (`'a`) vs char literal (`'x'`, `'\n'`).
            if i + 1 < n
                && (ident_start(chars[i + 1]))
                && !(i + 2 < n && chars[i + 2] == '\'')
            {
                i += 1;
                let start = i;
                while i < n && ident_cont(chars[i]) {
                    i += 1;
                }
                let _ = start;
                tokens.push(Token { kind: Tok::Lifetime, line });
            } else {
                i = skip_char_literal(&chars, i);
                tokens.push(Token { kind: Tok::Literal, line });
            }
        } else if c.is_ascii_digit() {
            i += 1;
            while i < n {
                let d = chars[i];
                let float_point = d == '.'
                    && i + 1 < n
                    && chars[i + 1].is_ascii_digit()
                    && !(i >= 1 && chars[i - 1] == '.');
                if ident_cont(d) || float_point {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token { kind: Tok::Literal, line });
        } else {
            tokens.push(Token { kind: Tok::Punct(c), line });
            i += 1;
        }
    }
    (tokens, comments)
}

/// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw identifiers
/// (`r#ident`). Returns `(chars consumed, token)`; consumed `0` means "not
/// a prefixed literal — lex as a plain identifier".
fn lex_prefixed(chars: &[char], i: usize, line: &mut u32) -> (usize, Tok) {
    let n = chars.len();
    let c = chars[i];
    let mut j = i + 1;
    if c == 'b' && j < n && chars[j] == 'r' {
        j += 1;
    }
    if c == 'b' && j == i + 1 && j < n && (chars[j] == '"' || chars[j] == '\'') {
        // b"…" or b'…'
        let end = if chars[j] == '"' {
            skip_string(chars, j, line)
        } else {
            skip_char_literal(chars, j)
        };
        return (end - i, Tok::Literal);
    }
    // r / br raw forms: count hashes then require a quote.
    if c == 'r' || (c == 'b' && j > i + 1) {
        let mut hashes = 0;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            // Raw string: scan for `"` followed by `hashes` hashes.
            j += 1;
            while j < n {
                if chars[j] == '\n' {
                    *line += 1;
                    j += 1;
                } else if chars[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        return (j + 1 + hashes - i, Tok::Literal);
                    }
                    j += 1;
                } else {
                    j += 1;
                }
            }
            return (n - i, Tok::Literal);
        }
        if c == 'r' && hashes == 1 && j < n && (chars[j].is_alphabetic() || chars[j] == '_') {
            // Raw identifier r#ident.
            let start = j;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            return (j - i, Tok::Ident(chars[start..j].iter().collect()));
        }
    }
    (0, Tok::Literal)
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote. Tracks newlines in `line`.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    i += 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Skips a `'…'` char literal starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_char_literal(chars: &[char], mut i: usize) -> usize {
    let n = chars.len();
    i += 1;
    if i < n && chars[i] == '\\' {
        i += 1;
        if i < n && chars[i] == 'u' {
            // '\u{…}'
            while i < n && chars[i] != '}' {
                i += 1;
            }
            i += 1;
        } else {
            i += 1;
        }
    } else {
        i += 1;
    }
    if i < n && chars[i] == '\'' {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"expect("x") in a raw string"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic" || i == "expect"));
        assert_eq!(lex(src).1.len(), 2, "both comments captured");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let nl = '\\n'; x }";
        let (toks, _) = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
        let lits = toks.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(lits, 2, "two char literals");
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;";
        let (toks, comments) = lex(src);
        let b_tok = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 4);
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].end_line, 3);
    }

    #[test]
    fn byte_and_raw_literals_lex_as_literals() {
        let src = r#"let x = b"bytes"; let y = b'q'; let z = r"raw"; let w = 0xFF_u64;"#;
        let (toks, _) = lex(src);
        let lits = toks.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(lits, 4);
    }

    #[test]
    fn numeric_range_does_not_eat_dots() {
        let (toks, _) = lex("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both range dots");
    }
}
