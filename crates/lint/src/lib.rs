//! `ajx-lint`: a repo-native invariant checker for the erasure-coded
//! storage workspace.
//!
//! The DSN'05 protocol implementation leans on invariants that `rustc`
//! and clippy cannot see:
//!
//! - **determinism** — chaos, power-loss, and fault-plan-reachable code
//!   must never read ambient clocks or entropy, or seeded replays stop
//!   reproducing (DESIGN.md §7).
//! - **panic-free** — node request handling and WAL replay must return
//!   errors, not panic: a panic is an un-modeled failure the §3.5
//!   recovery protocol never observes.
//! - **safety-comment** — every `unsafe` block and function carries a
//!   `// SAFETY:` justification, and non-kernel crates keep their
//!   `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` policy attrs.
//! - **lock-order** — shard locks in `ShardedNode` are only acquired
//!   through the ascending-order helpers (DESIGN.md §9), which feed the
//!   debug-build lock-order watchdog.
//! - **codec-exhaustive** — every `Request`/`Reply` variant appears in
//!   the wire codec, the WAL journal codec, and the idempotence
//!   classifier, so adding a variant without teaching every codec about
//!   it fails the gate.
//!
//! Rules match token patterns from a hand-rolled lexer/AST-lite, never
//! raw text, so names in strings and comments cannot trip them. Known
//! violations are suppressed inline with `// LINT-ALLOW(rule: reason)`;
//! allows are counted, and stale or malformed allows are findings
//! themselves. The tool is dependency-free and offline by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_files, lint_workspace, Finding, Report, RULES};
