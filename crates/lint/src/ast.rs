//! AST-lite: a structural model recovered from the token stream.
//!
//! No expression parsing — just the item structure the rules need:
//! `#[cfg(test)]` / `#[test]` regions (most rules skip test code), function
//! spans with their enclosing `impl` target (so a rule can say "inside
//! `Request::wire_bytes`"), and enum variant lists (for the codec
//! exhaustiveness rule).

use crate::lexer::{lex, Comment, Tok, Token};
use std::collections::{HashMap, HashSet};

/// A function's span in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// The `impl` target type it is defined on, if any.
    pub impl_of: Option<String>,
    /// Token index of the `fn` keyword.
    pub kw_idx: usize,
    /// Token range `[start, end)` of the body, braces included.
    pub body: (usize, usize),
}

/// An enum's name and variant list.
#[derive(Debug, Clone)]
pub struct EnumSpan {
    /// The enum's name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A lexed file plus the recovered item structure.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path (used for rule scoping and reporting).
    pub path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
    /// Token index ranges `[start, end)` that are test-only code
    /// (`#[cfg(test)]` mods and `#[test]` / `#[cfg(test)]` fns).
    pub test_ranges: Vec<(usize, usize)>,
    /// All function spans, in order of appearance.
    pub fns: Vec<FnSpan>,
    /// All enums, in order of appearance.
    pub enums: Vec<EnumSpan>,
    /// Lines that contain at least one code token.
    pub code_lines: HashSet<u32>,
}

impl FileModel {
    /// Lexes and models one source file.
    pub fn parse(path: &str, src: &str) -> FileModel {
        let (tokens, comments) = lex(src);
        let test_ranges = find_test_ranges(&tokens);
        let fns = find_fns(&tokens);
        let enums = find_enums(&tokens);
        let code_lines = tokens.iter().map(|t| t.line).collect();
        FileModel {
            path: path.to_owned(),
            tokens,
            comments,
            test_ranges,
            fns,
            enums,
            code_lines,
        }
    }

    /// Whether token index `i` falls inside test-only code.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The innermost function span containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| i >= f.body.0 && i < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The body token range of function `name` (optionally qualified by its
    /// `impl` target), if defined in this file.
    pub fn fn_body(&self, impl_of: Option<&str>, name: &str) -> Option<(usize, usize)> {
        self.fns
            .iter()
            .find(|f| f.name == name && f.impl_of.as_deref() == impl_of)
            .map(|f| f.body)
    }

    /// Comment text attached to line `l`: comments that end on `l` or on
    /// the run of comment-only lines directly above `l`.
    pub fn comments_attached_to_line(&self, l: u32) -> Vec<&Comment> {
        let mut out = Vec::new();
        // Same-line trailing comment.
        for c in &self.comments {
            if c.line == l || c.end_line == l {
                out.push(c);
            }
        }
        // Walk the run of comment-only lines above.
        let mut probe = l.saturating_sub(1);
        while probe > 0 && !self.code_lines.contains(&probe) {
            let mut any = false;
            for c in &self.comments {
                if probe >= c.line && probe <= c.end_line {
                    out.push(c);
                    any = true;
                }
            }
            if !any {
                break; // blank line terminates the attached run
            }
            probe = probe.saturating_sub(1);
        }
        out
    }
}

/// Finds the matching `}` for the `{` at `open`; returns the index one past
/// it (or `tokens.len()` if unbalanced).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Attribute starting at `i` (`#` or `#!`): returns `(end_index, idents)`
/// where `idents` are the identifiers inside the brackets.
fn parse_attr(tokens: &[Token], i: usize) -> Option<(usize, Vec<String>)> {
    if !tokens[i].is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((j + 1, idents));
            }
        } else if let Some(id) = tokens[j].ident() {
            idents.push(id.to_owned());
        }
        j += 1;
    }
    None
}

/// Marks `#[cfg(test)] mod … { … }` bodies and `#[test]` / `#[cfg(test)]`
/// function bodies as test ranges.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some((after, idents)) = parse_attr(tokens, i) {
            let is_cfg_test = idents.len() >= 2 && idents[0] == "cfg" && idents.contains(&"test".to_owned());
            let is_test_attr = idents.len() == 1 && idents[0] == "test";
            if is_cfg_test || is_test_attr {
                // Skip any further attributes / visibility to the item kw.
                let mut j = after;
                loop {
                    if let Some((next, _)) = parse_attr(tokens, j) {
                        j = next;
                        continue;
                    }
                    match tokens.get(j).and_then(Token::ident) {
                        Some("pub") => {
                            j += 1;
                            // possible pub(crate)
                            if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                                while j < tokens.len() && !tokens[j].is_punct(')') {
                                    j += 1;
                                }
                                j += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let kw = tokens.get(j).and_then(Token::ident);
                if matches!(kw, Some("mod" | "fn")) || (is_cfg_test && kw.is_some()) {
                    // Find the item's body brace (or terminating `;`).
                    let mut k = j;
                    while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';')
                    {
                        k += 1;
                    }
                    if k < tokens.len() && tokens[k].is_punct('{') {
                        ranges.push((i, matching_brace(tokens, k)));
                        i = after;
                        continue;
                    }
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Recovers all function spans, annotated with their `impl` target.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    // impl regions: (body_range, target type name)
    let mut impls: Vec<((usize, usize), String)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            // Scan the header to the opening `{`; the target is the first
            // path identifier after `for` if present, else the first path
            // identifier outside generics.
            // The target is the last path segment of the implementing
            // type: after `for` in trait impls, before the `{` (or a
            // `where` clause) in inherent impls.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut target: Option<String> = None;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                match &tokens[j].kind {
                    Tok::Punct('<') => angle += 1,
                    Tok::Punct('>') => angle -= 1,
                    Tok::Ident(id) if angle == 0 => {
                        if id == "for" {
                            target = None;
                        } else if id == "where" {
                            break;
                        } else if id != "dyn" {
                            target = Some(id.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let end = matching_brace(tokens, j);
                if let Some(t) = target {
                    impls.push(((j, end), t));
                }
            }
        } else if tokens[i].is_ident("fn") {
            // `fn` as a type (`fn(...)`) has no name ident after it.
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                // Find the body `{` before any `;` at paren depth 0.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].kind {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct('{') if paren == 0 => {
                            body = Some((j, matching_brace(tokens, j)));
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    let impl_of = impls
                        .iter()
                        .filter(|((s, e), _)| i >= *s && i < *e)
                        .min_by_key(|((s, e), _)| e - s)
                        .map(|(_, t)| t.clone());
                    fns.push(FnSpan {
                        name: name.to_owned(),
                        impl_of,
                        kw_idx: i,
                        body,
                    });
                }
            }
        }
        i += 1;
    }
    fns
}

/// Recovers enum names and their variant lists.
fn find_enums(tokens: &[Token]) -> Vec<EnumSpan> {
    let mut enums = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("enum") {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                // Body opens at the next `{` (skip generics).
                let mut j = i + 2;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    let end = matching_brace(tokens, j);
                    let mut variants = Vec::new();
                    // Variant names: identifiers at nesting depth 1 whose
                    // previous significant token is `{` or `,`, skipping
                    // attributes.
                    let mut k = j + 1;
                    let mut depth = 0i32; // relative depth past the body `{`
                    let mut expect_variant = true;
                    while k < end && k < tokens.len() {
                        if let Some((after, _)) = parse_attr(tokens, k) {
                            if depth == 0 {
                                k = after;
                                continue;
                            }
                        }
                        match &tokens[k].kind {
                            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                                depth -= 1;
                                if depth < 0 {
                                    break; // closed the enum body
                                }
                            }
                            Tok::Punct(',') if depth == 0 => expect_variant = true,
                            Tok::Ident(id) if depth == 0 && expect_variant => {
                                variants.push(id.clone());
                                expect_variant = false;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    enums.push(EnumSpan {
                        name: name.to_owned(),
                        variants,
                    });
                }
            }
        }
        i += 1;
    }
    enums
}

/// Convenience map from enum name to its variants.
pub fn enum_map(model: &FileModel) -> HashMap<&str, &EnumSpan> {
    model.enums.iter().map(|e| (e.name.as_str(), e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        pub enum Color {
            Red,
            Green { x: u8 },
            Blue(Vec<u8>),
        }

        impl Color {
            pub fn is_warm(&self) -> bool {
                matches!(self, Color::Red)
            }
        }

        fn free_helper() -> usize { 1 }

        #[cfg(test)]
        mod tests {
            #[test]
            fn in_tests() { let _ = super::free_helper(); }
        }
    "#;

    #[test]
    fn enums_and_variants_are_recovered() {
        let m = FileModel::parse("x.rs", SRC);
        assert_eq!(m.enums.len(), 1);
        assert_eq!(m.enums[0].name, "Color");
        assert_eq!(m.enums[0].variants, ["Red", "Green", "Blue"]);
    }

    #[test]
    fn fns_know_their_impl_target() {
        let m = FileModel::parse("x.rs", SRC);
        let warm = m.fns.iter().find(|f| f.name == "is_warm").unwrap();
        assert_eq!(warm.impl_of.as_deref(), Some("Color"));
        let free = m.fns.iter().find(|f| f.name == "free_helper").unwrap();
        assert_eq!(free.impl_of, None);
        assert!(m.fn_body(Some("Color"), "is_warm").is_some());
        assert!(m.fn_body(None, "is_warm").is_none());
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let m = FileModel::parse("x.rs", SRC);
        let in_tests = m
            .tokens
            .iter()
            .position(|t| t.is_ident("in_tests"))
            .unwrap();
        assert!(m.is_test_code(in_tests));
        let warm = m.tokens.iter().position(|t| t.is_ident("is_warm")).unwrap();
        assert!(!m.is_test_code(warm));
    }

    #[test]
    fn trait_impls_attribute_to_the_implementing_type() {
        let src = "impl Display for Wrapper { fn fmt(&self) -> X { todo() } }";
        let m = FileModel::parse("x.rs", src);
        let fmt = m.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.impl_of.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn attached_comments_walk_up_comment_only_lines() {
        let src = "// SAFETY: top\n// second line\nlet x = 1;\nlet y = 2; // trailing\n";
        let m = FileModel::parse("x.rs", src);
        let at3: Vec<_> = m
            .comments_attached_to_line(3)
            .iter()
            .map(|c| c.text.clone())
            .collect();
        assert!(at3.iter().any(|t| t.contains("SAFETY")));
        assert!(at3.iter().any(|t| t.contains("second")));
        let at4: Vec<_> = m
            .comments_attached_to_line(4)
            .iter()
            .map(|c| c.text.clone())
            .collect();
        assert!(at4.iter().any(|t| t.contains("trailing")));
        assert!(!at4.iter().any(|t| t.contains("SAFETY")));
    }
}
