// Fixture standing in for `crates/storage/src/persist.rs`: a complete
// WAL codec — every Request variant named in both directions.

fn encode_request(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Read { stripe } => out.push(*stripe as u8),
        Request::Swap { stripe, value } => {
            out.push(*stripe as u8);
            out.extend_from_slice(value);
        }
        Request::Probe { stripe } => out.push(*stripe as u8),
    }
}

fn decode_request(bytes: &[u8]) -> Option<Request> {
    match bytes.first()? {
        0 => Some(Request::Read { stripe: 0 }),
        1 => Some(Request::Swap {
            stripe: 0,
            value: Vec::new(),
        }),
        2 => Some(Request::Probe { stripe: 0 }),
        _ => None,
    }
}
