// Fixture standing in for `crates/storage/src/node.rs`: the protocol
// enums plus codec functions. `is_idempotent` deliberately omits
// `Probe`, which the codec-exhaustive rule must report.

pub enum Request {
    Read { stripe: u64 },
    Swap { stripe: u64, value: Vec<u8> },
    Probe { stripe: u64 },
}

pub enum Reply {
    Read(Vec<u8>),
    Ack,
}

impl Request {
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Swap { .. } => false,
            Request::Read { .. } => true,
            // missing: Request::Probe
        }
    }

    pub fn wire_bytes(&self) -> usize {
        match self {
            Request::Read { .. } => 0,
            Request::Swap { value, .. } => value.len(),
            Request::Probe { .. } => 0,
        }
    }

    pub fn payload_bytes(&self) -> usize {
        match self {
            Request::Read { .. } => 0,
            Request::Swap { value, .. } => value.len(),
            Request::Probe { .. } => 0,
        }
    }
}

impl Reply {
    pub fn wire_bytes(&self) -> usize {
        match self {
            Reply::Read(b) => b.len(),
            Reply::Ack => 0,
        }
    }

    pub fn payload_bytes(&self) -> usize {
        match self {
            Reply::Read(b) => b.len(),
            Reply::Ack => 0,
        }
    }
}
