// Fixture standing in for `crates/storage/src/shard.rs`: the WAL
// journaling classifier, deliberately missing `Swap`.

fn is_journaled(req: &Request) -> bool {
    match req {
        Request::Read { .. } => false,
        Request::Probe { .. } => false,
        // missing: Request::Swap
    }
}
