// Fixture for the `safety-comment` rule: undocumented unsafe.

fn bad_block(p: *const u8) -> u8 {
    unsafe { *p } // finding: undocumented
}

// finding: undocumented unsafe fn
unsafe fn bad_fn(p: *const u8) -> u8 {
    *p
}

fn fine_block(v: &[u8]) -> u8 {
    // SAFETY: the caller guarantees v is non-empty.
    unsafe { *v.as_ptr() }
}

// SAFETY: caller must pass a valid, aligned, initialized pointer.
unsafe fn fine_fn(p: *const u8) -> u8 {
    *p
}

// SAFETY: comments above attributes still attach to the item.
#[inline]
unsafe fn fine_fn_behind_attr(p: *const u8) -> u8 {
    *p
}

fn fine_in_string() -> &'static str {
    "unsafe { } inside a string literal is not a finding"
}
