// Fixture for the `lock-order` rule: shard mutexes touched outside the
// sanctioned helpers. Linted under the synthetic path of the sharded
// node, where the rule applies.

struct Fixture {
    shards: Vec<Mutex<u8>>,
}

impl Fixture {
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, u8> {
        // Sanctioned helper: direct acquisition is fine here.
        self.shards[idx].lock()
    }

    fn lock_all_shards(&self) -> Vec<MutexGuard<'_, u8>> {
        // Sanctioned helper as well.
        self.shards.iter().map(|s| s.lock()).collect()
    }

    fn bad_direct_lock(&self, idx: usize) -> MutexGuard<'_, u8> {
        self.shards[idx].lock() // finding: not a sanctioned helper
    }

    fn bad_direct_try_lock(&self, idx: usize) -> Option<MutexGuard<'_, u8>> {
        self.shards[idx].try_lock() // finding
    }

    fn fine_unrelated_lock(&self, other: &Mutex<u8>) -> MutexGuard<'_, u8> {
        // Locks that are not shard locks are out of the rule's scope.
        other.lock()
    }
}
