// Fixture for the `panic-free` rule: panics and unguarded indexing on
// request-handling paths, plus the LINT-ALLOW escape hatch.

fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // finding
}

fn bad_expect(x: Option<u8>) -> u8 {
    x.expect("always set") // finding
}

fn bad_macros(v: u8) -> u8 {
    match v {
        0 => panic!("zero"),       // finding
        1 => unreachable!(),       // finding
        2 => todo!(),              // finding
        _ => v,
    }
}

fn bad_indexing(v: &[u8], i: usize) -> u8 {
    v[i] // finding
}

fn allowed_unwrap(x: Option<u8>) -> u8 {
    // LINT-ALLOW(panic-free: fixture — proven Some by the caller)
    x.unwrap()
}

fn allowed_multiline(v: &[u8]) -> u8 {
    // LINT-ALLOW(panic-free: fixture exercising a directive that wraps
    // across two comment lines; the slice is never empty here)
    v[0]
}

fn fine_guarded(v: &[u8], i: usize) -> Option<u8> {
    v.get(i).copied()
}

fn fine_attr_not_index(v: Vec<u8>) -> Vec<u8> {
    // `#[derive(...)]`-style brackets and slice types must not count as
    // indexing; neither must array literals.
    let w: [u8; 2] = [1, 2];
    let _ = w;
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let x: Option<u8> = Some(3);
        assert_eq!(x.unwrap(), 3); // not a finding: test code
    }
}
