// Fixture for the `determinism` rule: ambient clocks and entropy in
// fault-plan-reachable code. Linted under a synthetic path inside the
// determinism scope; the directory is excluded from real workspace walks.
use std::time::{Instant, SystemTime};

fn bad_clock() -> Instant {
    Instant::now() // finding
}

fn bad_wall_clock() -> u64 {
    let t = SystemTime::now(); // finding
    let _ = t;
    0
}

fn bad_entropy() -> u64 {
    let mut rng = rand::thread_rng(); // finding
    rng.gen()
}

fn fine_seeded(seed: u64) -> u64 {
    // Seeded generators are the sanctioned source of randomness.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    rng.gen()
}

fn fine_in_string() -> &'static str {
    "Instant::now() in a string literal is not a finding"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_time_things() {
        let _t = std::time::Instant::now(); // not a finding: test code
    }
}
