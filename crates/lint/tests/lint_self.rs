//! Fixture-driven rule tests plus the self-run gate: the committed
//! workspace must be lint-clean, with the allowlist pinned so a new
//! `LINT-ALLOW` cannot slip in unreviewed.

use ajx_lint::{lint_files, lint_workspace, Report};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints one fixture under a synthetic in-scope path.
fn lint_fixture(as_path: &str, name: &str) -> Report {
    lint_files(&[(as_path.to_owned(), fixture(name))])
}

fn rule_lines(report: &Report, rule: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn determinism_fixture() {
    let r = lint_fixture("crates/sim/src/fixture.rs", "determinism.rs");
    let lines = rule_lines(&r, "determinism");
    assert_eq!(lines.len(), 3, "three ambient clock/entropy uses: {r:?}");
    // Seeded rng, string literals, and #[cfg(test)] code stay silent.
    assert_eq!(r.finding_counts["determinism"], 3);
}

#[test]
fn determinism_out_of_scope_is_silent() {
    let r = lint_fixture("crates/cluster/src/workload.rs", "determinism.rs");
    assert_eq!(
        r.finding_counts["determinism"], 0,
        "bench harness timing is out of the determinism scope"
    );
}

#[test]
fn panic_free_fixture() {
    let r = lint_fixture("crates/storage/src/state.rs", "panic_free.rs");
    let lines = rule_lines(&r, "panic-free");
    assert_eq!(
        lines.len(),
        6,
        "unwrap, expect, panic!, unreachable!, todo!, indexing: {r:?}"
    );
    // The two LINT-ALLOW'd sites count as allows, not findings.
    assert_eq!(r.allows["panic-free"], 2);
    // Test-module unwraps are ignored entirely.
    assert_eq!(r.finding_counts["lint-allow"], 0, "no stale allows: {r:?}");
}

#[test]
fn safety_fixture() {
    let r = lint_fixture("crates/gf/src/kernel/fixture.rs", "safety.rs");
    let lines = rule_lines(&r, "safety-comment");
    assert_eq!(
        lines.len(),
        2,
        "one undocumented block + one undocumented fn: {r:?}"
    );
}

#[test]
fn lock_order_fixture() {
    let r = lint_fixture("crates/storage/src/shard.rs", "lock_order.rs");
    let lines = rule_lines(&r, "lock-order");
    assert_eq!(
        lines.len(),
        2,
        "direct lock + direct try_lock outside the helpers: {r:?}"
    );
}

#[test]
fn codec_fixture_reports_missing_variants() {
    let files = vec![
        (
            "crates/storage/src/node.rs".to_owned(),
            fixture("codec_node.rs"),
        ),
        (
            "crates/storage/src/shard.rs".to_owned(),
            fixture("codec_shard.rs"),
        ),
        (
            "crates/storage/src/persist.rs".to_owned(),
            fixture("codec_persist.rs"),
        ),
    ];
    let r = lint_files(&files);
    let codec: Vec<&str> = r
        .findings
        .iter()
        .filter(|f| f.rule == "codec-exhaustive")
        .map(|f| f.msg.as_str())
        .collect();
    assert_eq!(codec.len(), 2, "{codec:?}");
    assert!(
        codec.iter().any(|m| m.contains("`Request::Probe`") && m.contains("is_idempotent")),
        "{codec:?}"
    );
    assert!(
        codec.iter().any(|m| m.contains("`Request::Swap`") && m.contains("is_journaled")),
        "{codec:?}"
    );
}

#[test]
fn codec_rule_flags_missing_anchor_fn() {
    // Renaming (or deleting) a codec function must not silently disable
    // the rule: the site itself goes missing and that is a finding.
    let files = vec![(
        "crates/storage/src/node.rs".to_owned(),
        "pub enum Request { Read }\npub enum Reply { Ack }\n".to_owned(),
    )];
    let r = lint_files(&files);
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "codec-exhaustive" && f.msg.contains("is_idempotent")),
        "{:?}",
        r.findings
    );
}

#[test]
fn workspace_is_clean_with_pinned_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let report = lint_workspace(root).expect("walk workspace");
    assert!(
        report.files_scanned > 50,
        "workspace walk found only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "committed tree must be lint-clean:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The allowlist is pinned per rule: a new LINT-ALLOW (or a deleted
    // one) must update this test, making every escape hatch reviewable.
    let pin = |rule: &str| report.allows.get(rule).copied().unwrap_or(0);
    assert_eq!(pin("determinism"), 0);
    assert_eq!(pin("panic-free"), 15, "allows: {:?}", report.allows);
    assert_eq!(pin("safety-comment"), 0);
    assert_eq!(pin("lock-order"), 0);
    assert_eq!(pin("codec-exhaustive"), 0);
}
