//! Local Reconstruction Codes (pyramid construction) over GF(2⁸).
//!
//! Reed-Solomon repair is bandwidth-hungry: rebuilding *one* lost block
//! reads `k` whole blocks over the wire. Rashmi et al. measured exactly
//! this traffic dominating warehouse clusters, and LRC-style codes (Huang
//! et al.'s pyramid codes, Azure LRC) cut it by an integer factor: split
//! the `k` data blocks into `g` local groups, give each group its own
//! local parity, and keep `h` global parities for multi-failure cover.
//! A single lost block is then repaired from its ~`k/g`-block local group
//! instead of from `k` blocks.
//!
//! # Construction
//!
//! Start from a base MDS Reed-Solomon code `RS(k, k + h + 1)` and *split*
//! its first parity row: local parity `g_t` uses base parity row 0
//! restricted to group `t`'s columns (zero elsewhere), and the `h` global
//! parities are base parity rows `1..=h` unchanged. Because the local
//! parities sum to the original row-0 parity, the pyramid code inherits
//! the base code's minimum distance `h + 2`: **any** `h + 1` erasures are
//! decodable (via [`crate::CodeFamily::select_decode_indices`]), while a
//! single erasure is decodable from its local group alone.
//!
//! The stripe layout is `[d_0 .. d_{k-1} | L_0 .. L_{g-1} | G_0 .. G_{h-1}]`:
//! redundant index `j < g` is the local parity of group `j`, and
//! `j >= g` is global parity `j - g`.

use crate::code::ReedSolomon;
use crate::error::CodeError;
use crate::matrix::Matrix;
use ajx_gf::{Field, Gf256};

/// A pyramid Local Reconstruction Code: `k` data blocks in `g` local
/// groups (one GF-weighted local parity each) plus `h` global parities,
/// `n = k + g + h`.
///
/// All stripe-level operations (encode, delta updates, decode planning,
/// verification) are served by the underlying systematic linear view
/// ([`Lrc::code`]); this type adds the group bookkeeping that lets repair
/// prefer the cheap local set.
///
/// # Example
///
/// ```
/// use ajx_erasure::Lrc;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// // 12 data blocks in 3 groups of 4, one global parity: n = 16.
/// let lrc = Lrc::new(12, 3, 1)?;
/// let data: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8 + 1; 64]).collect();
/// let stripe = lrc.code().encode_stripe(&data)?;
/// // Repairing data block 5 (group 1) needs only its 3 group peers and
/// // the group's local parity — 4 blocks instead of 12.
/// assert_eq!(lrc.group_of(5), 1);
/// assert_eq!(lrc.group_data(1), vec![4, 5, 6, 7]);
/// assert_eq!(lrc.local_parity_index(1), 13);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Lrc {
    g: usize,
    h: usize,
    group_size: usize,
    core: ReedSolomon,
}

impl Lrc {
    /// Builds the pyramid LRC with `k` data blocks split into `g` local
    /// groups (of `ceil(k / g)` blocks each) and `h` global parities.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `1 ≤ g ≤ k`, `h ≥ 1`,
    /// and `k + g + h ≤ 256`.
    pub fn new(k: usize, g: usize, h: usize) -> Result<Self, CodeError> {
        let n = k + g + h;
        if k == 0 || g == 0 || g > k || h == 0 || n > crate::code::MAX_N {
            return Err(CodeError::InvalidParams { k, n });
        }
        // Base MDS code whose first parity row is split into the locals.
        let base = ReedSolomon::new(k, k + h + 1)?;
        let group_size = k.div_ceil(g);
        let mut rows: Vec<Vec<Gf256>> = Vec::with_capacity(g + h);
        for t in 0..g {
            let mut row = vec![Gf256::ZERO; k];
            let hi = ((t + 1) * group_size).min(k);
            for (i, cell) in row.iter_mut().enumerate().take(hi).skip(t * group_size) {
                *cell = base.parity()[(0, i)];
            }
            rows.push(row);
        }
        for j in 1..=h {
            rows.push(base.parity().row(j).to_vec());
        }
        let core = ReedSolomon::from_parity(k, Matrix::from_rows(rows))?;
        Ok(Lrc {
            g,
            h,
            group_size,
            core,
        })
    }

    /// Number of data blocks per stripe.
    pub fn k(&self) -> usize {
        self.core.k()
    }

    /// Total blocks per stripe (`k + g + h`).
    pub fn n(&self) -> usize {
        self.core.n()
    }

    /// Number of redundant blocks (`g + h`).
    pub fn p(&self) -> usize {
        self.core.p()
    }

    /// Number of local groups.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of global parities.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Data blocks per local group (the last group may be smaller).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The local group containing data block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ k`.
    pub fn group_of(&self, i: usize) -> usize {
        assert!(i < self.k(), "data index {i} out of range");
        i / self.group_size
    }

    /// The data-block indices of local group `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ g`.
    pub fn group_data(&self, t: usize) -> Vec<usize> {
        assert!(t < self.g, "group {t} out of range");
        ((t * self.group_size)..((t + 1) * self.group_size).min(self.k())).collect()
    }

    /// The stripe index of group `t`'s local parity block (`k + t`).
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ g`.
    pub fn local_parity_index(&self, t: usize) -> usize {
        assert!(t < self.g, "group {t} out of range");
        self.k() + t
    }

    /// The stripe index of global parity `j` (`k + g + j`).
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ h`.
    pub fn global_parity_index(&self, j: usize) -> usize {
        assert!(j < self.h, "global parity {j} out of range");
        self.k() + self.g + j
    }

    /// The local group a stripe index belongs to: `Some(t)` for data
    /// blocks and local parities, `None` for global parities.
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ n`.
    pub fn group_of_index(&self, idx: usize) -> Option<usize> {
        assert!(idx < self.n(), "stripe index {idx} out of range");
        if idx < self.k() {
            Some(self.group_of(idx))
        } else if idx < self.k() + self.g {
            Some(idx - self.k())
        } else {
            None
        }
    }

    /// The underlying systematic linear view: `k` data rows plus the
    /// `g + h` pyramid parity rows, exposing encode / delta / plan-decode /
    /// verify machinery identical to a Reed-Solomon code's.
    ///
    /// **This view is not MDS**: local parity rows are zero outside their
    /// group, so some `k`-subsets of blocks do not determine the data
    /// ([`ReedSolomon::plan_decode`] reports those as
    /// [`CodeError::NotDecodable`]). Use
    /// [`crate::CodeFamily::select_decode_indices`] to pick a decodable
    /// subset from the available blocks.
    pub fn code(&self) -> &ReedSolomon {
        &self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(Lrc::new(0, 1, 1).is_err());
        assert!(Lrc::new(4, 0, 1).is_err());
        assert!(Lrc::new(4, 5, 1).is_err());
        assert!(Lrc::new(4, 2, 0).is_err());
        assert!(Lrc::new(250, 5, 3).is_err()); // n = 258 > 256
        assert!(Lrc::new(4, 2, 1).is_ok());
        assert!(Lrc::new(12, 3, 1).is_ok());
    }

    #[test]
    fn group_bookkeeping_partitions_data() {
        let lrc = Lrc::new(10, 3, 2).unwrap(); // groups of 4, 4, 2
        assert_eq!(lrc.group_size(), 4);
        assert_eq!(lrc.group_data(0), vec![0, 1, 2, 3]);
        assert_eq!(lrc.group_data(1), vec![4, 5, 6, 7]);
        assert_eq!(lrc.group_data(2), vec![8, 9]);
        for t in 0..3 {
            for &i in &lrc.group_data(t) {
                assert_eq!(lrc.group_of(i), t);
            }
            assert_eq!(lrc.group_of_index(lrc.local_parity_index(t)), Some(t));
        }
        assert_eq!(lrc.group_of_index(lrc.global_parity_index(0)), None);
        assert_eq!(lrc.group_of_index(lrc.global_parity_index(1)), None);
        assert_eq!(lrc.n(), 15);
    }

    #[test]
    fn locals_sum_to_base_parity_row() {
        // The pyramid invariant: per data column, exactly one local parity
        // row is nonzero, and the nonzero entries reassemble base row 0.
        let (k, g, h) = (9, 3, 2);
        let lrc = Lrc::new(k, g, h).unwrap();
        let base = ReedSolomon::new(k, k + h + 1).unwrap();
        for i in 0..k {
            let mut sum = Gf256::ZERO;
            for t in 0..g {
                sum += lrc.code().coefficient(t, i);
            }
            assert_eq!(sum, base.coefficient(0, i), "column {i}");
        }
        for j in 0..h {
            for i in 0..k {
                assert_eq!(
                    lrc.code().coefficient(g + j, i),
                    base.coefficient(1 + j, i),
                    "global {j}, column {i}"
                );
            }
        }
    }

    #[test]
    fn local_parity_row_is_zero_outside_its_group() {
        let lrc = Lrc::new(8, 4, 1).unwrap();
        for t in 0..4 {
            for i in 0..8 {
                let c = lrc.code().coefficient(t, i);
                if lrc.group_of(i) == t {
                    assert_ne!(c, Gf256::ZERO, "group {t}, column {i}");
                } else {
                    assert_eq!(c, Gf256::ZERO, "group {t}, column {i}");
                }
            }
        }
    }

    #[test]
    fn single_erasure_decodes_from_local_group_alone() {
        let lrc = Lrc::new(6, 2, 1).unwrap();
        let data = random_data(6, 32, 7);
        let stripe = lrc.code().encode_stripe(&data).unwrap();
        // Lose data block 1 (group 0). Its group peers {0, 2} plus local
        // parity 6, padded to k shares with group-1 members, reconstruct it.
        let idx = [0usize, 2, 6, 3, 4, 5];
        let plan = lrc.code().plan_decode(&idx).unwrap();
        let shares: Vec<&[u8]> = idx.iter().map(|&t| &stripe[t][..]).collect();
        let mut out = vec![0u8; 32];
        plan.reconstruct_one_into(1, &shares, &mut out).unwrap();
        assert_eq!(out, data[1]);
    }

    #[test]
    fn some_k_subsets_are_not_decodable() {
        // Non-MDS by design: dropping both members of a group's local
        // equation and compensating with another group's local parity
        // cannot work.
        let lrc = Lrc::new(4, 2, 1).unwrap(); // n = 7
        // Lose data 0, 1 (all of group 0). Shares {2, 3, local1, global}
        // has rank 3 over the data: not decodable.
        assert!(matches!(
            lrc.code().plan_decode(&[2, 3, 5, 6]),
            Err(CodeError::NotDecodable)
        ));
        // But {2, 3, local0, global} also fails (local0 and global are the
        // only rows touching columns 0 and 1 — rank 4 needed, have 4 rows,
        // local0 + global give 2 equations over 2 unknowns: decodable).
        assert!(lrc.code().plan_decode(&[2, 3, 4, 6]).is_ok());
    }

    #[test]
    fn delta_updates_keep_lrc_stripe_verifiable() {
        // The protocol's incremental write path must work unchanged: swap a
        // data block, add the per-node deltas, stripe still verifies.
        let lrc = Lrc::new(6, 3, 2).unwrap();
        let mut data = random_data(6, 24, 11);
        let mut stripe = lrc.code().encode_stripe(&data).unwrap();
        let new_block = vec![0xA5u8; 24];
        let old = std::mem::replace(&mut data[4], new_block.clone());
        stripe[4] = new_block.clone();
        for j in 0..lrc.p() {
            let d = lrc.code().delta(j, 4, &new_block, &old).unwrap();
            ajx_gf::slice::add_assign(&mut stripe[lrc.k() + j], &d);
        }
        assert!(lrc.code().verify_stripe(&stripe).unwrap());
        assert_eq!(stripe, lrc.code().encode_stripe(&data).unwrap());
        // Deltas to other groups' local parities are all-zero: the write
        // path may broadcast uniformly without corrupting them.
        for j in 0..lrc.g() {
            let d = lrc.code().delta(j, 4, &new_block, &old).unwrap();
            if lrc.group_of(4) != j {
                assert!(d.iter().all(|&b| b == 0), "local {j}");
            }
        }
    }
}
