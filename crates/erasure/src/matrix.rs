//! Dense matrices over a generic [`Field`], sized for erasure-code work
//! (n ≤ a few hundred). Provides the Vandermonde construction and
//! Gauss-Jordan inversion needed to build systematic generator matrices and
//! to decode from an arbitrary k-subset of blocks.

use ajx_gf::Field;
use core::fmt;

/// A dense row-major matrix over the field `F`.
///
/// # Example
///
/// ```
/// use ajx_erasure::Matrix;
/// use ajx_gf::{Field, Gf256};
///
/// let m = Matrix::<Gf256>::vandermonde(3, 3);
/// let inv = m.inverted().expect("vandermonde on distinct points is invertible");
/// assert_eq!(m.mul(&inv), Matrix::identity(3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Creates a `rows × cols` zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major nested vector.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have equal length"
        );
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// The `rows × cols` Vandermonde matrix on the evaluation points
    /// `x_i = from_u64(i)`: entry `(i, j) = x_i^j`.
    ///
    /// For `rows ≤ F::ORDER` the points are pairwise distinct, so every
    /// square submatrix formed by choosing any `cols` rows is invertible —
    /// the property that makes the derived code MDS.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= F::ORDER,
            "vandermonde needs at most {} distinct points",
            F::ORDER
        );
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            let x = F::from_u64(i as u64);
            let mut p = F::ONE;
            for j in 0..cols {
                m[(i, j)] = p;
                p = p * x;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix made of the given rows of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let rows = indices.iter().map(|&i| self.row(i).to_vec()).collect();
        Self::from_rows(rows)
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree for multiplication"
        );
        let mut out = Self::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a * rhs[(l, j)];
                    out[(i, j)] = out[(i, j)] + prod;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(F::ZERO, |acc, (&a, &x)| acc + a * x)
            })
            .collect()
    }

    /// The inverse, computed by Gauss-Jordan elimination with partial
    /// pivoting (any nonzero pivot works in a field), or `None` if the
    /// matrix is singular or not square.
    pub fn inverted(&self) -> Option<Self> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            // Find a row at or below `col` with a nonzero pivot.
            let pivot = (col..n).find(|&r| !a[(r, col)].is_zero())?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p_inv = a[(col, col)].inv()?;
            a.scale_row(col, p_inv);
            inv.scale_row(col, p_inv);
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let factor = a[(r, col)];
                    a.sub_scaled_row(r, col, factor);
                    inv.sub_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    /// Rank via Gaussian elimination (used in tests to verify MDS-ness).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..a.cols {
            if rank == a.rows {
                break;
            }
            let Some(pivot) = (rank..a.rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot, rank);
            let p_inv = a[(rank, col)].inv().expect("nonzero pivot");
            a.scale_row(rank, p_inv);
            for r in 0..a.rows {
                if r != rank && !a[(r, col)].is_zero() {
                    let factor = a[(r, col)];
                    a.sub_scaled_row(r, rank, factor);
                }
            }
            rank += 1;
        }
        rank
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }

    fn scale_row(&mut self, r: usize, c: F) {
        for j in 0..self.cols {
            let v = self[(r, j)] * c;
            self[(r, j)] = v;
        }
    }

    /// row[dst] -= factor * row[src]
    fn sub_scaled_row(&mut self, dst: usize, src: usize, factor: F) {
        for j in 0..self.cols {
            let v = self[(dst, j)] - factor * self[(src, j)];
            self[(dst, j)] = v;
        }
    }
}

impl<F> core::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = F;
    fn index(&self, (r, c): (usize, usize)) -> &F {
        &self.data[r * self.cols + c]
    }
}

impl<F> core::ops::IndexMut<(usize, usize)> for Matrix<F> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        &mut self.data[r * self.cols + c]
    }
}

impl<F: fmt::Debug> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_gf::{Gf256, Gf257};
    use proptest::prelude::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let v = Matrix::<Gf256>::vandermonde(4, 4);
        let id = Matrix::identity(4);
        assert_eq!(v.mul(&id), v);
        assert_eq!(id.mul(&v), v);
    }

    #[test]
    fn vandermonde_inverts() {
        for n in 1..=8 {
            let v = Matrix::<Gf256>::vandermonde(n, n);
            let inv = v.inverted().expect("square vandermonde invertible");
            assert_eq!(v.mul(&inv), Matrix::identity(n), "n = {n}");
        }
    }

    #[test]
    fn vandermonde_any_k_rows_invertible() {
        // The MDS-enabling property: choose any k of n rows, still invertible.
        let k = 3;
        let n = 6;
        let v = Matrix::<Gf256>::vandermonde(n, k);
        // All C(6,3) = 20 subsets.
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let sub = v.select_rows(&[a, b, c]);
                    assert!(
                        sub.inverted().is_some(),
                        "rows {a},{b},{c} should be invertible"
                    );
                }
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = Matrix::from_rows(vec![
            vec![Gf256::new(1), Gf256::new(2)],
            vec![Gf256::new(1), Gf256::new(2)],
        ]);
        assert!(m.inverted().is_none());
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn non_square_inversion_is_none() {
        let m = Matrix::<Gf256>::vandermonde(3, 2);
        assert!(m.inverted().is_none());
    }

    #[test]
    fn rank_of_vandermonde_is_full() {
        let m = Matrix::<Gf256>::vandermonde(6, 4);
        assert_eq!(m.rank(), 4);
        let id = Matrix::<Gf257>::identity(5);
        assert_eq!(id.rank(), 5);
        assert_eq!(Matrix::<Gf256>::zero(3, 3).rank(), 0);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Matrix::<Gf256>::vandermonde(3, 3);
        let v = vec![Gf256::new(9), Gf256::new(27), Gf256::new(99)];
        let as_col = Matrix::from_rows(v.iter().map(|&x| vec![x]).collect());
        let prod = m.mul(&as_col);
        let prod_vec = m.mul_vec(&v);
        for i in 0..3 {
            assert_eq!(prod[(i, 0)], prod_vec[i]);
        }
    }

    #[test]
    fn works_over_prime_field_too() {
        let v = Matrix::<Gf257>::vandermonde(5, 5);
        let inv = v.inverted().unwrap();
        assert_eq!(v.mul(&inv), Matrix::identity(5));
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trips(seed in any::<u64>(), n in 1usize..6) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rows: Vec<Vec<Gf256>> = (0..n)
                .map(|_| (0..n).map(|_| Gf256::new(rng.random())).collect())
                .collect();
            let m = Matrix::from_rows(rows);
            if let Some(inv) = m.inverted() {
                prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
                prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
            } else {
                prop_assert!(m.rank() < n, "inversion failed only for rank-deficient");
            }
        }
    }
}
