//! Systematic MDS erasure codes with incremental updates.
//!
//! This crate implements the erasure-code layer of the AJX reproduction
//! (*Using Erasure Codes Efficiently for Storage in a Distributed System*,
//! DSN 2005):
//!
//! * [`ReedSolomon`] — k-of-n systematic Reed-Solomon codes over GF(2⁸)
//!   with full encode, decode from *any* k blocks, and the **delta updates**
//!   (`α_ji · (v − w)`) that let the protocol update redundancy with
//!   commutative adds and no locks (paper Fig. 3).
//! * [`LinearCode`] — the same machinery over any field, capturing the class
//!   of codes the protocol supports ("linear erasure codes ... where
//!   redundant blocks are updated with commutative operations", §1);
//!   [`toy_2_of_4`] instantiates the paper's §3.3 `(a, b, a+b, a−b)` example.
//! * [`Lrc`] / [`CodeFamily`] — a pyramid Local Reconstruction Code tier:
//!   data blocks split into local groups with one local parity each plus
//!   global parities, so a single lost block is repaired from its
//!   ~`k/g`-block group instead of `k` blocks ([`CodeFamily::repair_plan`]
//!   picks the cheapest viable repair set for either family).
//! * [`WideReedSolomon`] — the same systematic construction over GF(2¹⁶)
//!   for stripes past 256 blocks, running on the same tiered SIMD kernels
//!   as the byte code (allocation-free [`WideReedSolomon::encode_into`],
//!   reusable [`WideDecodePlan`]s memoized by [`PlanCache::plan_wide`]).
//! * [`StripeLayout`] — the §3.11 rotated placement of stripes over storage
//!   nodes that spreads parity load and keeps sequential I/O on distinct
//!   nodes.
//! * [`Matrix`] — the small dense linear algebra (Vandermonde, Gauss-Jordan)
//!   behind the code constructions.
//!
//! # Quickstart
//!
//! ```
//! use ajx_erasure::ReedSolomon;
//!
//! # fn main() -> Result<(), ajx_erasure::CodeError> {
//! // A highly-efficient code in the paper's sense: large k, small n − k.
//! let rs = ReedSolomon::new(10, 12)?;
//! let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 1024]).collect();
//! let stripe = rs.encode_stripe(&data)?;
//!
//! // Any 10 of the 12 blocks recover everything:
//! let shares: Vec<(usize, &[u8])> =
//!     (2..12).map(|i| (i, &stripe[i][..])).collect();
//! assert_eq!(rs.decode(&shares)?, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod code;
mod error;
mod family;
mod layout;
mod linear;
mod lrc;
mod matrix;
mod wide;

pub use cache::PlanCache;
pub use code::{DecodePlan, ReedSolomon, MAX_N};
pub use error::CodeError;
pub use family::{CodeFamily, FamilyKey, RepairPlan};
pub use layout::{NodeIndex, Placement, Role, StripeLayout};
pub use linear::{toy_2_of_4, LinearCode};
pub use lrc::Lrc;
pub use matrix::Matrix;
pub use wide::{WideDecodePlan, WideReedSolomon, MAX_N_WIDE};
