//! Wide Reed-Solomon codes over GF(2¹⁶): stripes of up to 65 536 blocks.
//!
//! The GF(2⁸)-based [`crate::ReedSolomon`] caps a stripe at 256 blocks.
//! For the paper's closing vision — disk arrays built from very many cheap
//! adapters — this module provides the same systematic Vandermonde
//! construction over GF(2¹⁶). Blocks remain plain byte slices; they are
//! interpreted as little-endian `u16` words, so block lengths must be
//! even.
//!
//! Performance note: the GF(2¹⁶) kernels run ~2-4× slower per byte than
//! the byte-field ones (wider tables, worse cache locality); use
//! [`crate::ReedSolomon`] whenever `n ≤ 256`.

use crate::error::CodeError;
use crate::linear::LinearCode;
use crate::matrix::Matrix;
use ajx_gf::Gf65536;

/// A systematic k-of-n Reed-Solomon code over GF(2¹⁶).
///
/// # Example
///
/// ```
/// use ajx_erasure::WideReedSolomon;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// // A code wider than GF(2^8) allows: 300-of-304.
/// let rs = WideReedSolomon::new(300, 304)?;
/// let data: Vec<Vec<u8>> = (0..300).map(|i| vec![(i % 251) as u8; 8]).collect();
/// let stripe = rs.encode_stripe(&data)?;
/// // Lose four blocks, recover:
/// let shares: Vec<(usize, &[u8])> =
///     (4..304).map(|i| (i, &stripe[i][..])).collect();
/// assert_eq!(rs.decode(&shares[..300])?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WideReedSolomon {
    k: usize,
    n: usize,
    inner: LinearCode<Gf65536>,
}

/// Largest stripe width supported over GF(2¹⁶).
pub const MAX_N_WIDE: usize = 65536;

fn bytes_to_words(b: &[u8]) -> Result<Vec<Gf65536>, CodeError> {
    if !b.len().is_multiple_of(2) {
        return Err(CodeError::LengthMismatch);
    }
    Ok(b.chunks_exact(2)
        .map(|c| Gf65536::new(u16::from_le_bytes([c[0], c[1]])))
        .collect())
}

fn words_to_bytes(w: &[Gf65536]) -> Vec<u8> {
    let mut out = Vec::with_capacity(w.len() * 2);
    for x in w {
        out.extend_from_slice(&x.to_u16().to_le_bytes());
    }
    out
}

impl WideReedSolomon {
    /// Builds the code.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] unless `1 ≤ k < n ≤ 65536`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > MAX_N_WIDE {
            return Err(CodeError::InvalidParams { k, n });
        }
        let v = Matrix::<Gf65536>::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("vandermonde on distinct points is invertible");
        let bottom = v.select_rows(&(k..n).collect::<Vec<_>>());
        let alpha = bottom.mul(&top_inv);
        Ok(WideReedSolomon {
            k,
            n,
            inner: LinearCode::from_coefficients(alpha)?,
        })
    }

    /// Number of data blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total blocks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Redundant blocks `p = n − k`.
    pub fn p(&self) -> usize {
        self.n - self.k
    }

    /// Encodes the full stripe (data blocks followed by redundancy).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] / [`CodeError::LengthMismatch`] for
    /// malformed or odd-length blocks.
    pub fn encode_stripe<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let words: Vec<Vec<Gf65536>> = data
            .iter()
            .map(|b| bytes_to_words(b.as_ref()))
            .collect::<Result<_, _>>()?;
        let stripe = self.inner.encode_stripe(&words)?;
        Ok(stripe.iter().map(|w| words_to_bytes(w)).collect())
    }

    /// Recovers the data blocks from any `k` distinct shares.
    ///
    /// # Errors
    ///
    /// As [`crate::ReedSolomon::decode`], plus odd-length rejection.
    pub fn decode(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        let words: Vec<(usize, Vec<Gf65536>)> = shares
            .iter()
            .map(|&(i, b)| Ok((i, bytes_to_words(b)?)))
            .collect::<Result<_, CodeError>>()?;
        let data = self.inner.decode(&words)?;
        Ok(data.iter().map(|w| words_to_bytes(w)).collect())
    }

    /// The increment `α_ji · (new − old)` for redundant block `k + j` when
    /// data block `i` changes — the same delta-update contract as
    /// [`crate::ReedSolomon::delta`].
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] for mismatched or odd lengths.
    pub fn delta(&self, j: usize, i: usize, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        let new_w = bytes_to_words(new)?;
        let old_w = bytes_to_words(old)?;
        Ok(words_to_bytes(&self.inner.delta(j, i, &new_w, &old_w)?))
    }

    /// Adds `delta` into `block` in place (the node-side apply; XOR, since
    /// GF(2¹⁶) addition is bytewise XOR).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn apply_delta(block: &mut [u8], delta: &[u8]) {
        ajx_gf::slice::add_assign(block, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_params_and_odd_blocks() {
        assert!(WideReedSolomon::new(0, 4).is_err());
        assert!(WideReedSolomon::new(4, 4).is_err());
        assert!(WideReedSolomon::new(2, 65537).is_err());
        let rs = WideReedSolomon::new(2, 4).unwrap();
        assert!(matches!(
            rs.encode_stripe(&[vec![1u8; 3], vec![2u8; 3]]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn roundtrip_beyond_gf256_limit() {
        // n = 300 is impossible over GF(2^8); works over GF(2^16).
        let rs = WideReedSolomon::new(296, 300).unwrap();
        let data = random_data(296, 16, 1);
        let stripe = rs.encode_stripe(&data).unwrap();
        // Lose 4 arbitrary blocks (two data, two redundant).
        let shares: Vec<(usize, &[u8])> = (0..300)
            .filter(|&i| ![5, 77, 297, 299].contains(&i))
            .map(|i| (i, &stripe[i][..]))
            .collect();
        assert_eq!(rs.decode(&shares[..296]).unwrap(), data);
    }

    #[test]
    fn delta_update_equals_reencode() {
        let rs = WideReedSolomon::new(3, 6).unwrap();
        let mut data = random_data(3, 32, 2);
        let mut stripe = rs.encode_stripe(&data).unwrap();
        let new_block: Vec<u8> = (0..32).map(|x| (x * 41 % 251) as u8).collect();
        let old = std::mem::replace(&mut data[1], new_block.clone());
        stripe[1] = new_block.clone();
        for j in 0..rs.p() {
            let d = rs.delta(j, 1, &new_block, &old).unwrap();
            WideReedSolomon::apply_delta(&mut stripe[3 + j], &d);
        }
        assert_eq!(stripe, rs.encode_stripe(&data).unwrap());
    }

    #[test]
    fn concurrent_deltas_commute_in_wide_field() {
        let rs = WideReedSolomon::new(2, 4).unwrap();
        let a0 = vec![1u8; 8];
        let b0 = vec![2u8; 8];
        let mut stripe = rs.encode_stripe(&[a0.clone(), b0.clone()]).unwrap();
        let c = vec![9u8; 8];
        let d = vec![7u8; 8];
        let d1: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 0, &c, &a0).unwrap()).collect();
        let d2: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 1, &d, &b0).unwrap()).collect();
        stripe[0] = c.clone();
        stripe[1] = d.clone();
        WideReedSolomon::apply_delta(&mut stripe[2], &d1[0]);
        WideReedSolomon::apply_delta(&mut stripe[2], &d2[0]);
        WideReedSolomon::apply_delta(&mut stripe[3], &d2[1]);
        WideReedSolomon::apply_delta(&mut stripe[3], &d1[1]);
        assert_eq!(stripe, rs.encode_stripe(&[c, d]).unwrap());
    }

    #[test]
    fn agrees_with_byte_code_semantics_on_small_params() {
        // Different fields, same contract: any-k-of-n decodability.
        let rs = WideReedSolomon::new(2, 5).unwrap();
        let data = random_data(2, 10, 3);
        let stripe = rs.encode_stripe(&data).unwrap();
        for a in 0..5 {
            for b in (a + 1)..5 {
                let shares = [(a, &stripe[a][..]), (b, &stripe[b][..])];
                assert_eq!(rs.decode(&shares).unwrap(), data, "pair {a},{b}");
            }
        }
    }

    #[test]
    fn empty_blocks_are_legal() {
        let rs = WideReedSolomon::new(2, 4).unwrap();
        let stripe = rs.encode_stripe(&[vec![], vec![]]).unwrap();
        assert!(stripe.iter().all(Vec::is_empty));
    }
}
