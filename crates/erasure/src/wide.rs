//! Wide Reed-Solomon codes over GF(2¹⁶): stripes of up to 65 536 blocks.
//!
//! The GF(2⁸)-based [`crate::ReedSolomon`] caps a stripe at 256 blocks.
//! For the paper's closing vision — disk arrays built from very many cheap
//! adapters — this module provides the same systematic Vandermonde
//! construction over GF(2¹⁶). Blocks remain plain byte slices; they are
//! interpreted as **little-endian `u16` words**, so block lengths must be
//! even — odd lengths are rejected with [`CodeError::OddBlockLength`].
//!
//! The hot paths mirror the byte code exactly: encode streams each data
//! block once through all redundant rows via the fused
//! [`slice::mul_add_multi16`] kernel (no per-word field-element wrapping,
//! no allocation in [`WideReedSolomon::encode_into`]), and decode hoists
//! the k×k inversion into a reusable [`WideDecodePlan`]. On the tiered
//! SIMD backends the per-byte cost lands within ~1.5× of the byte code —
//! wide codes no longer pay a word-at-a-time penalty, just the split-table
//! builds (see `ajx_gf::kernel` and `EXPERIMENTS.md` for measurements).

use crate::error::CodeError;
use crate::matrix::Matrix;
use ajx_gf::{slice, Field, Gf65536};

/// A systematic k-of-n Reed-Solomon code over GF(2¹⁶).
///
/// # Example
///
/// ```
/// use ajx_erasure::WideReedSolomon;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// // A code wider than GF(2^8) allows: 300-of-304.
/// let rs = WideReedSolomon::new(300, 304)?;
/// let data: Vec<Vec<u8>> = (0..300).map(|i| vec![(i % 251) as u8; 8]).collect();
/// let stripe = rs.encode_stripe(&data)?;
/// // Lose four blocks, recover:
/// let shares: Vec<(usize, &[u8])> =
///     (4..304).map(|i| (i, &stripe[i][..])).collect();
/// assert_eq!(rs.decode(&shares[..300])?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WideReedSolomon {
    k: usize,
    n: usize,
    /// `p × k` matrix of redundancy coefficients: `red[(j, i)] = α_{k+j, i}`.
    red: Matrix<Gf65536>,
    /// The same coefficients column-major as raw `u16`s:
    /// `red_cols[i][j] = α_{k+j, i}` — one ready-made coefficient vector
    /// per data block for the fused multi-row kernel.
    red_cols: Vec<Vec<u16>>,
}

/// Largest stripe width supported over GF(2¹⁶).
pub const MAX_N_WIDE: usize = 65536;

/// Rejects odd block lengths (blocks are little-endian `u16` words).
fn check_even(len: usize) -> Result<(), CodeError> {
    if len.is_multiple_of(2) {
        Ok(())
    } else {
        Err(CodeError::OddBlockLength { len })
    }
}

/// Common length of `blocks`, which must be equal and even.
fn check_equal_even_lengths<B: AsRef<[u8]>>(blocks: &[B]) -> Result<usize, CodeError> {
    let len = blocks.first().map_or(0, |b| b.as_ref().len());
    if blocks.iter().any(|b| b.as_ref().len() != len) {
        return Err(CodeError::LengthMismatch);
    }
    check_even(len)?;
    Ok(len)
}

impl WideReedSolomon {
    /// Builds the code.
    ///
    /// As with the byte code, all per-coefficient state the hot paths need
    /// is materialized here (the column-major `u16` layout); the per-call
    /// split-nibble tables are built inside the kernels and amortized over
    /// each block.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] unless `1 ≤ k < n ≤ 65536`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > MAX_N_WIDE {
            return Err(CodeError::InvalidParams { k, n });
        }
        let v = Matrix::<Gf65536>::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("vandermonde on distinct points is invertible");
        let bottom = v.select_rows(&(k..n).collect::<Vec<_>>());
        let red = bottom.mul(&top_inv);
        let p = n - k;
        let red_cols = (0..k)
            .map(|i| (0..p).map(|j| red[(j, i)].to_u16()).collect())
            .collect();
        Ok(WideReedSolomon {
            k,
            n,
            red,
            red_cols,
        })
    }

    /// Number of data blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total blocks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Redundant blocks `p = n − k`.
    pub fn p(&self) -> usize {
        self.n - self.k
    }

    /// The erasure-code coefficient `α_ji` applied to data block `i` in
    /// redundant block `k + j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn coefficient(&self, j: usize, i: usize) -> Gf65536 {
        assert!(j < self.p(), "redundant index {j} out of range");
        assert!(i < self.k, "data index {i} out of range");
        self.red[(j, i)]
    }

    /// Computes the `p` redundant blocks for `data` (one `Vec` per block).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] if `data.len() != k`;
    /// [`CodeError::LengthMismatch`] on ragged blocks;
    /// [`CodeError::OddBlockLength`] on an odd block length.
    pub fn encode<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        let len = data.first().map_or(0, |b| b.as_ref().len());
        let mut out = vec![vec![0u8; len]; self.p()];
        let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
        self.encode_into(data, &mut views)?;
        Ok(out)
    }

    /// [`encode`](WideReedSolomon::encode) into caller-owned scratch: fills
    /// the `p` pre-sized blocks of `out` with the redundancy for `data`,
    /// performing **no heap allocation**. Each data block is streamed once
    /// through all `p` output rows via the fused multi-row GF(2¹⁶) kernel,
    /// with split-product tables built in stack batches.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] if `data.len() != k` or
    /// `out.len() != p`; [`CodeError::LengthMismatch`] /
    /// [`CodeError::OddBlockLength`] on malformed blocks.
    pub fn encode_into<B: AsRef<[u8]>>(
        &self,
        data: &[B],
        out: &mut [&mut [u8]],
    ) -> Result<(), CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: data.len(),
            });
        }
        if out.len() != self.p() {
            return Err(CodeError::WrongBlockCount {
                expected: self.p(),
                got: out.len(),
            });
        }
        let len = check_equal_even_lengths(data)?;
        for o in out.iter_mut() {
            if o.len() != len {
                return Err(CodeError::LengthMismatch);
            }
            o.fill(0);
        }
        for (i, d) in data.iter().enumerate() {
            slice::mul_add_multi16(out, &self.red_cols[i], d.as_ref());
        }
        Ok(())
    }

    /// Encodes the full stripe (data blocks followed by redundancy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`WideReedSolomon::encode`].
    pub fn encode_stripe<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        let red = self.encode(data)?;
        let mut stripe: Vec<Vec<u8>> = data.iter().map(|b| b.as_ref().to_vec()).collect();
        stripe.extend(red);
        Ok(stripe)
    }

    /// [`encode_stripe`](WideReedSolomon::encode_stripe) taking the data
    /// blocks by value: the returned stripe reuses them directly, so only
    /// the `p` redundant blocks are allocated.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WideReedSolomon::encode`].
    pub fn encode_stripe_owned(&self, data: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodeError> {
        let red = self.encode(&data)?;
        let mut stripe = data;
        stripe.extend(red);
        Ok(stripe)
    }

    /// Recovers the data blocks from any `k` distinct shares.
    ///
    /// # Errors
    ///
    /// As [`crate::ReedSolomon::decode`], plus
    /// [`CodeError::OddBlockLength`] on odd-length blocks.
    pub fn decode(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        let indices: Vec<usize> = shares.iter().map(|&(idx, _)| idx).collect();
        let plan = self.plan_decode(&indices)?;
        let blocks: Vec<&[u8]> = shares.iter().map(|&(_, b)| b).collect();
        let len = check_equal_even_lengths(&blocks)?;
        let mut data = vec![vec![0u8; len]; self.k];
        let mut views: Vec<&mut [u8]> = data.iter_mut().map(|b| b.as_mut_slice()).collect();
        plan.decode_into(&blocks, &mut views)?;
        Ok(data)
    }

    /// Precomputes everything needed to decode from the given share
    /// indices: validates the set, inverts the k×k GF(2¹⁶) system once,
    /// and stores the inverse column-major — the wide-code twin of
    /// [`crate::ReedSolomon::plan_decode`]. Pair with
    /// [`WideDecodePlan::decode_into`] (or memoize through
    /// [`crate::PlanCache::plan_wide`]) to make per-stripe decode pure
    /// kernel streaming.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] unless exactly `k` indices are given;
    /// [`CodeError::IndexOutOfRange`] / [`CodeError::DuplicateShare`] on
    /// bad indices.
    pub fn plan_decode(&self, indices: &[usize]) -> Result<WideDecodePlan, CodeError> {
        if indices.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: indices.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &idx in indices {
            if idx >= self.n {
                return Err(CodeError::IndexOutOfRange { index: idx, n: self.n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
        }

        let rows: Vec<Vec<Gf65536>> = indices
            .iter()
            .map(|&idx| {
                if idx < self.k {
                    let mut row = vec![Gf65536::ZERO; self.k];
                    row[idx] = Gf65536::ONE;
                    row
                } else {
                    self.red.row(idx - self.k).to_vec()
                }
            })
            .collect();
        let m = Matrix::from_rows(rows);
        let inv = m.inverted().ok_or(CodeError::NotDecodable)?;

        let inv_cols: Vec<Vec<u16>> = (0..self.k)
            .map(|s| (0..self.k).map(|i| inv[(i, s)].to_u16()).collect())
            .collect();
        Ok(WideDecodePlan {
            k: self.k,
            indices: indices.to_vec(),
            inv_cols,
        })
    }

    /// The increment `α_ji · (new − old)` for redundant block `k + j` when
    /// data block `i` changes — the same delta-update contract as
    /// [`crate::ReedSolomon::delta`].
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] / [`CodeError::OddBlockLength`] for
    /// mismatched or odd lengths.
    pub fn delta(&self, j: usize, i: usize, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        let mut out = vec![0u8; new.len()];
        self.delta_into_buf(j, i, new, old, &mut out)?;
        Ok(out)
    }

    /// [`delta`](WideReedSolomon::delta) into a caller-owned buffer — the
    /// allocation-free form, computed with the fused subtract-scale kernel.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] unless `new`, `old` and `out` all have
    /// the same length; [`CodeError::OddBlockLength`] if that length is odd.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn delta_into_buf(
        &self,
        j: usize,
        i: usize,
        new: &[u8],
        old: &[u8],
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        if new.len() != old.len() || out.len() != new.len() {
            return Err(CodeError::LengthMismatch);
        }
        check_even(new.len())?;
        let c = self.coefficient(j, i);
        slice::delta_into16(out, c.to_u16(), new, old);
        Ok(())
    }

    /// Adds `delta` into `block` in place (the node-side apply; XOR, since
    /// GF(2¹⁶) addition is bytewise XOR).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn apply_delta(block: &mut [u8], delta: &[u8]) {
        slice::add_assign(block, delta);
    }
}

/// A prepared wide-code decode for one fixed erasure pattern: the k×k
/// GF(2¹⁶) inverse is computed once by [`WideReedSolomon::plan_decode`]
/// and reused across stripes — the wide twin of [`crate::DecodePlan`].
#[derive(Clone, Debug)]
pub struct WideDecodePlan {
    k: usize,
    indices: Vec<usize>,
    /// The k×k inverse stored column-major: `inv_cols[s][i]` is the weight
    /// of share `s` in output data block `i`.
    inv_cols: Vec<Vec<u16>>,
}

impl WideDecodePlan {
    /// The share indices this plan decodes from, in the order
    /// `decode_into` expects the share blocks.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Decodes `shares` (blocks in [`indices`](WideDecodePlan::indices)
    /// order) into the `k` pre-sized blocks of `out`, performing **no heap
    /// allocation**: each share streams once through all `k` output rows
    /// via the fused multi-row GF(2¹⁶) kernel.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] on wrong share/output counts;
    /// [`CodeError::LengthMismatch`] / [`CodeError::OddBlockLength`] on
    /// malformed blocks.
    pub fn decode_into(&self, shares: &[&[u8]], out: &mut [&mut [u8]]) -> Result<(), CodeError> {
        if shares.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: shares.len(),
            });
        }
        if out.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: out.len(),
            });
        }
        let len = check_equal_even_lengths(shares)?;
        for o in out.iter_mut() {
            if o.len() != len {
                return Err(CodeError::LengthMismatch);
            }
            o.fill(0);
        }
        for (s, share) in shares.iter().enumerate() {
            slice::mul_add_multi16(out, &self.inv_cols[s], share);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearCode;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_params_and_odd_blocks() {
        assert!(WideReedSolomon::new(0, 4).is_err());
        assert!(WideReedSolomon::new(4, 4).is_err());
        assert!(WideReedSolomon::new(2, 65537).is_err());
        let rs = WideReedSolomon::new(2, 4).unwrap();
        assert!(matches!(
            rs.encode_stripe(&[vec![1u8; 3], vec![2u8; 3]]),
            Err(CodeError::OddBlockLength { len: 3 })
        ));
        let b = [0u8; 5];
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (1, &b[..])]),
            Err(CodeError::OddBlockLength { len: 5 })
        ));
        assert!(matches!(
            rs.delta(0, 0, &b, &b),
            Err(CodeError::OddBlockLength { len: 5 })
        ));
        let mut out = [vec![0u8; 5], vec![0u8; 5]];
        let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(matches!(
            rs.encode_into(&[vec![0u8; 5], vec![0u8; 5]], &mut views),
            Err(CodeError::OddBlockLength { len: 5 })
        ));
    }

    #[test]
    fn roundtrip_beyond_gf256_limit() {
        // n = 300 is impossible over GF(2^8); works over GF(2^16).
        let rs = WideReedSolomon::new(296, 300).unwrap();
        let data = random_data(296, 16, 1);
        let stripe = rs.encode_stripe(&data).unwrap();
        // Lose 4 arbitrary blocks (two data, two redundant).
        let shares: Vec<(usize, &[u8])> = (0..300)
            .filter(|&i| ![5, 77, 297, 299].contains(&i))
            .map(|i| (i, &stripe[i][..]))
            .collect();
        assert_eq!(rs.decode(&shares[..296]).unwrap(), data);
    }

    #[test]
    fn matches_generic_linear_code_reference() {
        // The kernel-streaming encode/decode must agree with the
        // word-at-a-time LinearCode<Gf65536> construction it replaced.
        let rs = WideReedSolomon::new(5, 9).unwrap();
        let reference = LinearCode::from_coefficients(rs.red.clone()).unwrap();
        let data = random_data(5, 64, 42);
        let words: Vec<Vec<Gf65536>> = data
            .iter()
            .map(|b| {
                b.chunks_exact(2)
                    .map(|c| Gf65536::new(u16::from_le_bytes([c[0], c[1]])))
                    .collect()
            })
            .collect();
        let stripe = rs.encode_stripe(&data).unwrap();
        let ref_stripe = reference.encode_stripe(&words).unwrap();
        for (fast, slow) in stripe.iter().zip(&ref_stripe) {
            let slow_bytes: Vec<u8> = slow
                .iter()
                .flat_map(|w| w.to_u16().to_le_bytes())
                .collect();
            assert_eq!(fast, &slow_bytes);
        }
    }

    #[test]
    fn encode_into_matches_encode_and_is_reusable() {
        let rs = WideReedSolomon::new(3, 7).unwrap();
        let mut scratch = vec![vec![0xEEu8; 40]; rs.p()];
        for seed in 0..4 {
            let data = random_data(3, 40, seed);
            let mut views: Vec<&mut [u8]> =
                scratch.iter_mut().map(|b| b.as_mut_slice()).collect();
            rs.encode_into(&data, &mut views).unwrap();
            assert_eq!(scratch, rs.encode(&data).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn encode_stripe_owned_matches_encode_stripe() {
        let rs = WideReedSolomon::new(3, 5).unwrap();
        let data = random_data(3, 24, 11);
        assert_eq!(
            rs.encode_stripe_owned(data.clone()).unwrap(),
            rs.encode_stripe(&data).unwrap()
        );
    }

    #[test]
    fn decode_plan_reused_across_stripes() {
        let rs = WideReedSolomon::new(3, 6).unwrap();
        let plan = rs.plan_decode(&[1, 4, 5]).unwrap();
        assert_eq!(plan.indices(), &[1, 4, 5]);
        let mut out = vec![vec![0u8; 32]; 3];
        for seed in 0..4 {
            let data = random_data(3, 32, seed + 100);
            let stripe = rs.encode_stripe(&data).unwrap();
            let shares: Vec<&[u8]> = vec![&stripe[1], &stripe[4], &stripe[5]];
            let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
            plan.decode_into(&shares, &mut views).unwrap();
            assert_eq!(out, data, "seed {seed}");
        }
    }

    #[test]
    fn plan_decode_validates_indices() {
        let rs = WideReedSolomon::new(2, 4).unwrap();
        assert!(matches!(
            rs.plan_decode(&[0]),
            Err(CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            rs.plan_decode(&[0, 0]),
            Err(CodeError::DuplicateShare { .. })
        ));
        assert!(matches!(
            rs.plan_decode(&[0, 9]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn delta_update_equals_reencode() {
        let rs = WideReedSolomon::new(3, 6).unwrap();
        let mut data = random_data(3, 32, 2);
        let mut stripe = rs.encode_stripe(&data).unwrap();
        let new_block: Vec<u8> = (0..32).map(|x| (x * 41 % 251) as u8).collect();
        let old = std::mem::replace(&mut data[1], new_block.clone());
        stripe[1] = new_block.clone();
        for j in 0..rs.p() {
            let d = rs.delta(j, 1, &new_block, &old).unwrap();
            WideReedSolomon::apply_delta(&mut stripe[3 + j], &d);
        }
        assert_eq!(stripe, rs.encode_stripe(&data).unwrap());
    }

    #[test]
    fn delta_into_buf_matches_delta() {
        let rs = WideReedSolomon::new(4, 7).unwrap();
        let old = random_data(1, 20, 21).pop().unwrap();
        let new = random_data(1, 20, 22).pop().unwrap();
        let mut buf = vec![0u8; 20];
        for j in 0..rs.p() {
            rs.delta_into_buf(j, 2, &new, &old, &mut buf).unwrap();
            assert_eq!(buf, rs.delta(j, 2, &new, &old).unwrap(), "row {j}");
        }
        assert!(matches!(
            rs.delta_into_buf(0, 0, &new, &old, &mut [0u8; 4]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn concurrent_deltas_commute_in_wide_field() {
        let rs = WideReedSolomon::new(2, 4).unwrap();
        let a0 = vec![1u8; 8];
        let b0 = vec![2u8; 8];
        let mut stripe = rs.encode_stripe(&[a0.clone(), b0.clone()]).unwrap();
        let c = vec![9u8; 8];
        let d = vec![7u8; 8];
        let d1: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 0, &c, &a0).unwrap()).collect();
        let d2: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 1, &d, &b0).unwrap()).collect();
        stripe[0] = c.clone();
        stripe[1] = d.clone();
        WideReedSolomon::apply_delta(&mut stripe[2], &d1[0]);
        WideReedSolomon::apply_delta(&mut stripe[2], &d2[0]);
        WideReedSolomon::apply_delta(&mut stripe[3], &d2[1]);
        WideReedSolomon::apply_delta(&mut stripe[3], &d1[1]);
        assert_eq!(stripe, rs.encode_stripe(&[c, d]).unwrap());
    }

    #[test]
    fn agrees_with_byte_code_semantics_on_small_params() {
        // Different fields, same contract: any-k-of-n decodability.
        let rs = WideReedSolomon::new(2, 5).unwrap();
        let data = random_data(2, 10, 3);
        let stripe = rs.encode_stripe(&data).unwrap();
        for a in 0..5 {
            for b in (a + 1)..5 {
                let shares = [(a, &stripe[a][..]), (b, &stripe[b][..])];
                assert_eq!(rs.decode(&shares).unwrap(), data, "pair {a},{b}");
            }
        }
    }

    #[test]
    fn empty_blocks_are_legal() {
        let rs = WideReedSolomon::new(2, 4).unwrap();
        let stripe = rs.encode_stripe(&[vec![], vec![]]).unwrap();
        assert!(stripe.iter().all(Vec::is_empty));
        let shares: Vec<(usize, &[u8])> = vec![(2, &stripe[2][..]), (3, &stripe[3][..])];
        assert_eq!(rs.decode(&shares).unwrap(), vec![vec![0u8; 0]; 2]);
    }
}
