//! Code-family abstraction: Reed-Solomon or LRC behind one handle.
//!
//! The protocol stack (config, storage nodes, recovery, rebuild) does not
//! care *which* systematic linear code a cluster runs — encode, delta
//! updates and decode planning are identical. What differs is **repair
//! economics**: an MDS Reed-Solomon code always reads `k` blocks to repair
//! one loss, while an [`Lrc`] repairs a single loss from its local group.
//! [`CodeFamily`] carries that difference behind two queries:
//!
//! * [`CodeFamily::repair_plan`] — the cheapest set of available blocks
//!   (with GF weights) that reconstructs one lost block;
//! * [`CodeFamily::select_decode_indices`] — a decodable `k`-subset of the
//!   available blocks (non-trivial for non-MDS codes).
//!
//! [`CodeFamily`] derefs to the underlying [`ReedSolomon`] systematic
//! view, so all stripe-level operations keep their existing call sites.

use crate::code::ReedSolomon;
use crate::lrc::Lrc;
use ajx_gf::{slice, Field, Gf256};
use std::ops::Deref;
use std::sync::Arc;

/// A cluster's erasure code: plain Reed-Solomon or a pyramid LRC.
///
/// Cloning is cheap (the code tables are behind an [`Arc`]). The type
/// derefs to the systematic [`ReedSolomon`] view shared by both families,
/// so `family.encode_into(..)`, `family.delta(..)`, `family.plan_decode(..)`
/// etc. all work directly.
#[derive(Clone, Debug)]
pub enum CodeFamily {
    /// A k-of-n MDS Reed-Solomon code.
    Rs(Arc<ReedSolomon>),
    /// A pyramid Local Reconstruction Code (see [`Lrc`]).
    Lrc(Arc<Lrc>),
}

/// Hashable identity of a code family **and** its generator — the cache
/// key half that keeps an LRC plan from ever being served for an RS
/// stripe of the same `(k, n)` shape (or vice versa).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FamilyKey {
    /// Reed-Solomon with `k` data of `n` total blocks.
    Rs {
        /// Data blocks per stripe.
        k: usize,
        /// Total blocks per stripe.
        n: usize,
    },
    /// Pyramid LRC with `k` data blocks, `g` local groups, `h` globals.
    Lrc {
        /// Data blocks per stripe.
        k: usize,
        /// Number of local groups.
        g: usize,
        /// Number of global parities.
        h: usize,
    },
    /// Wide Reed-Solomon over GF(2¹⁶) with `k` data of `n` total blocks.
    ///
    /// A separate variant from [`FamilyKey::Rs`] even at equal `(k, n)`:
    /// the two generators live in different fields, so their decode plans
    /// must never share a cache entry.
    Wide {
        /// Data blocks per stripe.
        k: usize,
        /// Total blocks per stripe.
        n: usize,
    },
}

impl Deref for CodeFamily {
    type Target = ReedSolomon;

    fn deref(&self) -> &ReedSolomon {
        match self {
            CodeFamily::Rs(rs) => rs,
            CodeFamily::Lrc(lrc) => lrc.code(),
        }
    }
}

impl From<ReedSolomon> for CodeFamily {
    fn from(rs: ReedSolomon) -> Self {
        CodeFamily::Rs(Arc::new(rs))
    }
}

impl From<Lrc> for CodeFamily {
    fn from(lrc: Lrc) -> Self {
        CodeFamily::Lrc(Arc::new(lrc))
    }
}

impl CodeFamily {
    /// A Reed-Solomon family with `k` data of `n` total blocks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::new`].
    pub fn rs(k: usize, n: usize) -> Result<Self, crate::CodeError> {
        Ok(ReedSolomon::new(k, n)?.into())
    }

    /// A pyramid LRC family with `k` data blocks, `g` groups, `h` globals.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lrc::new`].
    pub fn lrc(k: usize, g: usize, h: usize) -> Result<Self, crate::CodeError> {
        Ok(Lrc::new(k, g, h)?.into())
    }

    /// The LRC bookkeeping, if this family is an LRC.
    pub fn as_lrc(&self) -> Option<&Lrc> {
        match self {
            CodeFamily::Rs(_) => None,
            CodeFamily::Lrc(lrc) => Some(lrc),
        }
    }

    /// This family's cache-key identity.
    pub fn family_key(&self) -> FamilyKey {
        match self {
            CodeFamily::Rs(rs) => FamilyKey::Rs {
                k: rs.k(),
                n: rs.n(),
            },
            CodeFamily::Lrc(lrc) => FamilyKey::Lrc {
                k: lrc.k(),
                g: lrc.g(),
                h: lrc.h(),
            },
        }
    }

    /// How many simultaneous block losses the family guarantees to
    /// tolerate: `n − k` for MDS Reed-Solomon, `h + 1` for a pyramid LRC
    /// (its minimum distance is `h + 2`).
    pub fn tolerated_failures(&self) -> usize {
        match self {
            CodeFamily::Rs(rs) => rs.p(),
            CodeFamily::Lrc(lrc) => lrc.h() + 1,
        }
    }

    /// The generator row of stripe index `idx`: a unit vector for data
    /// blocks, the parity row for redundant blocks.
    fn row_of(&self, idx: usize) -> Vec<Gf256> {
        let k = self.k();
        if idx < k {
            let mut row = vec![Gf256::ZERO; k];
            row[idx] = Gf256::ONE;
            row
        } else {
            self.parity().row(idx - k).to_vec()
        }
    }

    /// Picks a decodable `k`-subset of `available` (distinct stripe
    /// indices), or `None` if the available blocks do not determine the
    /// data. For Reed-Solomon any `k` work (MDS), so the first `k` are
    /// returned; for an LRC a greedy Gaussian sweep keeps each index whose
    /// generator row increases the rank.
    pub fn select_decode_indices(&self, available: &[usize]) -> Option<Vec<usize>> {
        let k = self.k();
        if let CodeFamily::Rs(_) = self {
            return (available.len() >= k).then(|| available[..k].to_vec());
        }
        let mut basis: Vec<(usize, Vec<Gf256>)> = Vec::with_capacity(k);
        let mut chosen = Vec::with_capacity(k);
        for &idx in available {
            let mut row = self.row_of(idx);
            for (p, brow) in &basis {
                let c = row[*p];
                if c != Gf256::ZERO {
                    for (r, b) in row.iter_mut().zip(brow) {
                        *r += c * *b;
                    }
                }
            }
            if let Some(p) = row.iter().position(|&x| x != Gf256::ZERO) {
                // Normalize the pivot so later eliminations are one mul-add.
                let inv = row[p].inv().unwrap_or(Gf256::ONE); // nonzero ⇒ invertible
                for r in row.iter_mut() {
                    *r *= inv;
                }
                basis.push((p, row));
                chosen.push(idx);
                if chosen.len() == k {
                    return Some(chosen);
                }
            }
        }
        None
    }

    /// The candidate order [`CodeFamily::repair_plan`] walks: cheapest
    /// repair sources first. For an LRC that is the lost block's local
    /// group (peer data, then the group's local parity), then data outside
    /// the group, then global parities, then other local parities. For
    /// Reed-Solomon every order costs the same `k` blocks.
    fn repair_preference(&self, lost: usize, available: &[usize]) -> Vec<usize> {
        let mut order: Vec<usize> = available
            .iter()
            .copied()
            .filter(|&idx| idx != lost)
            .collect();
        order.sort_unstable();
        order.dedup();
        if let CodeFamily::Lrc(lrc) = self {
            let group = lrc.group_of_index(lost);
            let rank = |idx: usize| -> usize {
                let in_group = group.is_some() && lrc.group_of_index(idx) == group;
                match (in_group, idx < lrc.k(), lrc.group_of_index(idx).is_some()) {
                    (true, true, _) => 0,      // peer data in the lost group
                    (true, false, _) => 1,     // the group's local parity
                    (false, true, _) => 2,     // data outside the group
                    (false, false, false) => 3, // global parity
                    (false, false, true) => 4, // other groups' local parity
                }
            };
            order.sort_by_key(|&idx| (rank(idx), idx));
        }
        order
    }

    /// Computes the cheapest repair of stripe index `lost` from the
    /// `available` indices: the shortest preference-ordered prefix whose
    /// generator rows span the lost block's row, with the GF weights that
    /// combine them. Returns `None` when the available blocks cannot
    /// reconstruct the lost one.
    ///
    /// For a single loss this yields ~`k/g + 1` shares on an LRC and `k`
    /// shares on Reed-Solomon — the bytes-on-wire gap the rebuild engine
    /// and degraded reads exploit.
    pub fn repair_plan(&self, lost: usize, available: &[usize]) -> Option<RepairPlan> {
        if lost >= self.n() {
            return None;
        }
        let order = self.repair_preference(lost, available);
        let m = order.len();
        let mut target = self.row_of(lost);
        // target_orig = target + Σ tcomb[s] · row(order[s]) at all times.
        let mut tcomb = vec![Gf256::ZERO; m];
        // Row-echelon basis over the candidate rows; each entry remembers
        // its pivot column and its combination over the original candidates.
        let mut basis: Vec<(usize, Vec<Gf256>, Vec<Gf256>)> = Vec::new();
        for (s, &idx) in order.iter().enumerate() {
            let mut row = self.row_of(idx);
            let mut comb = vec![Gf256::ZERO; m];
            comb[s] = Gf256::ONE;
            for (p, brow, bcomb) in &basis {
                let c = row[*p];
                if c != Gf256::ZERO {
                    for (r, b) in row.iter_mut().zip(brow) {
                        *r += c * *b;
                    }
                    for (r, b) in comb.iter_mut().zip(bcomb) {
                        *r += c * *b;
                    }
                }
            }
            let Some(p) = row.iter().position(|&x| x != Gf256::ZERO) else {
                continue; // linearly dependent on earlier candidates
            };
            let inv = row[p].inv().unwrap_or(Gf256::ONE); // nonzero ⇒ invertible
            for r in row.iter_mut() {
                *r *= inv;
            }
            for c in comb.iter_mut() {
                *c *= inv;
            }
            let c = target[p];
            if c != Gf256::ZERO {
                for (t, b) in target.iter_mut().zip(&row) {
                    *t += c * *b;
                }
                for (t, b) in tcomb.iter_mut().zip(&comb) {
                    *t += c * *b;
                }
            }
            basis.push((p, row, comb));
            if target.iter().all(|&x| x == Gf256::ZERO) {
                let shares: Vec<(usize, u8)> = tcomb
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != Gf256::ZERO)
                    .map(|(t, &w)| (order[t], w.as_byte()))
                    .collect();
                return Some(RepairPlan { lost, shares });
            }
        }
        None
    }
}

/// A prepared single-block repair: which available blocks to read and the
/// GF weight of each. Produced by [`CodeFamily::repair_plan`]; applying it
/// is one weighted sum ([`RepairPlan::reconstruct_into`]), so the per-
/// stripe cost is pure kernel streaming over the (small) share set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairPlan {
    lost: usize,
    shares: Vec<(usize, u8)>,
}

impl RepairPlan {
    /// The stripe index this plan reconstructs.
    pub fn lost(&self) -> usize {
        self.lost
    }

    /// The `(stripe index, GF weight)` pairs to combine, in the order
    /// [`RepairPlan::reconstruct_into`] expects the share blocks.
    pub fn shares(&self) -> &[(usize, u8)] {
        &self.shares
    }

    /// The share indices alone, in plan order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.shares.iter().map(|&(idx, _)| idx)
    }

    /// Reconstructs the lost block into `out` from `shares` (blocks in
    /// [`RepairPlan::shares`] order): `out = Σ wᵢ · shareᵢ`, no allocation.
    ///
    /// # Errors
    ///
    /// [`crate::CodeError::WrongBlockCount`] on a wrong share count;
    /// [`crate::CodeError::LengthMismatch`] on ragged blocks.
    pub fn reconstruct_into(
        &self,
        shares: &[&[u8]],
        out: &mut [u8],
    ) -> Result<(), crate::CodeError> {
        if shares.len() != self.shares.len() {
            return Err(crate::CodeError::WrongBlockCount {
                expected: self.shares.len(),
                got: shares.len(),
            });
        }
        out.fill(0);
        for (share, &(_, w)) in shares.iter().zip(&self.shares) {
            if share.len() != out.len() {
                return Err(crate::CodeError::LengthMismatch);
            }
            slice::mul_add_multi(&mut [&mut *out], &[w], share);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    fn apply(plan: &RepairPlan, stripe: &[Vec<u8>]) -> Vec<u8> {
        let shares: Vec<&[u8]> = plan.indices().map(|i| &stripe[i][..]).collect();
        let mut out = vec![0u8; stripe[0].len()];
        plan.reconstruct_into(&shares, &mut out).unwrap();
        out
    }

    #[test]
    fn family_keys_distinguish_families_of_equal_shape() {
        // RS(12, 16) and LRC(12, 3, 1) have identical (k, n) — the keys
        // must still differ, or a cached plan could cross families.
        let rs = CodeFamily::rs(12, 16).unwrap();
        let lrc = CodeFamily::lrc(12, 3, 1).unwrap();
        assert_eq!(rs.k(), lrc.k());
        assert_eq!(rs.n(), lrc.n());
        assert_ne!(rs.family_key(), lrc.family_key());
        assert_eq!(rs.family_key(), FamilyKey::Rs { k: 12, n: 16 });
        assert_eq!(lrc.family_key(), FamilyKey::Lrc { k: 12, g: 3, h: 1 });
    }

    #[test]
    fn deref_exposes_the_systematic_view() {
        let fam = CodeFamily::lrc(6, 2, 1).unwrap();
        assert_eq!(fam.k(), 6);
        assert_eq!(fam.n(), 9);
        assert_eq!(fam.p(), 3);
        let data = random_data(6, 16, 1);
        let stripe = fam.encode_stripe(&data).unwrap();
        assert!(fam.verify_stripe(&stripe).unwrap());
        assert_eq!(fam.tolerated_failures(), 2);
        assert_eq!(CodeFamily::rs(6, 9).unwrap().tolerated_failures(), 3);
    }

    #[test]
    fn rs_repair_plan_uses_k_shares() {
        let fam = CodeFamily::rs(4, 6).unwrap();
        let data = random_data(4, 32, 2);
        let stripe = fam.encode_stripe(&data).unwrap();
        let available: Vec<usize> = (0..6).filter(|&i| i != 1).collect();
        let plan = fam.repair_plan(1, &available).unwrap();
        assert_eq!(plan.lost(), 1);
        assert_eq!(plan.shares().len(), 4, "MDS repair reads k blocks");
        assert_eq!(apply(&plan, &stripe), stripe[1]);
    }

    #[test]
    fn lrc_single_loss_repairs_from_local_group() {
        let fam = CodeFamily::lrc(12, 3, 1).unwrap();
        let data = random_data(12, 64, 3);
        let stripe = fam.encode_stripe(&data).unwrap();
        let lrc = fam.as_lrc().unwrap();
        for lost in 0..fam.n() {
            let available: Vec<usize> = (0..fam.n()).filter(|&i| i != lost).collect();
            let plan = fam.repair_plan(lost, &available).unwrap();
            let expected = match lrc.group_of_index(lost) {
                // Local repair: the group's other members + its parity.
                Some(_) => lrc.group_size(),
                // A global parity needs a full k-block read.
                None => 12,
            };
            assert_eq!(plan.shares().len(), expected, "lost {lost}");
            assert_eq!(apply(&plan, &stripe), stripe[lost], "lost {lost}");
        }
    }

    #[test]
    fn lrc_repair_falls_back_beyond_the_local_group() {
        let fam = CodeFamily::lrc(6, 2, 2).unwrap(); // groups {0..3}, {3..6}
        let data = random_data(6, 24, 4);
        let stripe = fam.encode_stripe(&data).unwrap();
        // Lose data 0 *and* its whole group's parity-path: peers 1, 2 and
        // local parity 6 all gone. Repair must lean on globals.
        let available: Vec<usize> = (0..fam.n())
            .filter(|&i| ![0usize, 1, 6].contains(&i))
            .collect();
        let plan = fam.repair_plan(0, &available).unwrap();
        assert_eq!(apply(&plan, &stripe), stripe[0]);
        assert!(plan.shares().len() > fam.as_lrc().unwrap().group_size());
    }

    #[test]
    fn repair_plan_is_none_when_unrecoverable() {
        let fam = CodeFamily::lrc(4, 2, 1).unwrap(); // tolerates 2 losses
        // Lose data 0, 1 and local parity 4 and the global 6: group 0 is
        // beyond repair.
        let available = vec![2, 3, 5];
        assert!(fam.repair_plan(0, &available).is_none());
        // Self-repair and out-of-range indices are rejected.
        assert!(fam.repair_plan(99, &[0, 1, 2, 3]).is_none());
        let rs = CodeFamily::rs(2, 4).unwrap();
        assert!(rs.repair_plan(0, &[0, 1]).is_none(), "lost is filtered out");
    }

    #[test]
    fn select_decode_indices_skips_dependent_rows() {
        let fam = CodeFamily::lrc(4, 2, 1).unwrap();
        // {2, 3, 5} are dependent (local 5 = combo of data 2, 3): the
        // greedy sweep must skip 5 and finish with the global parity.
        let picked = fam.select_decode_indices(&[2, 3, 5, 4, 6]).unwrap();
        assert_eq!(picked, vec![2, 3, 4, 6]);
        let plan = fam.plan_decode(&picked).unwrap();
        let data = random_data(4, 16, 5);
        let stripe = fam.encode_stripe(&data).unwrap();
        let shares: Vec<&[u8]> = picked.iter().map(|&i| &stripe[i][..]).collect();
        let mut out = vec![vec![0u8; 16]; 4];
        let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
        plan.decode_into(&shares, &mut views).unwrap();
        assert_eq!(out, data);
        // Not enough rank at all → None.
        assert_eq!(fam.select_decode_indices(&[2, 3, 5]), None);
        // RS shortcut: first k of anything.
        let rs = CodeFamily::rs(3, 5).unwrap();
        assert_eq!(rs.select_decode_indices(&[4, 0, 2, 1]), Some(vec![4, 0, 2]));
        assert_eq!(rs.select_decode_indices(&[4, 0]), None);
    }

    #[test]
    fn any_h_plus_one_erasures_stay_decodable() {
        // The pyramid code's distance claim, checked exhaustively for a
        // small shape: every (h+1)-subset of losses leaves a decodable set.
        let fam = CodeFamily::lrc(6, 3, 2).unwrap(); // n = 11, tolerate 3
        let n = fam.n();
        let data = random_data(6, 8, 6);
        let stripe = fam.encode_stripe(&data).unwrap();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let available: Vec<usize> =
                        (0..n).filter(|&i| i != a && i != b && i != c).collect();
                    let picked = fam
                        .select_decode_indices(&available)
                        .unwrap_or_else(|| panic!("losses {a},{b},{c} undecodable"));
                    let plan = fam.plan_decode(&picked).unwrap();
                    let shares: Vec<&[u8]> = picked.iter().map(|&i| &stripe[i][..]).collect();
                    let mut out = vec![vec![0u8; 8]; 6];
                    let mut views: Vec<&mut [u8]> =
                        out.iter_mut().map(|v| v.as_mut_slice()).collect();
                    plan.decode_into(&shares, &mut views).unwrap();
                    assert_eq!(out, data, "losses {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn reconstruct_into_validates_shapes() {
        let fam = CodeFamily::rs(2, 4).unwrap();
        let plan = fam.repair_plan(0, &[1, 2, 3]).unwrap();
        let b = [0u8; 8];
        let mut out = [0u8; 8];
        assert!(matches!(
            plan.reconstruct_into(&[&b[..]], &mut out),
            Err(crate::CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            plan.reconstruct_into(&[&b[..], &b[..4]], &mut out),
            Err(crate::CodeError::LengthMismatch)
        ));
    }
}
