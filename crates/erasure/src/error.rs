//! Error type for erasure-code operations.

use core::fmt;

/// Errors returned by code construction, encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// The (k, n) pair does not satisfy `1 ≤ k < n ≤ 256`.
    InvalidParams {
        /// Requested data-block count.
        k: usize,
        /// Requested total-block count.
        n: usize,
    },
    /// The number of blocks passed differs from what the operation needs.
    WrongBlockCount {
        /// How many blocks the operation requires.
        expected: usize,
        /// How many were supplied.
        got: usize,
    },
    /// Blocks in one call have different lengths.
    LengthMismatch,
    /// A block has an odd byte length where the code requires whole
    /// symbols wider than a byte (wide codes interpret blocks as
    /// little-endian `u16` words).
    OddBlockLength {
        /// The offending byte length.
        len: usize,
    },
    /// A share index is not in `0..n`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The stripe width.
        n: usize,
    },
    /// The same share index was supplied twice.
    DuplicateShare {
        /// The duplicated index.
        index: usize,
    },
    /// The selected shares do not form an invertible system.
    ///
    /// For an MDS code with distinct share indices this cannot happen; it is
    /// kept as an error rather than a panic so that generic (possibly
    /// non-MDS) codes built with [`crate::LinearCode`] degrade gracefully.
    NotDecodable,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { k, n } => {
                write!(f, "invalid code parameters k={k}, n={n} (need 1 <= k < n <= 256)")
            }
            CodeError::WrongBlockCount { expected, got } => {
                write!(f, "expected {expected} blocks, got {got}")
            }
            CodeError::LengthMismatch => write!(f, "blocks have mismatched lengths"),
            CodeError::OddBlockLength { len } => {
                write!(
                    f,
                    "block length {len} is odd; wide codes require whole little-endian u16 words"
                )
            }
            CodeError::IndexOutOfRange { index, n } => {
                write!(f, "share index {index} out of range for stripe of {n} blocks")
            }
            CodeError::DuplicateShare { index } => {
                write!(f, "share index {index} supplied more than once")
            }
            CodeError::NotDecodable => {
                write!(f, "selected shares do not determine the data blocks")
            }
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            CodeError::InvalidParams { k: 4, n: 4 }.to_string(),
            CodeError::WrongBlockCount { expected: 3, got: 1 }.to_string(),
            CodeError::LengthMismatch.to_string(),
            CodeError::OddBlockLength { len: 7 }.to_string(),
            CodeError::IndexOutOfRange { index: 9, n: 4 }.to_string(),
            CodeError::DuplicateShare { index: 2 }.to_string(),
            CodeError::NotDecodable.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CodeError::LengthMismatch);
        assert_eq!(e.to_string(), "blocks have mismatched lengths");
    }
}
