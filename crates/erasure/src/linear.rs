//! Generic linear erasure codes over any [`Field`].
//!
//! The AJX protocol is "tailored for linear erasure codes, like Reed-Solomon
//! codes, where redundant blocks are updated with commutative operations"
//! (§1, limitations). This module captures that class abstractly: a code is
//! a `p × k` coefficient matrix, and everything the protocol needs —
//! encode, decode-from-any-k-ish subset, delta updates — follows from
//! linearity alone. [`crate::ReedSolomon`] is the production instance over
//! GF(2⁸) and [`crate::WideReedSolomon`] over GF(2¹⁶) (both stream bytes
//! through the `ajx_gf` kernel tiers rather than wrapping each symbol in a
//! field element — this generic form doubles as their differential-test
//! reference); [`toy_2_of_4`] is the paper's §3.3 teaching example over
//! GF(257).

use crate::error::CodeError;
use crate::matrix::Matrix;
use ajx_gf::{Field, Gf257};

/// A linear systematic code over field `F`, defined by its redundancy
/// coefficient matrix `α` (`p` rows × `k` columns): redundant symbol `j`
/// is `Σ_i α[j][i] · data[i]`.
///
/// Unlike [`crate::ReedSolomon`] this type does not promise MDS-ness; decode
/// reports [`CodeError::NotDecodable`] if the chosen share subset is
/// singular. Blocks are vectors of field elements, making it usable over
/// fields (like GF(257)) whose elements are not bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCode<F> {
    k: usize,
    n: usize,
    alpha: Matrix<F>,
}

impl<F: Field> LinearCode<F> {
    /// Builds a code from its redundancy coefficient rows.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParams`] if `k` is zero or there are no rows.
    pub fn from_coefficients(alpha: Matrix<F>) -> Result<Self, CodeError> {
        let k = alpha.cols();
        let p = alpha.rows();
        if k == 0 || p == 0 {
            return Err(CodeError::InvalidParams { k, n: k + p });
        }
        Ok(LinearCode { k, n: k + p, alpha })
    }

    /// Number of data symbols per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total symbols per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The coefficient `α_ji` of data symbol `i` in redundant symbol `j`.
    pub fn coefficient(&self, j: usize, i: usize) -> F {
        self.alpha[(j, i)]
    }

    /// Encodes `data` (k blocks of equal length) into `p` redundant blocks.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] / [`CodeError::LengthMismatch`] on
    /// malformed input.
    pub fn encode(&self, data: &[Vec<F>]) -> Result<Vec<Vec<F>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let len = equal_lengths(data)?;
        let p = self.n - self.k;
        let mut out = vec![vec![F::ZERO; len]; p];
        for (j, red) in out.iter_mut().enumerate() {
            for (i, d) in data.iter().enumerate() {
                let c = self.alpha[(j, i)];
                for (o, &x) in red.iter_mut().zip(d) {
                    *o = *o + c * x;
                }
            }
        }
        Ok(out)
    }

    /// Encodes the full stripe (data followed by redundancy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearCode::encode`].
    pub fn encode_stripe(&self, data: &[Vec<F>]) -> Result<Vec<Vec<F>>, CodeError> {
        let mut stripe = data.to_vec();
        stripe.extend(self.encode(data)?);
        Ok(stripe)
    }

    /// Decodes the data symbols from `k` distinct shares.
    ///
    /// # Errors
    ///
    /// Share-validation errors as in [`crate::ReedSolomon::decode`], plus
    /// [`CodeError::NotDecodable`] if this subset is singular (possible for
    /// non-MDS coefficient choices).
    pub fn decode(&self, shares: &[(usize, Vec<F>)]) -> Result<Vec<Vec<F>>, CodeError> {
        if shares.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: shares.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &(idx, _) in shares {
            if idx >= self.n {
                return Err(CodeError::IndexOutOfRange { index: idx, n: self.n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
        }
        let blocks: Vec<&Vec<F>> = shares.iter().map(|(_, b)| b).collect();
        let len = equal_lengths(&blocks)?;

        let rows: Vec<Vec<F>> = shares
            .iter()
            .map(|&(idx, _)| {
                if idx < self.k {
                    let mut row = vec![F::ZERO; self.k];
                    row[idx] = F::ONE;
                    row
                } else {
                    self.alpha.row(idx - self.k).to_vec()
                }
            })
            .collect();
        let inv = Matrix::from_rows(rows)
            .inverted()
            .ok_or(CodeError::NotDecodable)?;

        let mut data = vec![vec![F::ZERO; len]; self.k];
        for (i, out) in data.iter_mut().enumerate() {
            for (s, (_, share)) in shares.iter().enumerate() {
                let c = inv[(i, s)];
                if c.is_zero() {
                    continue;
                }
                for (o, &x) in out.iter_mut().zip(share) {
                    *o = *o + c * x;
                }
            }
        }
        Ok(data)
    }

    /// The delta `α_ji · (new − old)` a redundant node must *add* when data
    /// symbol-block `i` changes — linearity makes these adds commute across
    /// concurrent writers, the key insight of Fig. 3.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new` and `old` differ in length.
    pub fn delta(&self, j: usize, i: usize, new: &[F], old: &[F]) -> Result<Vec<F>, CodeError> {
        if new.len() != old.len() {
            return Err(CodeError::LengthMismatch);
        }
        let c = self.alpha[(j, i)];
        Ok(new
            .iter()
            .zip(old)
            .map(|(&v, &w)| c * (v - w))
            .collect())
    }
}

fn equal_lengths<F, B: AsRef<[F]>>(blocks: &[B]) -> Result<usize, CodeError> {
    let len = blocks.first().map_or(0, |b| b.as_ref().len());
    if blocks.iter().any(|b| b.as_ref().len() != len) {
        return Err(CodeError::LengthMismatch);
    }
    Ok(len)
}

/// The paper's §3.3 teaching code: stripe `(a, b, a+b, a−b)` over GF(257).
///
/// A 2-of-4 MDS code in a field of characteristic ≠ 2 (the paper's footnote:
/// "+ and − must be taken over a field with characteristic ≠ 2").
///
/// # Example
///
/// ```
/// use ajx_erasure::toy_2_of_4;
/// use ajx_gf::{Field, Gf257};
///
/// let code = toy_2_of_4();
/// let a: Vec<Gf257> = vec![Gf257::from_u64(7)];
/// let b: Vec<Gf257> = vec![Gf257::from_u64(5)];
/// let stripe = code.encode_stripe(&[a.clone(), b]).unwrap();
/// assert_eq!(stripe[2][0].to_u64(), 12); // a + b
/// assert_eq!(stripe[3][0].to_u64(), 2);  // a - b
/// // Lose both data blocks; recover from (a+b, a−b) alone.
/// let data = code.decode(&[(2, stripe[2].clone()), (3, stripe[3].clone())]).unwrap();
/// assert_eq!(data[0], a);
/// ```
pub fn toy_2_of_4() -> LinearCode<Gf257> {
    let one = Gf257::ONE;
    let alpha = Matrix::from_rows(vec![
        vec![one, one],  // a + b
        vec![one, -one], // a - b
    ]);
    LinearCode::from_coefficients(alpha).expect("valid 2x2 coefficients")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajx_gf::Gf257;

    fn elems(vals: &[u64]) -> Vec<Gf257> {
        vals.iter().map(|&v| Gf257::from_u64(v)).collect()
    }

    #[test]
    fn toy_code_recovers_from_every_pair() {
        let code = toy_2_of_4();
        let a = elems(&[10, 250, 3]);
        let b = elems(&[200, 100, 256]);
        let stripe = code.encode_stripe(&[a.clone(), b.clone()]).unwrap();
        for x in 0..4 {
            for y in (x + 1)..4 {
                let got = code
                    .decode(&[(x, stripe[x].clone()), (y, stripe[y].clone())])
                    .unwrap();
                assert_eq!(got, vec![a.clone(), b.clone()], "pair {x},{y}");
            }
        }
    }

    #[test]
    fn toy_code_beats_replication() {
        // The paper's §3.3 point: replicate (a, b, a, b) and losing both
        // copies of `a` is fatal; the toy code survives losing blocks 0 and 2
        // (both of which involve `a`).
        let code = toy_2_of_4();
        let a = elems(&[42]);
        let b = elems(&[17]);
        let stripe = code.encode_stripe(&[a.clone(), b]).unwrap();
        let got = code
            .decode(&[(1, stripe[1].clone()), (3, stripe[3].clone())])
            .unwrap();
        assert_eq!(got[0], a);
    }

    #[test]
    fn delta_update_matches_reencode() {
        let code = toy_2_of_4();
        let a = elems(&[1, 2]);
        let b = elems(&[3, 4]);
        let mut stripe = code.encode_stripe(&[a.clone(), b.clone()]).unwrap();
        let c = elems(&[100, 200]);
        for j in 0..2 {
            let d = code.delta(j, 0, &c, &a).unwrap();
            for (s, dd) in stripe[2 + j].iter_mut().zip(d) {
                *s += dd;
            }
        }
        stripe[0] = c.clone();
        assert_eq!(stripe, code.encode_stripe(&[c, b]).unwrap());
    }

    #[test]
    fn non_mds_code_reports_not_decodable() {
        // Redundant row (1, 0) duplicates data symbol 0: the subset
        // {data0, red0} is singular.
        let alpha = Matrix::from_rows(vec![vec![Gf257::ONE, Gf257::ZERO]]);
        let code = LinearCode::from_coefficients(alpha).unwrap();
        let stripe = code
            .encode_stripe(&[elems(&[5]), elems(&[6])])
            .unwrap();
        let err = code
            .decode(&[(0, stripe[0].clone()), (2, stripe[2].clone())])
            .unwrap_err();
        assert_eq!(err, CodeError::NotDecodable);
        // But {data1, red0} works.
        let ok = code
            .decode(&[(1, stripe[1].clone()), (2, stripe[2].clone())])
            .unwrap();
        assert_eq!(ok, vec![elems(&[5]), elems(&[6])]);
    }

    #[test]
    fn rejects_empty_coefficients() {
        let alpha = Matrix::<Gf257>::zero(0, 0);
        assert!(LinearCode::from_coefficients(alpha).is_err());
    }
}
