//! Systematic k-of-n Reed-Solomon codes over GF(2⁸) with incremental
//! ("delta") updates — the erasure-code substrate of the AJX protocol.
//!
//! A stripe holds `k` data blocks `b_1..b_k` and `p = n−k` redundant blocks
//! `b_{k+1}..b_n`, where `b_j = Σ_i α_ji · b_i` (§3.3 of the paper). The
//! coefficients come from a Vandermonde-derived systematic generator matrix,
//! so the code is MDS: *any* `k` of the `n` blocks reconstruct the data.
//!
//! The protocol never re-encodes a stripe on a write; it sends each
//! redundant node the increment `α_ji · (v − w)` (Fig. 3/Fig. 5), which this
//! module computes with [`ReedSolomon::delta`].

use crate::error::CodeError;
use crate::matrix::Matrix;
use ajx_gf::{slice, Field, Gf256};

/// Largest supported stripe width: GF(2⁸) offers 256 distinct evaluation
/// points.
pub const MAX_N: usize = 256;

/// A systematic k-of-n Reed-Solomon erasure code.
///
/// # Example
///
/// ```
/// use ajx_erasure::ReedSolomon;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// let rs = ReedSolomon::new(3, 5)?; // 3 data + 2 redundant blocks
/// let data: Vec<Vec<u8>> = vec![vec![1; 16], vec![2; 16], vec![3; 16]];
/// let stripe = rs.encode_stripe(&data)?;
/// // Lose any two blocks — say blocks 0 and 3 — and recover the data:
/// let survivors: Vec<(usize, &[u8])> =
///     vec![(1, &stripe[1][..]), (2, &stripe[2][..]), (4, &stripe[4][..])];
/// let recovered = rs.decode(&survivors)?;
/// assert_eq!(recovered, data);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// `p × k` matrix of redundancy coefficients: `red[(j, i)] = α_{k+j, i}`.
    red: Matrix<Gf256>,
}

impl ReedSolomon {
    /// Builds the code with `k` data blocks and `n` total blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `1 ≤ k < n ≤ 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > MAX_N {
            return Err(CodeError::InvalidParams { k, n });
        }
        // Systematic construction: with V the n×k Vandermonde matrix on
        // distinct points, G = V · V_top⁻¹ has an identity top block, and
        // any k rows of G remain invertible (product of invertibles), so
        // the code is MDS.
        let v = Matrix::<Gf256>::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("vandermonde on distinct points is invertible");
        let bottom = v.select_rows(&(k..n).collect::<Vec<_>>());
        let red = bottom.mul(&top_inv);
        Ok(ReedSolomon { k, n, red })
    }

    /// Number of data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of blocks per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of redundant blocks per stripe (`p = n − k`).
    pub fn p(&self) -> usize {
        self.n - self.k
    }

    /// The erasure-code coefficient `α_ji` applied to data block `i`
    /// (`0 ≤ i < k`) in redundant block `k + j` (`0 ≤ j < p`).
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn coefficient(&self, j: usize, i: usize) -> Gf256 {
        assert!(j < self.p(), "redundant index {j} out of range");
        assert!(i < self.k, "data index {i} out of range");
        self.red[(j, i)]
    }

    /// Computes the `p` redundant blocks for `data` (one `Vec` per block).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] if `data.len() != k`;
    /// [`CodeError::LengthMismatch`] if the blocks differ in length.
    pub fn encode<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let len = check_equal_lengths(data)?;
        let mut out = vec![vec![0u8; len]; self.p()];
        for (j, red_block) in out.iter_mut().enumerate() {
            for (i, d) in data.iter().enumerate() {
                slice::mul_add_assign(red_block, self.red[(j, i)].as_byte(), d.as_ref());
            }
        }
        Ok(out)
    }

    /// Computes the full stripe: the `k` data blocks followed by the `p`
    /// redundant blocks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::encode`].
    pub fn encode_stripe<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        let red = self.encode(data)?;
        let mut stripe: Vec<Vec<u8>> = data.iter().map(|b| b.as_ref().to_vec()).collect();
        stripe.extend(red);
        Ok(stripe)
    }

    /// Recovers the `k` data blocks from any `k` distinct stripe blocks.
    ///
    /// `shares` pairs each block with its index in the stripe
    /// (`0..k` data, `k..n` redundant). Exactly `k` shares must be given;
    /// callers with more should pick any `k` (the protocol's recovery picks
    /// the consistent set, §3.8).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] unless exactly `k` shares are given;
    /// [`CodeError::IndexOutOfRange`] / [`CodeError::DuplicateShare`] on bad
    /// indices; [`CodeError::LengthMismatch`] on ragged blocks.
    pub fn decode(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        if shares.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: shares.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &(idx, _) in shares {
            if idx >= self.n {
                return Err(CodeError::IndexOutOfRange { index: idx, n: self.n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
        }
        let blocks: Vec<&[u8]> = shares.iter().map(|&(_, b)| b).collect();
        let len = check_equal_lengths(&blocks)?;

        // Row for share `idx`: unit vector for data blocks, coefficient row
        // for redundant blocks. The k×k system is invertible by MDS-ness.
        let rows: Vec<Vec<Gf256>> = shares
            .iter()
            .map(|&(idx, _)| {
                if idx < self.k {
                    let mut row = vec![Gf256::ZERO; self.k];
                    row[idx] = Gf256::ONE;
                    row
                } else {
                    self.red.row(idx - self.k).to_vec()
                }
            })
            .collect();
        let m = Matrix::from_rows(rows);
        let inv = m.inverted().ok_or(CodeError::NotDecodable)?;

        let mut data = vec![vec![0u8; len]; self.k];
        for (i, out) in data.iter_mut().enumerate() {
            for (s, &(_, share)) in shares.iter().enumerate() {
                slice::mul_add_assign(out, inv[(i, s)].as_byte(), share);
            }
        }
        Ok(data)
    }

    /// Recovers the **entire stripe** (all `n` blocks) from any `k` shares:
    /// decode the data, then re-encode the redundancy. This is what the
    /// recovery procedure's `erasure_decode` (Fig. 6 line 21) needs, since
    /// it rewrites every storage node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode`].
    pub fn reconstruct_stripe(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        let data = self.decode(shares)?;
        self.encode_stripe(&data)
    }

    /// The increment a client sends redundant node `k + j` when data block
    /// `i` changes from `old` to `new`: `α_ji · (new − old)` (Fig. 5
    /// line 10). The redundant node simply XORs this into its block.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new` and `old` differ in length.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn delta(&self, j: usize, i: usize, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        if new.len() != old.len() {
            return Err(CodeError::LengthMismatch);
        }
        let c = self.coefficient(j, i);
        let mut out = vec![0u8; new.len()];
        slice::delta_into(&mut out, c.as_byte(), new, old);
        Ok(out)
    }

    /// The *broadcast* form of the increment (§3.11): the client sends the
    /// plain difference `new − old` once, and each redundant node multiplies
    /// by its own `α_ji` before adding. Returns the difference block.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new` and `old` differ in length.
    pub fn broadcast_delta(&self, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        if new.len() != old.len() {
            return Err(CodeError::LengthMismatch);
        }
        let mut out = new.to_vec();
        slice::add_assign(&mut out, old);
        Ok(out)
    }

    /// Applies a received broadcast difference at redundant node `k + j` for
    /// a write to data block `i`: computes `α_ji · diff` (the node-side
    /// multiply of §3.11).
    pub fn scale_broadcast_delta(&self, j: usize, i: usize, diff: &[u8]) -> Vec<u8> {
        let c = self.coefficient(j, i);
        let mut out = diff.to_vec();
        slice::mul_assign(&mut out, c.as_byte());
        out
    }

    /// Checks that a full stripe is consistent with the code (redundant
    /// blocks equal the encoding of the data blocks). Used pervasively in
    /// tests; a real system cannot afford this check per access, which is
    /// exactly why the paper needs `recentlist` bookkeeping (§3.8).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] / [`CodeError::LengthMismatch`] on a
    /// malformed stripe.
    pub fn verify_stripe<B: AsRef<[u8]>>(&self, stripe: &[B]) -> Result<bool, CodeError> {
        if stripe.len() != self.n {
            return Err(CodeError::WrongBlockCount {
                expected: self.n,
                got: stripe.len(),
            });
        }
        check_equal_lengths(stripe)?;
        let red = self.encode(&stripe[..self.k])?;
        Ok(red
            .iter()
            .zip(&stripe[self.k..])
            .all(|(a, b)| a.as_slice() == b.as_ref()))
    }
}

fn check_equal_lengths<B: AsRef<[u8]>>(blocks: &[B]) -> Result<usize, CodeError> {
    let len = blocks.first().map_or(0, |b| b.as_ref().len());
    if blocks.iter().any(|b| b.as_ref().len() != len) {
        return Err(CodeError::LengthMismatch);
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(2, 257).is_err());
        assert!(ReedSolomon::new(1, 2).is_ok());
        assert!(ReedSolomon::new(16, 32).is_ok());
    }

    #[test]
    fn encode_then_verify() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = random_data(3, 64, 1);
        let stripe = rs.encode_stripe(&data).unwrap();
        assert!(rs.verify_stripe(&stripe).unwrap());
        // Corrupt one byte: verification fails.
        let mut bad = stripe.clone();
        bad[4][10] ^= 1;
        assert!(!rs.verify_stripe(&bad).unwrap());
    }

    #[test]
    fn decode_from_every_k_subset() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = random_data(3, 32, 2);
        let stripe = rs.encode_stripe(&data).unwrap();
        // All C(6,3) = 20 subsets must decode.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let shares: Vec<(usize, &[u8])> =
                        vec![(a, &stripe[a][..]), (b, &stripe[b][..]), (c, &stripe[c][..])];
                    assert_eq!(rs.decode(&shares).unwrap(), data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_order_does_not_matter() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = random_data(2, 16, 3);
        let stripe = rs.encode_stripe(&data).unwrap();
        let fwd: Vec<(usize, &[u8])> = vec![(1, &stripe[1][..]), (3, &stripe[3][..])];
        let rev: Vec<(usize, &[u8])> = vec![(3, &stripe[3][..]), (1, &stripe[1][..])];
        assert_eq!(rs.decode(&fwd).unwrap(), rs.decode(&rev).unwrap());
    }

    #[test]
    fn decode_rejects_bad_shares() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let b = [0u8; 8];
        assert!(matches!(
            rs.decode(&[(0, &b[..])]),
            Err(CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (0, &b[..])]),
            Err(CodeError::DuplicateShare { .. })
        ));
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (9, &b[..])]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
        let short = [0u8; 4];
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (1, &short[..])]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn delta_update_equals_reencode() {
        // The core algebraic fact behind the lock-free write (Fig. 3): after
        // swapping block i and adding α·(v−w) at every redundant node, the
        // stripe equals a fresh encoding of the new data.
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut data = random_data(4, 48, 4);
        let mut stripe = rs.encode_stripe(&data).unwrap();

        let new_block: Vec<u8> = (0..48).map(|x| (x * 37 % 251) as u8).collect();
        let old = std::mem::replace(&mut data[2], new_block.clone());

        // Apply the protocol's delta path.
        stripe[2] = new_block.clone();
        for j in 0..rs.p() {
            let d = rs.delta(j, 2, &new_block, &old).unwrap();
            ajx_gf::slice::add_assign(&mut stripe[rs.k() + j], &d);
        }
        assert_eq!(stripe, rs.encode_stripe(&data).unwrap());
    }

    #[test]
    fn broadcast_delta_equals_per_node_delta() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let old = random_data(1, 32, 5).pop().unwrap();
        let new = random_data(1, 32, 6).pop().unwrap();
        let diff = rs.broadcast_delta(&new, &old).unwrap();
        for j in 0..rs.p() {
            assert_eq!(
                rs.scale_broadcast_delta(j, 1, &diff),
                rs.delta(j, 1, &new, &old).unwrap(),
                "redundant node {j}"
            );
        }
    }

    #[test]
    fn concurrent_interleaved_deltas_commute() {
        // Fig. 3(C): two clients update different blocks concurrently; adds
        // interleave arbitrarily at redundant nodes yet the stripe converges.
        let rs = ReedSolomon::new(2, 4).unwrap();
        let a0 = vec![10u8; 8];
        let b0 = vec![20u8; 8];
        let mut stripe = rs.encode_stripe(&[a0.clone(), b0.clone()]).unwrap();

        let c = vec![33u8; 8]; // client 1: a -> c
        let d = vec![44u8; 8]; // client 2: b -> d

        let d1: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 0, &c, &a0).unwrap()).collect();
        let d2: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 1, &d, &b0).unwrap()).collect();

        stripe[0] = c.clone();
        stripe[1] = d.clone();
        // Interleave: node 2 sees client1 then client2; node 3 the reverse.
        ajx_gf::slice::add_assign(&mut stripe[2], &d1[0]);
        ajx_gf::slice::add_assign(&mut stripe[2], &d2[0]);
        ajx_gf::slice::add_assign(&mut stripe[3], &d2[1]);
        ajx_gf::slice::add_assign(&mut stripe[3], &d1[1]);

        assert_eq!(stripe, rs.encode_stripe(&[c, d]).unwrap());
    }

    #[test]
    fn empty_blocks_are_legal() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let stripe = rs.encode_stripe(&[vec![], vec![]]).unwrap();
        assert!(stripe.iter().all(Vec::is_empty));
        let shares: Vec<(usize, &[u8])> = vec![(2, &stripe[2][..]), (3, &stripe[3][..])];
        assert_eq!(rs.decode(&shares).unwrap(), vec![vec![0u8; 0]; 2]);
    }

    #[test]
    fn large_code_roundtrip() {
        // The largest code used in the paper's simulations (§6.6).
        let rs = ReedSolomon::new(16, 32).unwrap();
        let data = random_data(16, 128, 7);
        let stripe = rs.encode_stripe(&data).unwrap();
        // Drop all 16 data blocks; recover purely from redundancy.
        let shares: Vec<(usize, &[u8])> = (16..32).map(|i| (i, &stripe[i][..])).collect();
        assert_eq!(rs.decode(&shares).unwrap(), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_decode_any_subset(
            seed in any::<u64>(),
            k in 1usize..6,
            extra in 1usize..5,
            len in 1usize..40,
        ) {
            let n = k + extra;
            let rs = ReedSolomon::new(k, n).unwrap();
            let data = random_data(k, len, seed);
            let stripe = rs.encode_stripe(&data).unwrap();

            // Pick a pseudo-random k-subset of indices.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            let shares: Vec<(usize, &[u8])> = idx.iter().map(|&i| (i, &stripe[i][..])).collect();
            prop_assert_eq!(rs.decode(&shares).unwrap(), data);
        }

        #[test]
        fn prop_delta_sequence_stays_consistent(
            seed in any::<u64>(),
            writes in proptest::collection::vec((0usize..4, any::<u8>()), 1..12),
        ) {
            let rs = ReedSolomon::new(4, 7).unwrap();
            let mut data = random_data(4, 16, seed);
            let mut stripe = rs.encode_stripe(&data).unwrap();
            for (i, fill) in writes {
                let new = vec![fill; 16];
                let old = std::mem::replace(&mut data[i], new.clone());
                stripe[i] = new.clone();
                for j in 0..rs.p() {
                    let d = rs.delta(j, i, &new, &old).unwrap();
                    ajx_gf::slice::add_assign(&mut stripe[rs.k() + j], &d);
                }
            }
            prop_assert!(rs.verify_stripe(&stripe).unwrap());
        }
    }
}
