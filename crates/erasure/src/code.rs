//! Systematic k-of-n Reed-Solomon codes over GF(2⁸) with incremental
//! ("delta") updates — the erasure-code substrate of the AJX protocol.
//!
//! A stripe holds `k` data blocks `b_1..b_k` and `p = n−k` redundant blocks
//! `b_{k+1}..b_n`, where `b_j = Σ_i α_ji · b_i` (§3.3 of the paper). The
//! coefficients come from a Vandermonde-derived systematic generator matrix,
//! so the code is MDS: *any* `k` of the `n` blocks reconstruct the data.
//!
//! The protocol never re-encodes a stripe on a write; it sends each
//! redundant node the increment `α_ji · (v − w)` (Fig. 3/Fig. 5), which this
//! module computes with [`ReedSolomon::delta`].

use crate::error::CodeError;
use crate::matrix::Matrix;
use ajx_gf::{slice, Field, Gf256};

/// Largest supported stripe width: GF(2⁸) offers 256 distinct evaluation
/// points.
pub const MAX_N: usize = 256;

/// A systematic k-of-n Reed-Solomon erasure code.
///
/// # Example
///
/// ```
/// use ajx_erasure::ReedSolomon;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// let rs = ReedSolomon::new(3, 5)?; // 3 data + 2 redundant blocks
/// let data: Vec<Vec<u8>> = vec![vec![1; 16], vec![2; 16], vec![3; 16]];
/// let stripe = rs.encode_stripe(&data)?;
/// // Lose any two blocks — say blocks 0 and 3 — and recover the data:
/// let survivors: Vec<(usize, &[u8])> =
///     vec![(1, &stripe[1][..]), (2, &stripe[2][..]), (4, &stripe[4][..])];
/// let recovered = rs.decode(&survivors)?;
/// assert_eq!(recovered, data);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// `p × k` matrix of redundancy coefficients: `red[(j, i)] = α_{k+j, i}`.
    red: Matrix<Gf256>,
    /// The same coefficients laid out column-major as raw bytes:
    /// `red_cols[i][j] = α_{k+j, i}`. Precomputed at construction so the
    /// fused multi-row encode ([`slice::mul_add_multi`]) can stream data
    /// block `i` through all `p` redundant rows without building anything
    /// per call. (The per-coefficient product tables themselves are
    /// compile-time constants in `ajx_gf::kernel`.)
    red_cols: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Builds the code with `k` data blocks and `n` total blocks.
    ///
    /// All per-coefficient state the hot paths need — the column-major
    /// coefficient layout here, the product/nibble tables in
    /// `ajx_gf::kernel` — exists after this call; no encode, decode or
    /// delta ever constructs a table again.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] unless `1 ≤ k < n ≤ 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > MAX_N {
            return Err(CodeError::InvalidParams { k, n });
        }
        // Systematic construction: with V the n×k Vandermonde matrix on
        // distinct points, G = V · V_top⁻¹ has an identity top block, and
        // any k rows of G remain invertible (product of invertibles), so
        // the code is MDS.
        let v = Matrix::<Gf256>::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("vandermonde on distinct points is invertible");
        let bottom = v.select_rows(&(k..n).collect::<Vec<_>>());
        let red = bottom.mul(&top_inv);
        let p = n - k;
        let red_cols = (0..k)
            .map(|i| (0..p).map(|j| red[(j, i)].as_byte()).collect())
            .collect();
        Ok(ReedSolomon {
            k,
            n,
            red,
            red_cols,
        })
    }

    /// Builds a systematic linear code directly from a `p × k` parity
    /// matrix (`p = red.rows()`, so `n = k + p`).
    ///
    /// Unlike [`ReedSolomon::new`], the resulting code is only MDS if the
    /// caller's parity matrix is superregular; the pyramid LRC construction
    /// in [`crate::Lrc`] deliberately passes a *non*-MDS parity (local
    /// parity rows are zero outside their group), relying on
    /// [`ReedSolomon::plan_decode`] returning [`CodeError::NotDecodable`]
    /// for share sets that do not determine the data.
    pub(crate) fn from_parity(k: usize, red: Matrix<Gf256>) -> Result<Self, CodeError> {
        let p = red.rows();
        let n = k + p;
        if k == 0 || p == 0 || n > MAX_N || red.cols() != k {
            return Err(CodeError::InvalidParams { k, n });
        }
        let red_cols = (0..k)
            .map(|i| (0..p).map(|j| red[(j, i)].as_byte()).collect())
            .collect();
        Ok(ReedSolomon {
            k,
            n,
            red,
            red_cols,
        })
    }

    /// The full `p × k` parity (redundancy) matrix.
    pub(crate) fn parity(&self) -> &Matrix<Gf256> {
        &self.red
    }

    /// Number of data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of blocks per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of redundant blocks per stripe (`p = n − k`).
    pub fn p(&self) -> usize {
        self.n - self.k
    }

    /// The erasure-code coefficient `α_ji` applied to data block `i`
    /// (`0 ≤ i < k`) in redundant block `k + j` (`0 ≤ j < p`).
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn coefficient(&self, j: usize, i: usize) -> Gf256 {
        assert!(j < self.p(), "redundant index {j} out of range");
        assert!(i < self.k, "data index {i} out of range");
        self.red[(j, i)]
    }

    /// Computes the `p` redundant blocks for `data` (one `Vec` per block).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] if `data.len() != k`;
    /// [`CodeError::LengthMismatch`] if the blocks differ in length.
    pub fn encode<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        let len = data.first().map_or(0, |b| b.as_ref().len());
        let mut out = vec![vec![0u8; len]; self.p()];
        let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
        self.encode_into(data, &mut views)?;
        Ok(out)
    }

    /// [`encode`](ReedSolomon::encode) into caller-owned scratch: fills the
    /// `p` pre-sized blocks of `out` with the redundancy for `data`,
    /// performing **no heap allocation**. Each data block is streamed once
    /// through all `p` output rows via the fused multi-row kernel.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] if `data.len() != k` or
    /// `out.len() != p`; [`CodeError::LengthMismatch`] if any block length
    /// disagrees.
    pub fn encode_into<B: AsRef<[u8]>>(
        &self,
        data: &[B],
        out: &mut [&mut [u8]],
    ) -> Result<(), CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: data.len(),
            });
        }
        if out.len() != self.p() {
            return Err(CodeError::WrongBlockCount {
                expected: self.p(),
                got: out.len(),
            });
        }
        let len = check_equal_lengths(data)?;
        for o in out.iter_mut() {
            if o.len() != len {
                return Err(CodeError::LengthMismatch);
            }
            o.fill(0);
        }
        for (i, d) in data.iter().enumerate() {
            slice::mul_add_multi(out, &self.red_cols[i], d.as_ref());
        }
        Ok(())
    }

    /// Computes the full stripe: the `k` data blocks followed by the `p`
    /// redundant blocks.
    ///
    /// This clones the data blocks because the returned stripe owns all `n`
    /// blocks. Callers that already own `data` should use
    /// [`ReedSolomon::encode_stripe_owned`] (moves the data in, no copy);
    /// callers that only need to *read* a full stripe should use
    /// [`ReedSolomon::encode`] and keep borrowing their data blocks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::encode`].
    pub fn encode_stripe<B: AsRef<[u8]>>(&self, data: &[B]) -> Result<Vec<Vec<u8>>, CodeError> {
        let red = self.encode(data)?;
        let mut stripe: Vec<Vec<u8>> = data.iter().map(|b| b.as_ref().to_vec()).collect();
        stripe.extend(red);
        Ok(stripe)
    }

    /// [`encode_stripe`](ReedSolomon::encode_stripe) taking the data blocks
    /// by value: the returned stripe reuses them directly instead of copying
    /// all `k` blocks, so only the `p` redundant blocks are allocated.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::encode`].
    pub fn encode_stripe_owned(&self, data: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CodeError> {
        let red = self.encode(&data)?;
        let mut stripe = data;
        stripe.extend(red);
        Ok(stripe)
    }

    /// Recovers the `k` data blocks from any `k` distinct stripe blocks.
    ///
    /// `shares` pairs each block with its index in the stripe
    /// (`0..k` data, `k..n` redundant). Exactly `k` shares must be given;
    /// callers with more should pick any `k` (the protocol's recovery picks
    /// the consistent set, §3.8).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] unless exactly `k` shares are given;
    /// [`CodeError::IndexOutOfRange`] / [`CodeError::DuplicateShare`] on bad
    /// indices; [`CodeError::LengthMismatch`] on ragged blocks.
    pub fn decode(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        let indices: Vec<usize> = shares.iter().map(|&(idx, _)| idx).collect();
        let plan = self.plan_decode(&indices)?;
        let blocks: Vec<&[u8]> = shares.iter().map(|&(_, b)| b).collect();
        let len = check_equal_lengths(&blocks)?;
        let mut data = vec![vec![0u8; len]; self.k];
        let mut views: Vec<&mut [u8]> = data.iter_mut().map(|b| b.as_mut_slice()).collect();
        plan.decode_into(&blocks, &mut views)?;
        Ok(data)
    }

    /// Precomputes everything needed to decode from the given set of share
    /// indices: validates the set, inverts the k×k system **once**, and
    /// stores the inverse column-major. Recovery decodes the same erasure
    /// pattern for every stripe on a failed node, so hoisting the inversion
    /// out of the per-stripe loop — and pairing the plan with
    /// [`DecodePlan::decode_into`] — makes the per-stripe cost pure kernel
    /// streaming with no allocation.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] unless exactly `k` indices are given;
    /// [`CodeError::IndexOutOfRange`] / [`CodeError::DuplicateShare`] on bad
    /// indices.
    pub fn plan_decode(&self, indices: &[usize]) -> Result<DecodePlan, CodeError> {
        if indices.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: indices.len(),
            });
        }
        let mut seen = vec![false; self.n];
        for &idx in indices {
            if idx >= self.n {
                return Err(CodeError::IndexOutOfRange { index: idx, n: self.n });
            }
            if seen[idx] {
                return Err(CodeError::DuplicateShare { index: idx });
            }
            seen[idx] = true;
        }

        // Row for share `idx`: unit vector for data blocks, coefficient row
        // for redundant blocks. The k×k system is invertible by MDS-ness.
        let rows: Vec<Vec<Gf256>> = indices
            .iter()
            .map(|&idx| {
                if idx < self.k {
                    let mut row = vec![Gf256::ZERO; self.k];
                    row[idx] = Gf256::ONE;
                    row
                } else {
                    self.red.row(idx - self.k).to_vec()
                }
            })
            .collect();
        let m = Matrix::from_rows(rows);
        let inv = m.inverted().ok_or(CodeError::NotDecodable)?;

        // Column s of the inverse holds, for each output row i, the weight
        // of share s — exactly the coefficient vector mul_add_multi wants.
        let inv_cols: Vec<Vec<u8>> = (0..self.k)
            .map(|s| (0..self.k).map(|i| inv[(i, s)].as_byte()).collect())
            .collect();
        Ok(DecodePlan {
            k: self.k,
            indices: indices.to_vec(),
            inv_cols,
        })
    }

    /// Recovers the **entire stripe** (all `n` blocks) from any `k` shares:
    /// decode the data, then re-encode the redundancy. This is what the
    /// recovery procedure's `erasure_decode` (Fig. 6 line 21) needs, since
    /// it rewrites every storage node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::decode`].
    pub fn reconstruct_stripe(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, CodeError> {
        let data = self.decode(shares)?;
        self.encode_stripe_owned(data)
    }

    /// The increment a client sends redundant node `k + j` when data block
    /// `i` changes from `old` to `new`: `α_ji · (new − old)` (Fig. 5
    /// line 10). The redundant node simply XORs this into its block.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new` and `old` differ in length.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn delta(&self, j: usize, i: usize, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        let mut out = vec![0u8; new.len()];
        self.delta_into_buf(j, i, new, old, &mut out)?;
        Ok(out)
    }

    /// [`delta`](ReedSolomon::delta) into a caller-owned buffer — the
    /// allocation-free form for clients that update many redundant nodes per
    /// write and reuse one scratch block.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new`, `old` and `out` are not all
    /// the same length.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn delta_into_buf(
        &self,
        j: usize,
        i: usize,
        new: &[u8],
        old: &[u8],
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        if new.len() != old.len() || out.len() != new.len() {
            return Err(CodeError::LengthMismatch);
        }
        let c = self.coefficient(j, i);
        slice::delta_into(out, c.as_byte(), new, old);
        Ok(())
    }

    /// The *broadcast* form of the increment (§3.11): the client sends the
    /// plain difference `new − old` once, and each redundant node multiplies
    /// by its own `α_ji` before adding. Returns the difference block.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `new` and `old` differ in length.
    pub fn broadcast_delta(&self, new: &[u8], old: &[u8]) -> Result<Vec<u8>, CodeError> {
        if new.len() != old.len() {
            return Err(CodeError::LengthMismatch);
        }
        let mut out = new.to_vec();
        slice::add_assign(&mut out, old);
        Ok(out)
    }

    /// Applies a received broadcast difference at redundant node `k + j` for
    /// a write to data block `i`: computes `α_ji · diff` (the node-side
    /// multiply of §3.11).
    pub fn scale_broadcast_delta(&self, j: usize, i: usize, diff: &[u8]) -> Vec<u8> {
        let mut out = diff.to_vec();
        self.scale_in_place(j, i, &mut out);
        out
    }

    /// The in-place form of [`scale_broadcast_delta`]: scales an
    /// **owned** broadcast difference by `α_ji` without copying it first —
    /// what a storage node does to the delta it just received.
    ///
    /// [`scale_broadcast_delta`]: ReedSolomon::scale_broadcast_delta
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ p` or `i ≥ k`.
    pub fn scale_in_place(&self, j: usize, i: usize, diff: &mut [u8]) {
        let c = self.coefficient(j, i);
        slice::mul_assign(diff, c.as_byte());
    }

    /// Checks that a full stripe is consistent with the code (redundant
    /// blocks equal the encoding of the data blocks). Used pervasively in
    /// tests; a real system cannot afford this check per access, which is
    /// exactly why the paper needs `recentlist` bookkeeping (§3.8).
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] / [`CodeError::LengthMismatch`] on a
    /// malformed stripe.
    pub fn verify_stripe<B: AsRef<[u8]>>(&self, stripe: &[B]) -> Result<bool, CodeError> {
        if stripe.len() != self.n {
            return Err(CodeError::WrongBlockCount {
                expected: self.n,
                got: stripe.len(),
            });
        }
        check_equal_lengths(stripe)?;
        let red = self.encode(&stripe[..self.k])?;
        Ok(red
            .iter()
            .zip(&stripe[self.k..])
            .all(|(a, b)| a.as_slice() == b.as_ref()))
    }
}

/// A prepared decode for one fixed erasure pattern: the k×k inverse is
/// computed once by [`ReedSolomon::plan_decode`] and reused across stripes.
///
/// # Example
///
/// ```
/// use ajx_erasure::ReedSolomon;
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// let rs = ReedSolomon::new(2, 4)?;
/// let stripe = rs.encode_stripe(&[vec![7u8; 8], vec![9u8; 8]])?;
/// // Blocks 0 and 2 survive; decode every stripe with one plan.
/// let plan = rs.plan_decode(&[0, 2])?;
/// let mut out = vec![vec![0u8; 8]; 2];
/// let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
/// plan.decode_into(&[&stripe[0], &stripe[2]], &mut views)?;
/// assert_eq!(out[0], vec![7u8; 8]);
/// assert_eq!(out[1], vec![9u8; 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DecodePlan {
    k: usize,
    indices: Vec<usize>,
    /// The k×k inverse stored column-major: `inv_cols[s][i]` is the weight
    /// of share `s` in output data block `i` — one ready-made coefficient
    /// vector per share for the fused multi-row kernel.
    inv_cols: Vec<Vec<u8>>,
}

impl DecodePlan {
    /// The share indices this plan decodes from, in the order `decode_into`
    /// expects the share blocks.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Decodes `shares` (blocks in [`indices`](DecodePlan::indices) order)
    /// into the `k` pre-sized blocks of `out`, performing **no heap
    /// allocation**: each share is streamed once through all `k` output rows
    /// with the precomputed inverse column as coefficients.
    ///
    /// # Errors
    ///
    /// [`CodeError::WrongBlockCount`] on wrong share/output counts;
    /// [`CodeError::LengthMismatch`] on ragged blocks.
    pub fn decode_into(&self, shares: &[&[u8]], out: &mut [&mut [u8]]) -> Result<(), CodeError> {
        if shares.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: shares.len(),
            });
        }
        if out.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: out.len(),
            });
        }
        let len = check_equal_lengths(shares)?;
        for o in out.iter_mut() {
            if o.len() != len {
                return Err(CodeError::LengthMismatch);
            }
            o.fill(0);
        }
        for (s, share) in shares.iter().enumerate() {
            slice::mul_add_multi(out, &self.inv_cols[s], share);
        }
        Ok(())
    }

    /// Decodes **one** data block `i` into `out` — the degraded-read form:
    /// a client that only needs the failed node's block pays `k` fused
    /// multiply-adds over one output row instead of materializing all `k`
    /// data blocks.
    ///
    /// `shares` are blocks in [`indices`](DecodePlan::indices) order, as
    /// for [`decode_into`](DecodePlan::decode_into).
    ///
    /// # Errors
    ///
    /// [`CodeError::IndexOutOfRange`] if `i` is not a data index;
    /// [`CodeError::WrongBlockCount`] on a wrong share count;
    /// [`CodeError::LengthMismatch`] on ragged blocks.
    pub fn reconstruct_one_into(
        &self,
        i: usize,
        shares: &[&[u8]],
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        if i >= self.k {
            return Err(CodeError::IndexOutOfRange { index: i, n: self.k });
        }
        if shares.len() != self.k {
            return Err(CodeError::WrongBlockCount {
                expected: self.k,
                got: shares.len(),
            });
        }
        let len = check_equal_lengths(shares)?;
        if out.len() != len {
            return Err(CodeError::LengthMismatch);
        }
        out.fill(0);
        for (s, share) in shares.iter().enumerate() {
            // `inv_cols[s][i]` is the weight of share `s` in output block
            // `i`; stream each share through the single output row.
            slice::mul_add_multi(&mut [&mut *out], &self.inv_cols[s][i..=i], share);
        }
        Ok(())
    }
}

fn check_equal_lengths<B: AsRef<[u8]>>(blocks: &[B]) -> Result<usize, CodeError> {
    let len = blocks.first().map_or(0, |b| b.as_ref().len());
    if blocks.iter().any(|b| b.as_ref().len() != len) {
        return Err(CodeError::LengthMismatch);
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(2, 257).is_err());
        assert!(ReedSolomon::new(1, 2).is_ok());
        assert!(ReedSolomon::new(16, 32).is_ok());
    }

    #[test]
    fn encode_then_verify() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = random_data(3, 64, 1);
        let stripe = rs.encode_stripe(&data).unwrap();
        assert!(rs.verify_stripe(&stripe).unwrap());
        // Corrupt one byte: verification fails.
        let mut bad = stripe.clone();
        bad[4][10] ^= 1;
        assert!(!rs.verify_stripe(&bad).unwrap());
    }

    #[test]
    fn decode_from_every_k_subset() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = random_data(3, 32, 2);
        let stripe = rs.encode_stripe(&data).unwrap();
        // All C(6,3) = 20 subsets must decode.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let shares: Vec<(usize, &[u8])> =
                        vec![(a, &stripe[a][..]), (b, &stripe[b][..]), (c, &stripe[c][..])];
                    assert_eq!(rs.decode(&shares).unwrap(), data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn decode_order_does_not_matter() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = random_data(2, 16, 3);
        let stripe = rs.encode_stripe(&data).unwrap();
        let fwd: Vec<(usize, &[u8])> = vec![(1, &stripe[1][..]), (3, &stripe[3][..])];
        let rev: Vec<(usize, &[u8])> = vec![(3, &stripe[3][..]), (1, &stripe[1][..])];
        assert_eq!(rs.decode(&fwd).unwrap(), rs.decode(&rev).unwrap());
    }

    #[test]
    fn decode_rejects_bad_shares() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let b = [0u8; 8];
        assert!(matches!(
            rs.decode(&[(0, &b[..])]),
            Err(CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (0, &b[..])]),
            Err(CodeError::DuplicateShare { .. })
        ));
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (9, &b[..])]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
        let short = [0u8; 4];
        assert!(matches!(
            rs.decode(&[(0, &b[..]), (1, &short[..])]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn delta_update_equals_reencode() {
        // The core algebraic fact behind the lock-free write (Fig. 3): after
        // swapping block i and adding α·(v−w) at every redundant node, the
        // stripe equals a fresh encoding of the new data.
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut data = random_data(4, 48, 4);
        let mut stripe = rs.encode_stripe(&data).unwrap();

        let new_block: Vec<u8> = (0..48).map(|x| (x * 37 % 251) as u8).collect();
        let old = std::mem::replace(&mut data[2], new_block.clone());

        // Apply the protocol's delta path.
        stripe[2] = new_block.clone();
        for j in 0..rs.p() {
            let d = rs.delta(j, 2, &new_block, &old).unwrap();
            ajx_gf::slice::add_assign(&mut stripe[rs.k() + j], &d);
        }
        assert_eq!(stripe, rs.encode_stripe(&data).unwrap());
    }

    #[test]
    fn broadcast_delta_equals_per_node_delta() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let old = random_data(1, 32, 5).pop().unwrap();
        let new = random_data(1, 32, 6).pop().unwrap();
        let diff = rs.broadcast_delta(&new, &old).unwrap();
        for j in 0..rs.p() {
            assert_eq!(
                rs.scale_broadcast_delta(j, 1, &diff),
                rs.delta(j, 1, &new, &old).unwrap(),
                "redundant node {j}"
            );
        }
    }

    #[test]
    fn concurrent_interleaved_deltas_commute() {
        // Fig. 3(C): two clients update different blocks concurrently; adds
        // interleave arbitrarily at redundant nodes yet the stripe converges.
        let rs = ReedSolomon::new(2, 4).unwrap();
        let a0 = vec![10u8; 8];
        let b0 = vec![20u8; 8];
        let mut stripe = rs.encode_stripe(&[a0.clone(), b0.clone()]).unwrap();

        let c = vec![33u8; 8]; // client 1: a -> c
        let d = vec![44u8; 8]; // client 2: b -> d

        let d1: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 0, &c, &a0).unwrap()).collect();
        let d2: Vec<Vec<u8>> = (0..2).map(|j| rs.delta(j, 1, &d, &b0).unwrap()).collect();

        stripe[0] = c.clone();
        stripe[1] = d.clone();
        // Interleave: node 2 sees client1 then client2; node 3 the reverse.
        ajx_gf::slice::add_assign(&mut stripe[2], &d1[0]);
        ajx_gf::slice::add_assign(&mut stripe[2], &d2[0]);
        ajx_gf::slice::add_assign(&mut stripe[3], &d2[1]);
        ajx_gf::slice::add_assign(&mut stripe[3], &d1[1]);

        assert_eq!(stripe, rs.encode_stripe(&[c, d]).unwrap());
    }

    #[test]
    fn encode_into_matches_encode_and_is_reusable() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let mut scratch = vec![vec![0xEEu8; 40]; rs.p()];
        for seed in 0..4 {
            let data = random_data(3, 40, seed);
            let mut views: Vec<&mut [u8]> =
                scratch.iter_mut().map(|b| b.as_mut_slice()).collect();
            rs.encode_into(&data, &mut views).unwrap();
            assert_eq!(scratch, rs.encode(&data).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn encode_into_validates_shapes() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = random_data(2, 8, 0);
        let mut short = [vec![0u8; 8]];
        let mut views: Vec<&mut [u8]> = short.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(matches!(
            rs.encode_into(&data, &mut views),
            Err(CodeError::WrongBlockCount { .. })
        ));
        let mut ragged = [vec![0u8; 8], vec![0u8; 9]];
        let mut views: Vec<&mut [u8]> = ragged.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(matches!(
            rs.encode_into(&data, &mut views),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn encode_stripe_owned_matches_encode_stripe() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = random_data(3, 24, 11);
        assert_eq!(
            rs.encode_stripe_owned(data.clone()).unwrap(),
            rs.encode_stripe(&data).unwrap()
        );
    }

    #[test]
    fn decode_plan_reused_across_stripes() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let plan = rs.plan_decode(&[1, 4, 5]).unwrap();
        assert_eq!(plan.indices(), &[1, 4, 5]);
        let mut out = vec![vec![0u8; 32]; 3];
        for seed in 0..4 {
            let data = random_data(3, 32, seed + 100);
            let stripe = rs.encode_stripe(&data).unwrap();
            let shares: Vec<&[u8]> = vec![&stripe[1], &stripe[4], &stripe[5]];
            let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
            plan.decode_into(&shares, &mut views).unwrap();
            assert_eq!(out, data, "seed {seed}");
        }
    }

    #[test]
    fn reconstruct_one_into_matches_full_decode() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data = random_data(3, 40, 17);
        let stripe = rs.encode_stripe(&data).unwrap();
        let idx = [2usize, 3, 5];
        let plan = rs.plan_decode(&idx).unwrap();
        let shares: Vec<&[u8]> = idx.iter().map(|&t| &stripe[t][..]).collect();
        let mut one = vec![0xEEu8; 40];
        for (i, want) in data.iter().enumerate() {
            plan.reconstruct_one_into(i, &shares, &mut one).unwrap();
            assert_eq!(&one, want, "block {i}");
        }
    }

    #[test]
    fn reconstruct_one_into_validates_shapes() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let plan = rs.plan_decode(&[1, 2]).unwrap();
        let b = [0u8; 8];
        let mut out = [0u8; 8];
        assert!(matches!(
            plan.reconstruct_one_into(2, &[&b[..], &b[..]], &mut out),
            Err(CodeError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            plan.reconstruct_one_into(0, &[&b[..]], &mut out),
            Err(CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            plan.reconstruct_one_into(0, &[&b[..], &b[..4]], &mut out),
            Err(CodeError::LengthMismatch)
        ));
        assert!(matches!(
            plan.reconstruct_one_into(0, &[&b[..], &b[..]], &mut [0u8; 4]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn plan_decode_validates_indices() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        assert!(matches!(
            rs.plan_decode(&[0]),
            Err(CodeError::WrongBlockCount { .. })
        ));
        assert!(matches!(
            rs.plan_decode(&[0, 0]),
            Err(CodeError::DuplicateShare { .. })
        ));
        assert!(matches!(
            rs.plan_decode(&[0, 9]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn delta_into_buf_matches_delta() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let old = random_data(1, 20, 21).pop().unwrap();
        let new = random_data(1, 20, 22).pop().unwrap();
        let mut buf = vec![0u8; 20];
        for j in 0..rs.p() {
            rs.delta_into_buf(j, 2, &new, &old, &mut buf).unwrap();
            assert_eq!(buf, rs.delta(j, 2, &new, &old).unwrap(), "row {j}");
        }
        assert!(matches!(
            rs.delta_into_buf(0, 0, &new, &old, &mut [0u8; 3]),
            Err(CodeError::LengthMismatch)
        ));
    }

    #[test]
    fn scale_in_place_matches_scale_broadcast_delta() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let diff = random_data(1, 16, 33).pop().unwrap();
        for j in 0..rs.p() {
            let mut owned = diff.clone();
            rs.scale_in_place(j, 1, &mut owned);
            assert_eq!(owned, rs.scale_broadcast_delta(j, 1, &diff), "row {j}");
        }
    }

    #[test]
    fn empty_blocks_are_legal() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let stripe = rs.encode_stripe(&[vec![], vec![]]).unwrap();
        assert!(stripe.iter().all(Vec::is_empty));
        let shares: Vec<(usize, &[u8])> = vec![(2, &stripe[2][..]), (3, &stripe[3][..])];
        assert_eq!(rs.decode(&shares).unwrap(), vec![vec![0u8; 0]; 2]);
    }

    #[test]
    fn large_code_roundtrip() {
        // The largest code used in the paper's simulations (§6.6).
        let rs = ReedSolomon::new(16, 32).unwrap();
        let data = random_data(16, 128, 7);
        let stripe = rs.encode_stripe(&data).unwrap();
        // Drop all 16 data blocks; recover purely from redundancy.
        let shares: Vec<(usize, &[u8])> = (16..32).map(|i| (i, &stripe[i][..])).collect();
        assert_eq!(rs.decode(&shares).unwrap(), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_decode_any_subset(
            seed in any::<u64>(),
            k in 1usize..6,
            extra in 1usize..5,
            len in 1usize..40,
        ) {
            let n = k + extra;
            let rs = ReedSolomon::new(k, n).unwrap();
            let data = random_data(k, len, seed);
            let stripe = rs.encode_stripe(&data).unwrap();

            // Pick a pseudo-random k-subset of indices.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            let shares: Vec<(usize, &[u8])> = idx.iter().map(|&i| (i, &stripe[i][..])).collect();
            prop_assert_eq!(rs.decode(&shares).unwrap(), data);
        }

        #[test]
        fn prop_delta_sequence_stays_consistent(
            seed in any::<u64>(),
            writes in proptest::collection::vec((0usize..4, any::<u8>()), 1..12),
        ) {
            let rs = ReedSolomon::new(4, 7).unwrap();
            let mut data = random_data(4, 16, seed);
            let mut stripe = rs.encode_stripe(&data).unwrap();
            for (i, fill) in writes {
                let new = vec![fill; 16];
                let old = std::mem::replace(&mut data[i], new.clone());
                stripe[i] = new.clone();
                for j in 0..rs.p() {
                    let d = rs.delta(j, i, &new, &old).unwrap();
                    ajx_gf::slice::add_assign(&mut stripe[rs.k() + j], &d);
                }
            }
            prop_assert!(rs.verify_stripe(&stripe).unwrap());
        }
    }
}
