//! A concurrency-safe cache of [`DecodePlan`]s and [`RepairPlan`]s keyed
//! by code family and index pattern.
//!
//! Recovery and rebuild decode the *same erasure pattern* over and over:
//! with one failed node and rotated placement, a full-node rebuild cycles
//! through exactly `n` distinct surviving-index sets, yet the naive path
//! re-runs the k×k Vandermonde inversion for every stripe. The cache turns
//! that into one inversion per pattern for the lifetime of the
//! configuration, with all subsequent stripes paying only a map lookup.
//!
//! Keys pair the index pattern with the code's [`FamilyKey`], so one cache
//! may serve clusters of different code families — and a plan computed for
//! an LRC can never be served for a Reed-Solomon stripe of the same
//! `(k, n)` shape (their generator matrices differ).

use crate::code::DecodePlan;
use crate::error::CodeError;
use crate::family::{CodeFamily, FamilyKey, RepairPlan};
use crate::wide::{WideDecodePlan, WideReedSolomon};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A shared, thread-safe memo of [`ReedSolomon::plan_decode`] results and
/// of [`CodeFamily::repair_plan`] results.
///
/// Decode plans are keyed by the index slice *as given*: callers should
/// pass indices in a canonical (sorted) order to maximize sharing — the
/// protocol's `find_consistent` already returns sorted sets.
///
/// [`ReedSolomon::plan_decode`]: crate::ReedSolomon::plan_decode
///
/// # Example
///
/// ```
/// use ajx_erasure::{CodeFamily, PlanCache};
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// let rs = CodeFamily::rs(2, 4)?;
/// let cache = PlanCache::new();
/// let a = cache.plan(&rs, &[1, 3])?;
/// let b = cache.plan(&rs, &[1, 3])?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
/// assert_eq!(cache.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<DecodePlan>>>,
    /// Memoized single-block repairs: `(family, lost, available)` →
    /// weighted share set.
    repairs: Mutex<HashMap<RepairKey, Arc<RepairPlan>>>,
    /// Memoized wide-code (GF(2¹⁶)) decode plans, keyed like `plans` with
    /// [`FamilyKey::Wide`]. A separate map because [`WideDecodePlan`] is a
    /// distinct type from [`DecodePlan`] (u16 inverse columns).
    wide: Mutex<HashMap<PlanKey, Arc<WideDecodePlan>>>,
}

/// Key of a memoized decode plan: code family + survivor index pattern.
type PlanKey = (FamilyKey, Vec<usize>);

/// Key of a memoized repair: code family + lost index + available set.
type RepairKey = (FamilyKey, usize, Vec<usize>);

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for decoding `code` from `indices`, computing and caching
    /// it on first use.
    ///
    /// The inversion runs *outside* the cache lock, so a slow first
    /// computation never stalls concurrent lookups of other patterns; if
    /// two threads race on the same fresh pattern, one result wins and
    /// both callers share it.
    ///
    /// # Errors
    ///
    /// As [`crate::ReedSolomon::plan_decode`]; errors are not cached.
    pub fn plan(
        &self,
        code: &CodeFamily,
        indices: &[usize],
    ) -> Result<Arc<DecodePlan>, CodeError> {
        let family = code.family_key();
        if let Some(plan) = self.lock_plans().get(&(family, indices.to_vec())) {
            return Ok(Arc::clone(plan));
        }
        let fresh = Arc::new(code.plan_decode(indices)?);
        Ok(Arc::clone(
            self.lock_plans()
                .entry((family, indices.to_vec()))
                .or_insert(fresh),
        ))
    }

    /// The cheapest repair of stripe index `lost` from `available`
    /// (see [`CodeFamily::repair_plan`]), memoized per `(family, lost,
    /// available)` triple. Returns `None` — uncached — when the available
    /// blocks cannot reconstruct the lost one.
    ///
    /// Callers should pass `available` sorted; a full-node rebuild asks
    /// for the same handful of patterns across millions of stripes.
    pub fn repair(
        &self,
        code: &CodeFamily,
        lost: usize,
        available: &[usize],
    ) -> Option<Arc<RepairPlan>> {
        let family = code.family_key();
        if let Some(plan) = self
            .lock_repairs()
            .get(&(family, lost, available.to_vec()))
        {
            return Some(Arc::clone(plan));
        }
        let fresh = Arc::new(code.repair_plan(lost, available)?);
        Some(Arc::clone(
            self.lock_repairs()
                .entry((family, lost, available.to_vec()))
                .or_insert(fresh),
        ))
    }

    /// The plan for decoding wide code `code` from `indices`, computing
    /// and caching it on first use — the GF(2¹⁶) twin of
    /// [`PlanCache::plan`], with the same outside-the-lock computation and
    /// race semantics. Keyed under [`FamilyKey::Wide`], so a wide plan can
    /// never collide with a byte-code plan of the same `(k, n)` shape.
    ///
    /// # Errors
    ///
    /// As [`WideReedSolomon::plan_decode`]; errors are not cached.
    pub fn plan_wide(
        &self,
        code: &WideReedSolomon,
        indices: &[usize],
    ) -> Result<Arc<WideDecodePlan>, CodeError> {
        let family = FamilyKey::Wide {
            k: code.k(),
            n: code.n(),
        };
        if let Some(plan) = self.lock_wide().get(&(family, indices.to_vec())) {
            return Ok(Arc::clone(plan));
        }
        let fresh = Arc::new(code.plan_decode(indices)?);
        Ok(Arc::clone(
            self.lock_wide()
                .entry((family, indices.to_vec()))
                .or_insert(fresh),
        ))
    }

    /// Number of cached wide-code decode patterns.
    pub fn wide_len(&self) -> usize {
        self.lock_wide().len()
    }

    /// Number of cached decode patterns (repair memos not included).
    pub fn len(&self) -> usize {
        self.lock_plans().len()
    }

    /// Whether the cache holds no decode plans yet.
    pub fn is_empty(&self) -> bool {
        self.lock_plans().is_empty()
    }

    /// Drops every cached plan (e.g. after reconfiguring the code).
    pub fn clear(&self) {
        self.lock_plans().clear();
        self.lock_repairs().clear();
        self.lock_wide().clear();
    }

    fn lock_plans(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Arc<DecodePlan>>> {
        // A panic while holding the lock can only happen outside any
        // mutation (the map is only read/inserted-into), so a poisoned
        // cache is still structurally sound.
        match self.plans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_repairs(&self) -> std::sync::MutexGuard<'_, HashMap<RepairKey, Arc<RepairPlan>>> {
        match self.repairs.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_wide(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Arc<WideDecodePlan>>> {
        match self.wide.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("patterns", &self.len())
            .field("repairs", &self.lock_repairs().len())
            .field("wide", &self.wide_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_one_plan_per_pattern() {
        let rs = CodeFamily::rs(2, 4).unwrap();
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.plan(&rs, &[0, 2]).unwrap();
        let b = cache.plan(&rs, &[0, 2]).unwrap();
        let c = cache.plan(&rs, &[1, 3]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn key_is_order_sensitive_by_design() {
        let rs = CodeFamily::rs(2, 4).unwrap();
        let cache = PlanCache::new();
        let fwd = cache.plan(&rs, &[1, 3]).unwrap();
        let rev = cache.plan(&rs, &[3, 1]).unwrap();
        // Different share order = different plan (shares are positional);
        // both decode correctly, they just don't share an entry.
        assert_eq!(cache.len(), 2);
        assert_eq!(fwd.indices(), &[1, 3]);
        assert_eq!(rev.indices(), &[3, 1]);
    }

    #[test]
    fn invalid_patterns_error_and_are_not_cached() {
        let rs = CodeFamily::rs(2, 4).unwrap();
        let cache = PlanCache::new();
        assert!(cache.plan(&rs, &[0]).is_err());
        assert!(cache.plan(&rs, &[0, 0]).is_err());
        assert!(cache.plan(&rs, &[0, 9]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn family_key_separates_equal_shapes() {
        // Regression (ISSUE 9 satellite): RS(12, 16) and LRC(12, 3, 1)
        // share (k, n) and may ask for the *same* survivor pattern. Before
        // the family-aware key, whichever family populated the entry first
        // would serve its inverse to the other — silent data corruption.
        let rs = CodeFamily::rs(12, 16).unwrap();
        let lrc = CodeFamily::lrc(12, 3, 1).unwrap();
        let cache = PlanCache::new();
        // Data 1..11 plus redundant block 12 — decodable in both families
        // (for the LRC, block 12 is group 0's local parity covering the
        // missing data block 0).
        let indices: Vec<usize> = (1..=12).collect();
        let from_rs = cache.plan(&rs, &indices).unwrap();
        let from_lrc = cache.plan(&lrc, &indices).unwrap();
        assert_eq!(cache.len(), 2, "one entry per family");
        assert!(!Arc::ptr_eq(&from_rs, &from_lrc));

        // The two plans genuinely differ: each decodes its own stripe.
        let data: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8 + 1; 16]).collect();
        for (fam, plan) in [(&rs, &from_rs), (&lrc, &from_lrc)] {
            let stripe = fam.encode_stripe(&data).unwrap();
            let shares: Vec<&[u8]> = indices.iter().map(|&i| &stripe[i][..]).collect();
            let mut out = vec![vec![0u8; 16]; 12];
            let mut views: Vec<&mut [u8]> = out.iter_mut().map(|b| b.as_mut_slice()).collect();
            plan.decode_into(&shares, &mut views).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn repair_plans_are_memoized_per_family() {
        let rs = CodeFamily::rs(2, 4).unwrap();
        let cache = PlanCache::new();
        let available = [1usize, 2, 3];
        let a = cache.repair(&rs, 0, &available).unwrap();
        let b = cache.repair(&rs, 0, &available).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
        // Unrecoverable patterns return None and stay uncached.
        let lrc = CodeFamily::lrc(4, 2, 1).unwrap();
        assert!(cache.repair(&lrc, 0, &[2, 3, 5]).is_none());
        assert!(cache.repair(&lrc, 0, &[2, 3, 5]).is_none());
    }

    #[test]
    fn wide_plans_are_memoized_and_separate() {
        let wide = WideReedSolomon::new(3, 6).unwrap();
        let cache = PlanCache::new();
        let a = cache.plan_wide(&wide, &[0, 2, 4]).unwrap();
        let b = cache.plan_wide(&wide, &[0, 2, 4]).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
        assert_eq!(cache.wide_len(), 1);
        // Wide plans live in their own map: byte-code plans of the same
        // shape do not collide, and clear() drops both.
        let rs = CodeFamily::rs(3, 6).unwrap();
        cache.plan(&rs, &[0, 2, 4]).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.wide_len(), 1);
        assert!(cache.plan_wide(&wide, &[0, 0, 1]).is_err());
        assert_eq!(cache.wide_len(), 1, "errors are not cached");
        cache.clear();
        assert_eq!(cache.wide_len(), 0);
    }

    #[test]
    fn cached_wide_plan_decodes_identically_to_fresh() {
        let wide = WideReedSolomon::new(3, 6).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![(7 * i + 1) as u8; 24]).collect();
        let stripe = wide.encode_stripe(&data).unwrap();
        let cache = PlanCache::new();
        let idx = [1usize, 3, 5];
        let cached = cache.plan_wide(&wide, &idx).unwrap();
        let fresh = wide.plan_decode(&idx).unwrap();
        let shares: Vec<&[u8]> = idx.iter().map(|&i| &stripe[i][..]).collect();
        let mut a = vec![vec![0u8; 24]; 3];
        let mut b = vec![vec![0u8; 24]; 3];
        let mut va: Vec<&mut [u8]> = a.iter_mut().map(|x| x.as_mut_slice()).collect();
        let mut vb: Vec<&mut [u8]> = b.iter_mut().map(|x| x.as_mut_slice()).collect();
        cached.decode_into(&shares, &mut va).unwrap();
        fresh.decode_into(&shares, &mut vb).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, data);
    }

    #[test]
    fn cached_plan_decodes_identically_to_fresh() {
        let rs = CodeFamily::rs(3, 6).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![(7 * i + 1) as u8; 24]).collect();
        let stripe = rs.encode_stripe(&data).unwrap();
        let cache = PlanCache::new();
        let idx = [1usize, 3, 5];
        let cached = cache.plan(&rs, &idx).unwrap();
        let fresh = rs.plan_decode(&idx).unwrap();
        let shares: Vec<&[u8]> = idx.iter().map(|&i| &stripe[i][..]).collect();
        let mut a = vec![vec![0u8; 24]; 3];
        let mut b = vec![vec![0u8; 24]; 3];
        let mut va: Vec<&mut [u8]> = a.iter_mut().map(|x| x.as_mut_slice()).collect();
        let mut vb: Vec<&mut [u8]> = b.iter_mut().map(|x| x.as_mut_slice()).collect();
        cached.decode_into(&shares, &mut va).unwrap();
        fresh.decode_into(&shares, &mut vb).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, data);
    }
}
