//! A concurrency-safe cache of [`DecodePlan`]s keyed by surviving-index
//! set.
//!
//! Recovery and rebuild decode the *same erasure pattern* over and over:
//! with one failed node and rotated placement, a full-node rebuild cycles
//! through exactly `n` distinct surviving-index sets, yet the naive path
//! re-runs the k×k Vandermonde inversion for every stripe. The cache turns
//! that into one inversion per pattern for the lifetime of the
//! configuration, with all subsequent stripes paying only a map lookup.

use crate::code::{DecodePlan, ReedSolomon};
use crate::error::CodeError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A shared, thread-safe memo of [`ReedSolomon::plan_decode`] results.
///
/// Plans are keyed by the index slice *as given*: callers should pass
/// indices in a canonical (sorted) order to maximize sharing — the
/// protocol's `find_consistent` already returns sorted sets. A cache must
/// only ever be used with a **single** code: plans for a different
/// `(k, n)` or coefficient matrix would collide on the same keys.
///
/// # Example
///
/// ```
/// use ajx_erasure::{PlanCache, ReedSolomon};
///
/// # fn main() -> Result<(), ajx_erasure::CodeError> {
/// let rs = ReedSolomon::new(2, 4)?;
/// let cache = PlanCache::new();
/// let a = cache.plan(&rs, &[1, 3])?;
/// let b = cache.plan(&rs, &[1, 3])?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
/// assert_eq!(cache.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<Vec<usize>, Arc<DecodePlan>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for decoding `code` from `indices`, computing and caching
    /// it on first use.
    ///
    /// The inversion runs *outside* the cache lock, so a slow first
    /// computation never stalls concurrent lookups of other patterns; if
    /// two threads race on the same fresh pattern, one result wins and
    /// both callers share it.
    ///
    /// # Errors
    ///
    /// As [`ReedSolomon::plan_decode`]; errors are not cached.
    pub fn plan(
        &self,
        code: &ReedSolomon,
        indices: &[usize],
    ) -> Result<Arc<DecodePlan>, CodeError> {
        if let Some(plan) = self.lock().get(indices) {
            return Ok(Arc::clone(plan));
        }
        let fresh = Arc::new(code.plan_decode(indices)?);
        Ok(Arc::clone(
            self.lock().entry(indices.to_vec()).or_insert(fresh),
        ))
    }

    /// Number of cached erasure patterns.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no plans yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every cached plan (e.g. after reconfiguring the code).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<usize>, Arc<DecodePlan>>> {
        // A panic while holding the lock can only happen outside any
        // mutation (the map is only read/inserted-into), so a poisoned
        // cache is still structurally sound.
        match self.plans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("patterns", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_one_plan_per_pattern() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.plan(&rs, &[0, 2]).unwrap();
        let b = cache.plan(&rs, &[0, 2]).unwrap();
        let c = cache.plan(&rs, &[1, 3]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn key_is_order_sensitive_by_design() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let cache = PlanCache::new();
        let fwd = cache.plan(&rs, &[1, 3]).unwrap();
        let rev = cache.plan(&rs, &[3, 1]).unwrap();
        // Different share order = different plan (shares are positional);
        // both decode correctly, they just don't share an entry.
        assert_eq!(cache.len(), 2);
        assert_eq!(fwd.indices(), &[1, 3]);
        assert_eq!(rev.indices(), &[3, 1]);
    }

    #[test]
    fn invalid_patterns_error_and_are_not_cached() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let cache = PlanCache::new();
        assert!(cache.plan(&rs, &[0]).is_err());
        assert!(cache.plan(&rs, &[0, 0]).is_err());
        assert!(cache.plan(&rs, &[0, 9]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plan_decodes_identically_to_fresh() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![(7 * i + 1) as u8; 24]).collect();
        let stripe = rs.encode_stripe(&data).unwrap();
        let cache = PlanCache::new();
        let idx = [1usize, 3, 5];
        let cached = cache.plan(&rs, &idx).unwrap();
        let fresh = rs.plan_decode(&idx).unwrap();
        let shares: Vec<&[u8]> = idx.iter().map(|&i| &stripe[i][..]).collect();
        let mut a = vec![vec![0u8; 24]; 3];
        let mut b = vec![vec![0u8; 24]; 3];
        let mut va: Vec<&mut [u8]> = a.iter_mut().map(|x| x.as_mut_slice()).collect();
        let mut vb: Vec<&mut [u8]> = b.iter_mut().map(|x| x.as_mut_slice()).collect();
        cached.decode_into(&shares, &mut va).unwrap();
        fresh.decode_into(&shares, &mut vb).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, data);
    }
}
