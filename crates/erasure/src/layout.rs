//! Stripe layout: mapping an application's flat logical block space onto
//! (stripe, in-stripe index, storage node) triples.
//!
//! §3.11 of the paper: "consecutive blocks are mapped to different storage
//! nodes and different stripes, and the redundant blocks rotate with each
//! stripe, thus avoiding bottlenecks." This module implements exactly that
//! rotation and hides it from applications (§2: "we prefer that all
//! peculiarities of erasure codes be hidden from applications").

use core::fmt;

/// A logical node index in `0..n` (the paper's `S_1..S_n`, zero-based here).
pub type NodeIndex = usize;

/// Where one logical block lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Which stripe the block belongs to.
    pub stripe: u64,
    /// The block's index within its stripe (`0..k`: it is a data block).
    pub index: usize,
    /// The storage node holding it under the rotated layout.
    pub node: NodeIndex,
}

/// The role a node plays in a particular stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Holds data block `i` of the stripe.
    Data(usize),
    /// Holds redundant block `j` (the stripe's block `k + j`).
    Redundant(usize),
}

/// Rotated stripe layout for a k-of-n code over n storage nodes.
///
/// Stripe `s` assigns in-stripe block `t` (data for `t < k`, redundant
/// otherwise) to node `(t + s) mod n`. Consecutive logical blocks land on
/// consecutive nodes, and the parity role advances by one node per stripe —
/// the classic RAID-5-style rotation generalized to `p` parity blocks.
///
/// # Example
///
/// ```
/// use ajx_erasure::{StripeLayout, Role};
///
/// let layout = StripeLayout::new(3, 5).unwrap();
/// // Logical blocks 0,1,2 form stripe 0 on nodes 0,1,2; parity on 3,4.
/// assert_eq!(layout.locate(0).node, 0);
/// assert_eq!(layout.locate(3).stripe, 1); // next stripe...
/// assert_eq!(layout.locate(3).node, 1);   // ...rotated by one node
/// assert_eq!(layout.role_of(0, 3), Some(Role::Redundant(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    k: usize,
    n: usize,
}

impl StripeLayout {
    /// Creates a layout for a k-of-n code; `None` unless `1 ≤ k < n`.
    pub fn new(k: usize, n: usize) -> Option<Self> {
        if k == 0 || k >= n {
            None
        } else {
            Some(StripeLayout { k, n })
        }
    }

    /// Data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total blocks per stripe (= number of storage nodes).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Locates logical block `lb`.
    pub fn locate(&self, lb: u64) -> Placement {
        let stripe = lb / self.k as u64;
        let index = (lb % self.k as u64) as usize;
        Placement {
            stripe,
            index,
            node: self.node_for(stripe, index),
        }
    }

    /// The node holding in-stripe block `t` (`0..n`) of stripe `s`.
    pub fn node_for(&self, stripe: u64, t: usize) -> NodeIndex {
        debug_assert!(t < self.n);
        ((t as u64 + stripe) % self.n as u64) as NodeIndex
    }

    /// The nodes holding the `p` redundant blocks of `stripe`, in redundant
    /// index order `0..p`.
    pub fn redundant_nodes(&self, stripe: u64) -> Vec<NodeIndex> {
        (self.k..self.n).map(|t| self.node_for(stripe, t)).collect()
    }

    /// The role `node` plays in `stripe`, or `None` if `node ≥ n`.
    pub fn role_of(&self, stripe: u64, node: NodeIndex) -> Option<Role> {
        if node >= self.n {
            return None;
        }
        // Invert node_for: t = (node - stripe) mod n.
        let t = ((node as u64 + self.n as u64 - stripe % self.n as u64) % self.n as u64) as usize;
        Some(if t < self.k {
            Role::Data(t)
        } else {
            Role::Redundant(t - self.k)
        })
    }

    /// The logical block stored as data index `i` of `stripe`.
    pub fn logical_block(&self, stripe: u64, i: usize) -> u64 {
        debug_assert!(i < self.k);
        stripe * self.k as u64 + i as u64
    }

    /// The logical blocks whose **data** copy lives on `node` within
    /// stripes `0..stripes` — i.e. the data a rebuild of that node must
    /// reconstruct (its redundant blocks are re-encoded, not listed here).
    /// Under the rotation each node holds a data block in `k/n` of all
    /// stripes.
    pub fn data_blocks_on_node(&self, node: NodeIndex, stripes: u64) -> Vec<u64> {
        (0..stripes)
            .filter_map(|s| match self.role_of(s, node) {
                Some(Role::Data(i)) => Some(self.logical_block(s, i)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for StripeLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-of-{} rotated layout", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(StripeLayout::new(0, 4).is_none());
        assert!(StripeLayout::new(4, 4).is_none());
        assert!(StripeLayout::new(5, 4).is_none());
        assert!(StripeLayout::new(1, 2).is_some());
    }

    #[test]
    fn roles_partition_each_stripe() {
        let layout = StripeLayout::new(3, 5).unwrap();
        for stripe in 0..20u64 {
            let mut data_seen = vec![false; 3];
            let mut red_seen = vec![false; 2];
            for node in 0..5 {
                match layout.role_of(stripe, node).unwrap() {
                    Role::Data(i) => {
                        assert!(!data_seen[i]);
                        data_seen[i] = true;
                    }
                    Role::Redundant(j) => {
                        assert!(!red_seen[j]);
                        red_seen[j] = true;
                    }
                }
            }
            assert!(data_seen.into_iter().all(|b| b));
            assert!(red_seen.into_iter().all(|b| b));
        }
    }

    #[test]
    fn consecutive_blocks_hit_distinct_nodes() {
        // §3.11: sequential I/O must spread across nodes. Check that any n
        // consecutive logical blocks touch n distinct (node, stripe) pairs
        // and that within a stripe nodes are distinct.
        let layout = StripeLayout::new(4, 6).unwrap();
        for base in 0..30u64 {
            let window: Vec<_> = (base..base + 4).map(|lb| layout.locate(lb)).collect();
            for w in window.windows(2) {
                assert_ne!(w[0].node, w[1].node, "adjacent blocks on same node");
            }
        }
    }

    #[test]
    fn parity_rotates_across_stripes() {
        let layout = StripeLayout::new(2, 4).unwrap();
        let r0 = layout.redundant_nodes(0);
        let r1 = layout.redundant_nodes(1);
        let r4 = layout.redundant_nodes(4);
        assert_eq!(r0, vec![2, 3]);
        assert_eq!(r1, vec![3, 0]);
        assert_eq!(r4, r0, "rotation has period n");
    }

    #[test]
    fn data_blocks_on_node_match_locate() {
        let layout = StripeLayout::new(3, 5).unwrap();
        for node in 0..5 {
            let blocks = layout.data_blocks_on_node(node, 20);
            // Exactly the logical blocks locate() places on this node.
            let expected: Vec<u64> = (0..20 * 3)
                .filter(|&lb| layout.locate(lb).node == node)
                .collect();
            assert_eq!(blocks, expected);
            assert_eq!(blocks.len(), 20 * 3 / 5, "k/n of all stripes");
        }
    }

    #[test]
    fn role_of_out_of_range_node_is_none() {
        let layout = StripeLayout::new(2, 4).unwrap();
        assert_eq!(layout.role_of(0, 4), None);
    }

    proptest! {
        #[test]
        fn prop_locate_role_agree(k in 1usize..8, extra in 1usize..8, lb in 0u64..10_000) {
            let n = k + extra;
            let layout = StripeLayout::new(k, n).unwrap();
            let p = layout.locate(lb);
            prop_assert_eq!(layout.role_of(p.stripe, p.node), Some(Role::Data(p.index)));
            prop_assert_eq!(layout.logical_block(p.stripe, p.index), lb);
        }

        #[test]
        fn prop_node_for_is_bijective_per_stripe(k in 1usize..8, extra in 1usize..8, stripe in 0u64..1000) {
            let n = k + extra;
            let layout = StripeLayout::new(k, n).unwrap();
            let mut nodes: Vec<_> = (0..n).map(|t| layout.node_for(stripe, t)).collect();
            nodes.sort_unstable();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), n);
        }
    }
}
