//! Consistency checking for recorded operation histories.
//!
//! The paper's §3.1 promises "the same \[guarantee\] as provided by *regular
//! registers* generalized to multiple writers": a read never returns a value
//! that was never written or that was already overwritten; a read concurrent
//! with writes may return any of those writes' values or the previously
//! written value.
//!
//! This crate lets test harnesses *check* that guarantee on real executions:
//! a [`Recorder`] timestamps operation invocations and responses across
//! threads, and [`check_regular`] validates every read of the resulting
//! [`History`] against multi-writer regularity.
//!
//! # Checked condition
//!
//! For a read `r` returning value `v` there must exist a write `w` with
//! value `v` such that:
//!
//! 1. `w` began before `r` ended (the value did not come from the future);
//! 2. no other write `w'` both *strictly follows* `w` (`w.end < w'.start`)
//!    and *strictly precedes* `r` (`w'.end < r.start`). In other words, `v`
//!    was not already overwritten by a write that completed before the read
//!    began.
//!
//! The initial value is modeled as a virtual write that precedes all
//! operations, so a read of the initial value is legal exactly when no real
//! write completed before the read started.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A location (register) identifier — in the storage system, a logical
/// block number.
pub type Location = u64;

/// What an operation did at its location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind<V> {
    /// A completed write of `value`.
    Write {
        /// The value written.
        value: V,
    },
    /// A completed read returning `value` (`None` = initial value).
    Read {
        /// The value returned; `None` means the register's initial value.
        value: Option<V>,
    },
}

/// One completed operation with its invocation/response timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord<V> {
    /// Issuing client (for diagnostics only).
    pub client: u32,
    /// Logical invocation timestamp.
    pub start: u64,
    /// Logical response timestamp (`start < end` for well-formed records).
    pub end: u64,
    /// The operation.
    pub op: OpKind<V>,
}

/// A multi-location history of completed operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History<V> {
    per_location: HashMap<Location, Vec<OpRecord<V>>>,
}

impl<V> Default for History<V> {
    fn default() -> Self {
        History::new()
    }
}

impl<V> History<V> {
    /// An empty history.
    pub fn new() -> Self {
        History {
            per_location: HashMap::new(),
        }
    }

    /// Appends a completed operation at `loc`.
    pub fn push(&mut self, loc: Location, record: OpRecord<V>) {
        self.per_location.entry(loc).or_default().push(record);
    }

    /// Iterates over `(location, operations)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Location, &Vec<OpRecord<V>>)> {
        self.per_location.iter()
    }

    /// Total number of recorded operations.
    pub fn len(&self) -> usize {
        self.per_location.values().map(Vec::len).sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A regularity violation found by [`check_regular`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The location where the violation occurred.
    pub location: Location,
    /// The offending read.
    pub read_client: u32,
    /// Invocation time of the read.
    pub read_start: u64,
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regularity violation at location {} (read by client {} at t={}): {}",
            self.location, self.read_client, self.read_start, self.reason
        )
    }
}

impl std::error::Error for Violation {}

/// Checks every read in `history` against multi-writer regularity.
///
/// # Errors
///
/// Returns the first [`Violation`] found, or `Ok(())` if the history is
/// regular.
pub fn check_regular<V: Eq + fmt::Debug>(history: &History<V>) -> Result<(), Violation> {
    for (&loc, ops) in history.per_location.iter() {
        let writes: Vec<&OpRecord<V>> = ops
            .iter()
            .filter(|o| matches!(o.op, OpKind::Write { .. }))
            .collect();
        for read in ops.iter() {
            let OpKind::Read { value } = &read.op else {
                continue;
            };
            // A write that strictly precedes the read and could supersede
            // candidates: w' with w'.end < read.start.
            let superseders: Vec<&&OpRecord<V>> =
                writes.iter().filter(|w| w.end < read.start).collect();
            match value {
                None => {
                    // Initial value: illegal if any write completed first.
                    if let Some(w) = superseders.first() {
                        return Err(Violation {
                            location: loc,
                            read_client: read.client,
                            read_start: read.start,
                            reason: format!(
                                "returned the initial value although client {}'s write \
                                 (t={}..{}) completed before the read began",
                                w.client, w.start, w.end
                            ),
                        });
                    }
                }
                Some(v) => {
                    let candidates: Vec<&&OpRecord<V>> = writes
                        .iter()
                        .filter(|w| {
                            matches!(&w.op, OpKind::Write { value } if value == v)
                                && w.start <= read.end
                        })
                        .collect();
                    if candidates.is_empty() {
                        return Err(Violation {
                            location: loc,
                            read_client: read.client,
                            read_start: read.start,
                            reason: format!(
                                "returned {v:?}, which no write produced before the read ended"
                            ),
                        });
                    }
                    let some_fresh = candidates.iter().any(|w| {
                        !superseders
                            .iter()
                            .any(|s| w.end < s.start && s.end < read.start)
                    });
                    if !some_fresh {
                        return Err(Violation {
                            location: loc,
                            read_client: read.client,
                            read_start: read.start,
                            reason: format!(
                                "returned {v:?}, but every write of that value was \
                                 overwritten before the read began"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Thread-safe recorder: hands out logical timestamps and accumulates
/// completed operations into a [`History`].
///
/// # Example
///
/// ```
/// use ajx_consistency::{check_regular, OpKind, Recorder};
///
/// let rec = Recorder::new();
/// let pending = rec.invoke();
/// // ... perform the write against the real system ...
/// rec.complete_write(7, 1, pending, 42u64);
///
/// let pending = rec.invoke();
/// rec.complete_read(7, 2, pending, Some(42u64));
/// assert!(check_regular(&rec.take_history()).is_ok());
/// ```
#[derive(Debug)]
pub struct Recorder<V> {
    clock: AtomicU64,
    history: Mutex<History<V>>,
}

/// Token holding an operation's invocation timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    start: u64,
}

impl<V> Recorder<V> {
    /// A fresh recorder with its clock at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Recorder {
            clock: AtomicU64::new(0),
            history: Mutex::new(History::new()),
        })
    }

    /// Marks an operation's invocation; call *before* issuing it.
    pub fn invoke(&self) -> Pending {
        Pending {
            start: self.clock.fetch_add(1, Ordering::SeqCst) + 1,
        }
    }

    /// Records a completed write.
    pub fn complete_write(&self, loc: Location, client: u32, pending: Pending, value: V) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        self.history.lock().push(
            loc,
            OpRecord {
                client,
                start: pending.start,
                end,
                op: OpKind::Write { value },
            },
        );
    }

    /// Records a write whose outcome is *unknown* — its RPC failed
    /// indeterminately (timeout / lost reply), so it may have taken effect
    /// already, may take effect later, or may never take effect.
    ///
    /// The record gets `end = u64::MAX`, making it concurrent with every
    /// subsequent operation: it can justify a read that returns its value,
    /// but it can never supersede an older value. This is the sound way to
    /// fold failed writes into a regularity check — dropping them would
    /// flag legitimate reads of a value that *did* land as "never written".
    pub fn complete_write_indeterminate(
        &self,
        loc: Location,
        client: u32,
        pending: Pending,
        value: V,
    ) {
        self.history.lock().push(
            loc,
            OpRecord {
                client,
                start: pending.start,
                end: u64::MAX,
                op: OpKind::Write { value },
            },
        );
    }

    /// Records a completed read (`None` = initial value observed).
    pub fn complete_read(&self, loc: Location, client: u32, pending: Pending, value: Option<V>) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        self.history.lock().push(
            loc,
            OpRecord {
                client,
                start: pending.start,
                end,
                op: OpKind::Read { value },
            },
        );
    }

    /// Extracts the history accumulated so far, leaving the recorder empty.
    pub fn take_history(&self) -> History<V> {
        std::mem::take(&mut *self.history.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(client: u32, start: u64, end: u64, value: u64) -> OpRecord<u64> {
        OpRecord {
            client,
            start,
            end,
            op: OpKind::Write { value },
        }
    }

    fn r(client: u32, start: u64, end: u64, value: Option<u64>) -> OpRecord<u64> {
        OpRecord {
            client,
            start,
            end,
            op: OpKind::Read { value },
        }
    }

    fn hist(ops: Vec<OpRecord<u64>>) -> History<u64> {
        let mut h = History::new();
        for op in ops {
            h.push(0, op);
        }
        h
    }

    #[test]
    fn empty_history_is_regular() {
        assert!(check_regular(&hist(vec![])).is_ok());
        assert!(History::<u64>::new().is_empty());
    }

    #[test]
    fn sequential_read_sees_latest_write() {
        let h = hist(vec![w(1, 1, 2, 10), w(1, 3, 4, 20), r(2, 5, 6, Some(20))]);
        assert!(check_regular(&h).is_ok());
    }

    #[test]
    fn stale_read_of_overwritten_value_is_a_violation() {
        // w(10) then w(20) both complete before the read begins; reading 10
        // is exactly the "value that was overwritten" the paper forbids.
        let h = hist(vec![w(1, 1, 2, 10), w(1, 3, 4, 20), r(2, 5, 6, Some(10))]);
        let v = check_regular(&h).unwrap_err();
        assert!(v.to_string().contains("overwritten"));
    }

    #[test]
    fn read_of_never_written_value_is_a_violation() {
        let h = hist(vec![w(1, 1, 2, 10), r(2, 3, 4, Some(99))]);
        let v = check_regular(&h).unwrap_err();
        assert!(v.reason.contains("no write produced"));
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Write of 20 overlaps the read: both 10 (previous) and 20 are legal.
        let old = hist(vec![w(1, 1, 2, 10), w(1, 4, 8, 20), r(2, 5, 6, Some(10))]);
        assert!(check_regular(&old).is_ok());
        let new = hist(vec![w(1, 1, 2, 10), w(1, 4, 8, 20), r(2, 5, 6, Some(20))]);
        assert!(check_regular(&new).is_ok());
    }

    #[test]
    fn read_concurrent_with_multiple_writes_may_see_any() {
        let base = vec![w(1, 1, 2, 10), w(2, 3, 9, 20), w(3, 4, 10, 30)];
        for v in [10, 20, 30] {
            let mut ops = base.clone();
            ops.push(r(4, 5, 6, Some(v)));
            assert!(check_regular(&hist(ops)).is_ok(), "value {v} should be legal");
        }
    }

    #[test]
    fn future_value_is_a_violation() {
        // The write starts after the read ends; seeing its value is illegal.
        let h = hist(vec![r(2, 1, 2, Some(10)), w(1, 3, 4, 10)]);
        assert!(check_regular(&h).is_err());
    }

    #[test]
    fn initial_value_rules() {
        // Legal while no write has completed...
        assert!(check_regular(&hist(vec![r(1, 1, 2, None), w(2, 3, 4, 5)])).is_ok());
        // ...and while a write is merely concurrent...
        assert!(check_regular(&hist(vec![w(2, 1, 5, 5), r(1, 2, 3, None)])).is_ok());
        // ...but illegal once a write completed before the read began.
        let v = check_regular(&hist(vec![w(2, 1, 2, 5), r(1, 3, 4, None)])).unwrap_err();
        assert!(v.reason.contains("initial value"));
    }

    #[test]
    fn duplicate_values_use_any_witness() {
        // Two writes of the same value; the earlier is overwritten but the
        // later is fresh — the read is legal via the later witness.
        let h = hist(vec![
            w(1, 1, 2, 10),
            w(2, 3, 4, 99),
            w(3, 5, 6, 10),
            r(4, 7, 8, Some(10)),
        ]);
        assert!(check_regular(&h).is_ok());
    }

    #[test]
    fn locations_are_independent() {
        let mut h = History::new();
        h.push(1, w(1, 1, 2, 10));
        h.push(2, r(2, 3, 4, None)); // initial at loc 2: fine
        assert!(check_regular(&h).is_ok());
        assert_eq!(h.len(), 2);
        assert_eq!(h.iter().count(), 2);
    }

    #[test]
    fn recorder_round_trip_multithreaded() {
        let rec: Arc<Recorder<u64>> = Recorder::new();
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let p = rec.invoke();
                        rec.complete_write(c, c as u32, p, c * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hist = rec.take_history();
        assert_eq!(hist.len(), 200);
        assert!(check_regular(&hist).is_ok(), "write-only history is regular");
        assert!(rec.take_history().is_empty(), "take drains");
        // Timestamps are well-formed.
    }

    #[test]
    fn indeterminate_write_is_concurrent_with_every_later_read() {
        let rec: Arc<Recorder<u64>> = Recorder::new();
        let p = rec.invoke();
        rec.complete_write(0, 1, p, 10);
        let p = rec.invoke();
        rec.complete_write_indeterminate(0, 2, p, 20);
        // Arbitrarily later, a read may see the old value (the lost write
        // never landed) or the new one (it landed after all) — but the
        // indeterminate write must never make reading 10 a violation.
        let p = rec.invoke();
        rec.complete_read(0, 3, p, Some(10));
        let p = rec.invoke();
        rec.complete_read(0, 3, p, Some(20));
        assert!(check_regular(&rec.take_history()).is_ok());
    }

    #[test]
    fn violation_display_mentions_location_and_client() {
        let h = hist(vec![w(1, 1, 2, 10), r(7, 3, 4, Some(99))]);
        let v = check_regular(&h).unwrap_err();
        let msg = v.to_string();
        assert!(msg.contains("location 0"));
        assert!(msg.contains("client 7"));
    }
}
