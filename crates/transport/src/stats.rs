//! Message and byte instrumentation.
//!
//! Fig. 1 of the paper compares protocols by *measured* common-case cost:
//! number of messages, round trips, and bandwidth per operation. Rather
//! than trusting the formulas, the reproduction counts real messages here
//! and checks them against the table (see `fig1_comparison`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for traffic through one endpoint or one network.
///
/// All methods are lock-free and callable from any thread.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    round_trips: AtomicU64,
}

/// A point-in-time copy of [`NetStats`], supporting subtraction to measure
/// a single operation's cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Messages sent by the endpoint.
    pub msgs_sent: u64,
    /// Bytes sent (payload + fixed header accounting).
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Completed request/reply round trips.
    pub round_trips: u64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an outbound message of `bytes`.
    pub fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records an inbound message of `bytes`.
    pub fn record_receive(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one completed round trip.
    pub fn record_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            round_trips: self.round_trips.load(Ordering::Relaxed),
        }
    }
}

impl NetSnapshot {
    /// Counter-wise difference `self − earlier` (saturating), giving the
    /// cost of the operations performed between two snapshots.
    pub fn since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            msgs_received: self.msgs_received.saturating_sub(earlier.msgs_received),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            round_trips: self.round_trips.saturating_sub(earlier.round_trips),
        }
    }

    /// Total messages in both directions — the paper's "# msgs" columns.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent + self.msgs_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        s.record_send(100);
        s.record_send(50);
        s.record_receive(10);
        s.record_round_trip();
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.msgs_received, 1);
        assert_eq!(snap.bytes_received, 10);
        assert_eq!(snap.round_trips, 1);
        assert_eq!(snap.total_msgs(), 3);
    }

    #[test]
    fn since_diffs_counters() {
        let s = NetStats::new();
        s.record_send(5);
        let before = s.snapshot();
        s.record_send(7);
        s.record_receive(3);
        let diff = s.snapshot().since(&before);
        assert_eq!(diff.msgs_sent, 1);
        assert_eq!(diff.bytes_sent, 7);
        assert_eq!(diff.msgs_received, 1);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = std::sync::Arc::new(NetStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().msgs_sent, 8000);
    }
}
