//! Message and byte instrumentation.
//!
//! Fig. 1 of the paper compares protocols by *measured* common-case cost:
//! number of messages, round trips, and bandwidth per operation. Rather
//! than trusting the formulas, the reproduction counts real messages here
//! and checks them against the table (see `fig1_comparison`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two microsecond buckets in the latency histogram:
/// bucket `i` counts latencies in `[2^i, 2^(i+1)) µs`, with bucket 0 also
/// absorbing sub-microsecond samples and the last bucket absorbing
/// everything ≥ ~9 minutes. 40 buckets cover any latency this simulator
/// can produce.
pub const LATENCY_BUCKETS: usize = 40;

/// Monotonic counters for traffic through one endpoint or one network.
///
/// All methods are lock-free and callable from any thread. Besides the
/// Fig. 1 message/byte counters, the struct carries the scale-out
/// instrumentation added for `ext_many_clients`: per-node in-flight
/// gauges (requests accepted by a node queue but not yet answered) and a
/// fixed-bucket operation-latency histogram from which p50/p99 are read
/// without external tooling.
#[derive(Debug)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    /// Block-content bytes inside sent messages (excludes headers and
    /// metadata-only traffic) — the repair-bandwidth figure of merit.
    payload_sent: AtomicU64,
    /// Block-content bytes inside received messages.
    payload_received: AtomicU64,
    round_trips: AtomicU64,
    /// Requests currently queued or executing, per node. Empty unless
    /// built with [`NetStats::with_nodes`].
    inflight: Vec<AtomicU64>,
    /// High-water mark of each node's in-flight gauge.
    inflight_peak: Vec<AtomicU64>,
    /// Power-of-two-µs latency histogram (see [`LATENCY_BUCKETS`]).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
}

// Manual impl: `Default` is not derivable for arrays longer than 32.
impl Default for NetStats {
    fn default() -> Self {
        NetStats {
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            msgs_received: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            payload_sent: AtomicU64::new(0),
            payload_received: AtomicU64::new(0),
            round_trips: AtomicU64::new(0),
            inflight: Vec::new(),
            inflight_peak: Vec::new(),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of [`NetStats`], supporting subtraction to measure
/// a single operation's cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Messages sent by the endpoint.
    pub msgs_sent: u64,
    /// Bytes sent (payload + fixed header accounting).
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Block-content bytes sent (no headers, no metadata-only messages).
    pub payload_sent: u64,
    /// Block-content bytes received.
    pub payload_received: u64,
    /// Completed request/reply round trips.
    pub round_trips: u64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters with in-flight gauges for `n_nodes` nodes.
    pub fn with_nodes(n_nodes: usize) -> Self {
        NetStats {
            inflight: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            inflight_peak: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Marks one more request in flight at node `node`.
    pub fn inc_inflight(&self, node: usize) {
        if let Some(g) = self.inflight.get(node) {
            let now = g.fetch_add(1, Ordering::Relaxed) + 1;
            self.inflight_peak[node].fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Marks one request at node `node` as answered.
    pub fn dec_inflight(&self, node: usize) {
        if let Some(g) = self.inflight.get(node) {
            g.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Requests currently in flight at node `node` (0 if untracked).
    pub fn inflight(&self, node: usize) -> u64 {
        self.inflight
            .get(node)
            .map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// High-water mark of node `node`'s in-flight gauge.
    pub fn inflight_peak(&self, node: usize) -> u64 {
        self.inflight_peak
            .get(node)
            .map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// Records one operation latency into the histogram.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().max(1) as u64;
        // ilog2 of a value in [2^i, 2^(i+1)) is i; clamp into range.
        let bucket = (us.ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of latency samples recorded.
    pub fn latency_samples(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Mean recorded latency, if any samples exist.
    pub fn latency_mean(&self) -> Option<Duration> {
        let n = self.latency_count.load(Ordering::Relaxed);
        (n > 0).then(|| {
            Duration::from_micros(self.latency_sum_us.load(Ordering::Relaxed) / n)
        })
    }

    /// The latency at quantile `q` (e.g. 0.5, 0.99), reported as the upper
    /// bound of the histogram bucket containing it — within 2x of the true
    /// value by construction. `None` until a sample is recorded.
    pub fn latency_percentile(&self, q: f64) -> Option<Duration> {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.latency_buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Duration::from_micros(1u64 << (i + 1)));
            }
        }
        Some(Duration::from_micros(1u64 << LATENCY_BUCKETS))
    }

    /// Records an outbound message of `bytes`.
    pub fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records the block-content share of an outbound message. Called
    /// alongside [`NetStats::record_send`] with `Request::payload_bytes()`,
    /// so repair bandwidth can be compared net of header overhead.
    pub fn record_send_payload(&self, bytes: usize) {
        self.payload_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records an inbound message of `bytes`.
    pub fn record_receive(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records the block-content share of an inbound message (see
    /// [`NetStats::record_send_payload`]).
    pub fn record_receive_payload(&self, bytes: usize) {
        self.payload_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one completed round trip.
    pub fn record_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            payload_sent: self.payload_sent.load(Ordering::Relaxed),
            payload_received: self.payload_received.load(Ordering::Relaxed),
            round_trips: self.round_trips.load(Ordering::Relaxed),
        }
    }
}

impl NetSnapshot {
    /// Counter-wise difference `self − earlier` (saturating), giving the
    /// cost of the operations performed between two snapshots.
    pub fn since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            msgs_received: self.msgs_received.saturating_sub(earlier.msgs_received),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            payload_sent: self.payload_sent.saturating_sub(earlier.payload_sent),
            payload_received: self
                .payload_received
                .saturating_sub(earlier.payload_received),
            round_trips: self.round_trips.saturating_sub(earlier.round_trips),
        }
    }

    /// Total messages in both directions — the paper's "# msgs" columns.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent + self.msgs_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        s.record_send(100);
        s.record_send(50);
        s.record_receive(10);
        s.record_round_trip();
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.msgs_received, 1);
        assert_eq!(snap.bytes_received, 10);
        assert_eq!(snap.round_trips, 1);
        assert_eq!(snap.total_msgs(), 3);
    }

    #[test]
    fn payload_counters_track_block_bytes_separately() {
        let s = NetStats::new();
        s.record_send(100);
        s.record_send_payload(64);
        s.record_receive(40);
        // A metadata-only reply records no payload at all.
        s.record_receive(40);
        s.record_receive_payload(8);
        let before = s.snapshot();
        assert_eq!(before.payload_sent, 64);
        assert_eq!(before.payload_received, 8);
        s.record_send_payload(1);
        let diff = s.snapshot().since(&before);
        assert_eq!(diff.payload_sent, 1);
        assert_eq!(diff.payload_received, 0);
    }

    #[test]
    fn since_diffs_counters() {
        let s = NetStats::new();
        s.record_send(5);
        let before = s.snapshot();
        s.record_send(7);
        s.record_receive(3);
        let diff = s.snapshot().since(&before);
        assert_eq!(diff.msgs_sent, 1);
        assert_eq!(diff.bytes_sent, 7);
        assert_eq!(diff.msgs_received, 1);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = std::sync::Arc::new(NetStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().msgs_sent, 8000);
    }

    #[test]
    fn inflight_gauges_track_per_node_with_peak() {
        let s = NetStats::with_nodes(2);
        s.inc_inflight(0);
        s.inc_inflight(0);
        s.inc_inflight(1);
        assert_eq!(s.inflight(0), 2);
        assert_eq!(s.inflight(1), 1);
        s.dec_inflight(0);
        assert_eq!(s.inflight(0), 1);
        assert_eq!(s.inflight_peak(0), 2, "peak survives the decrement");
        // Untracked nodes (or plain `new()` stats) are inert, not a panic.
        s.inc_inflight(9);
        assert_eq!(s.inflight(9), 0);
    }

    #[test]
    fn latency_histogram_reports_percentiles_within_2x() {
        let s = NetStats::new();
        for _ in 0..99 {
            s.record_latency(Duration::from_micros(100));
        }
        s.record_latency(Duration::from_millis(50));
        assert_eq!(s.latency_samples(), 100);
        // 100µs lands in bucket [64, 128)µs → reported as 128µs.
        assert_eq!(s.latency_percentile(0.5), Some(Duration::from_micros(128)));
        // p100 catches the 50ms outlier: bucket [32768, 65536)µs.
        assert_eq!(s.latency_percentile(1.0), Some(Duration::from_micros(65536)));
        let mean = s.latency_mean().unwrap();
        assert!(mean >= Duration::from_micros(100) && mean <= Duration::from_millis(1));
    }

    #[test]
    fn latency_percentile_is_none_without_samples() {
        let s = NetStats::new();
        assert_eq!(s.latency_percentile(0.5), None);
        assert_eq!(s.latency_mean(), None);
    }
}
