//! Deterministic fault injection for the in-process network.
//!
//! The paper's evaluation only exercises clean fail-stop crashes, but its
//! correctness argument (§3.8–§3.10 recovery, §4 resilience bounds) must
//! hold on *lossy, slow, partitioned* networks too — the environments the
//! FAB lineage and later erasure-coded register constructions validate
//! against. This module injects exactly those conditions, deterministically:
//!
//! * **Per-link message faults** ([`LinkFaults`]): drop the request, drop
//!   the reply, delay the exchange, or duplicate the request (at-least-once
//!   delivery), each with an independent probability.
//! * **One-way partitions**: block client→node or node→client traffic on a
//!   specific link while the reverse direction still works.
//! * **Per-node slowdowns**: add latency to every exchange with one node.
//!
//! Every decision is a pure function of `(seed, client, node, per-link call
//! sequence number, fault kind)` through a splitmix64 mix — no shared RNG
//! stream — so two runs with the same seed and the same per-link call
//! sequences make byte-identical drop/delay/duplicate choices regardless of
//! wall-clock timing. An optional trace records every injected fault for
//! replay comparison.

use ajx_storage::{ClientId, NodeId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Fault probabilities for one client↔node link (or the all-links default).
///
/// All probabilities are in `[0, 1]`; the inert default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability that a request is dropped before reaching the node.
    pub drop_req: f64,
    /// Probability that a reply is dropped on its way back (the request
    /// *was* executed — the ambiguous half of a lost exchange).
    pub drop_reply: f64,
    /// Probability that an exchange is delayed by [`LinkFaults::delay`].
    pub delay_p: f64,
    /// The injected delay when `delay_p` fires.
    pub delay: Duration,
    /// Probability that a request is delivered twice (at-least-once RPC).
    pub dup_req: f64,
}

impl LinkFaults {
    /// True if this rule can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.drop_req <= 0.0
            && self.drop_reply <= 0.0
            && (self.delay_p <= 0.0 || self.delay.is_zero())
            && self.dup_req <= 0.0
    }
}

/// The per-call outcome of consulting the plan (crate-internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fate {
    /// Deliver the request to the node at all?
    pub deliver_req: bool,
    /// Deliver it a second time (only meaningful when `deliver_req`)?
    pub duplicate_req: bool,
    /// Discard the reply after the node produced it?
    pub drop_reply: bool,
    /// Extra latency injected into the exchange.
    pub delay: Duration,
}

impl Fate {
    pub(crate) const CLEAN: Fate = Fate {
        deliver_req: true,
        duplicate_req: false,
        drop_reply: false,
        delay: Duration::ZERO,
    };
}

/// Salts separating the independent per-call random decisions.
const SALT_DROP_REQ: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DROP_REPLY: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_DELAY: u64 = 0x1656_67B1_9E37_79F9;
const SALT_DUP: u64 = 0x2545_F491_4F6C_DD1D;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws a deterministic Bernoulli sample for one (link, call, kind).
fn hits(seed: u64, client: ClientId, node: NodeId, seq: u64, salt: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = splitmix64(
        seed ^ salt
            ^ (u64::from(client.0) << 40)
            ^ (u64::from(node.0) << 24)
            ^ seq.wrapping_mul(0x9E37_79B9),
    );
    // 53 uniform bits → [0, 1).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

#[derive(Debug, Default)]
struct FaultTable {
    default_link: LinkFaults,
    links: HashMap<(ClientId, NodeId), LinkFaults>,
    /// Blocked client→node directions (requests never arrive).
    blocked_req: HashSet<(ClientId, NodeId)>,
    /// Blocked node→client directions (replies never arrive).
    blocked_reply: HashSet<(ClientId, NodeId)>,
    /// Extra per-exchange latency for a node (overloaded/slow host).
    slowdown: HashMap<NodeId, Duration>,
}

impl FaultTable {
    fn is_inert(&self) -> bool {
        self.default_link.is_inert()
            && self.links.values().all(LinkFaults::is_inert)
            && self.blocked_req.is_empty()
            && self.blocked_reply.is_empty()
            && self.slowdown.is_empty()
    }
}

/// The network's seeded fault-injection plan.
///
/// One plan is shared by every endpoint of a [`crate::Network`]; all methods
/// take `&self` and are thread-safe. A fresh plan injects nothing. Typical
/// chaos setup:
///
/// ```
/// use ajx_transport::{LinkFaults, Network, NetworkConfig};
/// use std::time::Duration;
///
/// let net = Network::new(NetworkConfig {
///     call_timeout: Some(Duration::from_millis(5)),
///     ..NetworkConfig::default()
/// });
/// net.faults().set_seed(42);
/// net.faults().set_default_link(LinkFaults {
///     drop_req: 0.05,
///     drop_reply: 0.05,
///     delay_p: 0.1,
///     delay: Duration::from_micros(200),
///     ..LinkFaults::default()
/// });
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    table: Mutex<FaultTable>,
    seed: Mutex<u64>,
    /// Fast path: skip the table lock entirely while no fault is configured.
    active: AtomicBool,
    trace: Mutex<Vec<String>>,
    tracing: AtomicBool,
}

impl FaultPlan {
    /// A fresh, inert plan.
    pub(crate) fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the seed all per-call decisions derive from.
    pub fn set_seed(&self, seed: u64) {
        *self.seed.lock() = seed;
    }

    /// Sets the fault rule applied to links without a specific override.
    pub fn set_default_link(&self, faults: LinkFaults) {
        let mut t = self.table.lock();
        t.default_link = faults;
        self.refresh_active(&t);
    }

    /// Overrides the fault rule for one client→node link.
    pub fn set_link(&self, client: ClientId, node: NodeId, faults: LinkFaults) {
        let mut t = self.table.lock();
        t.links.insert((client, node), faults);
        self.refresh_active(&t);
    }

    /// Blocks the client→node direction of a link: requests are silently
    /// lost (the client sees [`crate::RpcError::Timeout`]).
    pub fn partition_requests(&self, client: ClientId, node: NodeId) {
        let mut t = self.table.lock();
        t.blocked_req.insert((client, node));
        self.refresh_active(&t);
        self.record(format!("nemesis partition-req c{}->s{}", client.0, node.0));
    }

    /// Blocks the node→client direction: requests execute, replies are lost.
    pub fn partition_replies(&self, client: ClientId, node: NodeId) {
        let mut t = self.table.lock();
        t.blocked_reply.insert((client, node));
        self.refresh_active(&t);
        self.record(format!("nemesis partition-reply s{}->c{}", node.0, client.0));
    }

    /// Heals every partition (both directions, all links).
    pub fn heal_partitions(&self) {
        let mut t = self.table.lock();
        let had = !t.blocked_req.is_empty() || !t.blocked_reply.is_empty();
        t.blocked_req.clear();
        t.blocked_reply.clear();
        self.refresh_active(&t);
        if had {
            self.record("nemesis heal-partitions".to_string());
        }
    }

    /// Adds `extra` latency to every exchange with `node` (`ZERO` clears).
    pub fn set_node_slowdown(&self, node: NodeId, extra: Duration) {
        let mut t = self.table.lock();
        if extra.is_zero() {
            t.slowdown.remove(&node);
        } else {
            t.slowdown.insert(node, extra);
        }
        self.refresh_active(&t);
        self.record(format!("nemesis slowdown s{} {}us", node.0, extra.as_micros()));
    }

    /// Removes every configured fault, partition, and slowdown.
    pub fn clear(&self) {
        let mut t = self.table.lock();
        *t = FaultTable::default();
        self.active.store(false, Ordering::SeqCst);
    }

    /// Appends a caller-supplied line to the fault-event trace — the chaos
    /// harness uses this to interleave nemesis actions that live outside
    /// the transport (node crashes, directory remaps) with injected faults,
    /// keeping one totally-ordered event stream per run.
    pub fn note(&self, line: impl Into<String>) {
        self.record(line.into());
    }

    /// Enables or disables fault-event tracing.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::SeqCst);
    }

    /// Drains the recorded fault-event trace.
    ///
    /// With a single driving thread the order is deterministic for a given
    /// seed; concurrent drivers should sort before comparing (each line
    /// carries its link and per-link sequence number).
    pub fn take_trace(&self) -> Vec<String> {
        std::mem::take(&mut *self.trace.lock())
    }

    fn refresh_active(&self, t: &FaultTable) {
        self.active.store(!t.is_inert(), Ordering::SeqCst);
    }

    fn record(&self, line: String) {
        if self.tracing.load(Ordering::SeqCst) {
            self.trace.lock().push(line);
        }
    }

    /// Decides the fate of per-link call number `seq` from `client` to
    /// `node`. Pure in `(seed, client, node, seq)` given a fixed table.
    pub(crate) fn fate(&self, client: ClientId, node: NodeId, seq: u64) -> Fate {
        if !self.active.load(Ordering::SeqCst) {
            return Fate::CLEAN;
        }
        let (rule, req_blocked, reply_blocked, slow) = {
            let t = self.table.lock();
            (
                t.links.get(&(client, node)).copied().unwrap_or(t.default_link),
                t.blocked_req.contains(&(client, node)),
                t.blocked_reply.contains(&(client, node)),
                t.slowdown.get(&node).copied().unwrap_or(Duration::ZERO),
            )
        };
        let seed = *self.seed.lock();
        let mut fate = Fate::CLEAN;
        fate.delay = slow;
        if hits(seed, client, node, seq, SALT_DELAY, rule.delay_p) {
            fate.delay += rule.delay;
            self.record(format!(
                "c{}->s{} #{seq} delay {}us",
                client.0,
                node.0,
                rule.delay.as_micros()
            ));
        }
        if req_blocked || hits(seed, client, node, seq, SALT_DROP_REQ, rule.drop_req) {
            fate.deliver_req = false;
            self.record(format!(
                "c{}->s{} #{seq} {}",
                client.0,
                node.0,
                if req_blocked { "blocked-req" } else { "drop-req" }
            ));
            return fate;
        }
        if hits(seed, client, node, seq, SALT_DUP, rule.dup_req) {
            fate.duplicate_req = true;
            self.record(format!("c{}->s{} #{seq} dup-req", client.0, node.0));
        }
        if reply_blocked || hits(seed, client, node, seq, SALT_DROP_REPLY, rule.drop_reply) {
            fate.drop_reply = true;
            self.record(format!(
                "s{}->c{} #{seq} {}",
                node.0,
                client.0,
                if reply_blocked { "blocked-reply" } else { "drop-reply" }
            ));
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> LinkFaults {
        LinkFaults {
            drop_req: 0.3,
            drop_reply: 0.2,
            delay_p: 0.1,
            delay: Duration::from_micros(50),
            dup_req: 0.1,
        }
    }

    #[test]
    fn inert_plan_is_clean_for_every_call() {
        let plan = FaultPlan::new();
        for seq in 0..100 {
            assert_eq!(plan.fate(ClientId(1), NodeId(0), seq), Fate::CLEAN);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let mk = |seed| {
            let plan = FaultPlan::new();
            plan.set_seed(seed);
            plan.set_default_link(lossy());
            (0..500)
                .map(|seq| plan.fate(ClientId(3), NodeId(2), seq))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed, same fates");
        assert_ne!(mk(7), mk(8), "different seed, different fates");
    }

    #[test]
    fn links_have_independent_decision_streams() {
        let plan = FaultPlan::new();
        plan.set_seed(1);
        plan.set_default_link(lossy());
        let a: Vec<_> = (0..200).map(|s| plan.fate(ClientId(1), NodeId(0), s)).collect();
        let b: Vec<_> = (0..200).map(|s| plan.fate(ClientId(2), NodeId(0), s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let plan = FaultPlan::new();
        plan.set_seed(99);
        plan.set_default_link(LinkFaults {
            drop_req: 0.25,
            ..LinkFaults::default()
        });
        let dropped = (0..4000)
            .filter(|&s| !plan.fate(ClientId(0), NodeId(0), s).deliver_req)
            .count();
        assert!((800..1200).contains(&dropped), "got {dropped} drops of ~1000");
    }

    #[test]
    fn one_way_partitions_block_only_their_direction() {
        let plan = FaultPlan::new();
        plan.partition_requests(ClientId(1), NodeId(0));
        let f = plan.fate(ClientId(1), NodeId(0), 0);
        assert!(!f.deliver_req);
        // Other links untouched.
        assert!(plan.fate(ClientId(2), NodeId(0), 0).deliver_req);
        assert!(plan.fate(ClientId(1), NodeId(1), 0).deliver_req);

        plan.heal_partitions();
        assert!(plan.fate(ClientId(1), NodeId(0), 0).deliver_req);

        plan.partition_replies(ClientId(1), NodeId(0));
        let f = plan.fate(ClientId(1), NodeId(0), 0);
        assert!(f.deliver_req && f.drop_reply);
    }

    #[test]
    fn slowdown_applies_to_every_exchange_with_the_node() {
        let plan = FaultPlan::new();
        plan.set_node_slowdown(NodeId(2), Duration::from_micros(300));
        assert_eq!(
            plan.fate(ClientId(0), NodeId(2), 0).delay,
            Duration::from_micros(300)
        );
        assert_eq!(plan.fate(ClientId(0), NodeId(1), 0).delay, Duration::ZERO);
        plan.set_node_slowdown(NodeId(2), Duration::ZERO);
        assert_eq!(plan.fate(ClientId(0), NodeId(2), 0).delay, Duration::ZERO);
    }

    #[test]
    fn per_link_override_beats_the_default() {
        let plan = FaultPlan::new();
        plan.set_seed(5);
        plan.set_default_link(LinkFaults {
            drop_req: 1.0,
            ..LinkFaults::default()
        });
        plan.set_link(ClientId(1), NodeId(0), LinkFaults::default());
        assert!(plan.fate(ClientId(1), NodeId(0), 0).deliver_req, "override is clean");
        assert!(!plan.fate(ClientId(1), NodeId(1), 0).deliver_req, "default drops");
    }

    #[test]
    fn trace_records_and_drains_events() {
        let plan = FaultPlan::new();
        plan.set_tracing(true);
        plan.set_seed(3);
        plan.set_default_link(LinkFaults {
            drop_req: 1.0,
            ..LinkFaults::default()
        });
        let _ = plan.fate(ClientId(1), NodeId(2), 17);
        let trace = plan.take_trace();
        assert_eq!(trace, vec!["c1->s2 #17 drop-req".to_string()]);
        assert!(plan.take_trace().is_empty(), "drained");
    }

    #[test]
    fn clear_resets_everything() {
        let plan = FaultPlan::new();
        plan.set_default_link(lossy());
        plan.partition_requests(ClientId(0), NodeId(0));
        plan.clear();
        for seq in 0..50 {
            assert_eq!(plan.fate(ClientId(0), NodeId(0), seq), Fate::CLEAN);
        }
    }
}
