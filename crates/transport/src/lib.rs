//! In-process RPC transport for the AJX reproduction.
//!
//! The paper's implementation (§5.1) runs "RPC in user mode ... over TCP"
//! between 8 hosts. This crate reproduces that environment in-process:
//!
//! * [`Network`] — hosts the storage nodes; synchronous request/reply
//!   delivery with optional one-way latency and per-endpoint token-bucket
//!   bandwidth ([`TokenBucket`]) so the saturation effects that shape the
//!   paper's Fig. 9 exist here too.
//! * [`ClientEndpoint`] — per-client connection with serial calls
//!   ([`ClientEndpoint::call`]), parallel `pfor` fan-out
//!   ([`ClientEndpoint::call_many`]), link-layer multicast
//!   ([`ClientEndpoint::broadcast`], §3.11), and a non-blocking
//!   completion-queue path ([`ClientEndpoint::submit_call`] /
//!   [`ClientEndpoint::poll_call`] over [`PendingCall`]) so one thread can
//!   multiplex thousands of logical clients.
//! * Reactor-style nodes — each node drains a *bounded* request queue
//!   (full ⇒ [`RpcError::Busy`] backpressure) into per-stripe sharded
//!   state, so requests for independent stripes never contend on a lock.
//! * Fault injection — fail-stop node crashes ([`Network::crash_node`]),
//!   directory-style remap to a fresh INIT node ([`Network::remap_node`],
//!   §3.5), deterministic client kills ([`ClientEndpoint::kill_after`]),
//!   client-failure detection that expires recovery locks
//!   ([`Network::notify_client_failure`], Fig. 6 line 34), and a seeded
//!   per-link [`FaultPlan`] (message drops, delays, duplicates, one-way
//!   partitions, per-node slowdowns) whose decisions are deterministic in
//!   the seed — pair it with [`NetworkConfig::call_timeout`] so lost
//!   exchanges surface as [`RpcError::Timeout`].
//! * [`NetStats`] — message/byte counters behind the measured Fig. 1 table.
//!
//! # Example
//!
//! ```
//! use ajx_transport::{Network, NetworkConfig};
//! use ajx_storage::{ClientId, NodeId, Request, Reply, StripeId};
//!
//! let net = Network::new(NetworkConfig::default());
//! let client = net.client(ClientId(1));
//! let reply = client.call(NodeId(0), Request::Read { stripe: StripeId(0) })?;
//! assert!(matches!(reply, Reply::Read(_)));
//! # Ok::<(), ajx_transport::RpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod error;
mod fault;
mod network;
mod stats;

pub use bucket::TokenBucket;
pub use error::RpcError;
pub use fault::{FaultPlan, LinkFaults};
pub use network::{ClientEndpoint, Network, NetworkConfig, PendingCall};
pub use stats::{NetSnapshot, NetStats, LATENCY_BUCKETS};
