//! Token-bucket bandwidth shaping for the threaded transport.
//!
//! The paper's §5.1 testbed has real NICs ("a low-end gigabit ethernet
//! card ... inter-node network bandwidth is 500Mbits/s"); an in-process
//! reproduction has none, so the saturation behaviour that shapes Fig. 9
//! (client NIC saturating in 9(a)/9(c), storage NICs in 9(b)) must be
//! imposed. Each endpoint owns a [`TokenBucket`]; sending `b` bytes blocks
//! the calling thread until the modeled link has drained them.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A blocking link serializer: `rate` bytes/second with a small idle burst.
///
/// Internally it tracks the virtual instant at which the link becomes free
/// (`next_free`); each send advances it by `bytes / rate` and the sender
/// waits until its message has fully drained — the store-and-forward model
/// of a NIC send buffer. An idle link earns at most one burst quantum of
/// credit, so short idle gaps don't let a sender exceed the rate for long.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: Duration,
    next_free: Mutex<Instant>,
}

impl TokenBucket {
    /// A link draining at `rate_bytes_per_sec`, with a burst allowance of
    /// 16 KiB or 2 ms of rate, whichever is larger.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes_per_sec` is zero.
    pub fn new(rate_bytes_per_sec: u64) -> Self {
        assert!(rate_bytes_per_sec > 0, "bandwidth must be positive");
        let rate = rate_bytes_per_sec as f64;
        let burst_secs = (16_384.0 / rate).max(0.002);
        TokenBucket {
            rate,
            burst: Duration::from_secs_f64(burst_secs),
            next_free: Mutex::new(Instant::now()),
        }
    }

    /// Sends `bytes` through the link, sleeping until they have drained.
    pub fn consume(&self, bytes: usize) {
        let wait = self.consume_nonblocking(bytes);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Reserves link time for `bytes` and returns how long the caller must
    /// wait for the send to complete (zero if covered by burst credit).
    pub fn consume_nonblocking(&self, bytes: usize) -> Duration {
        let mut next_free = self.next_free.lock();
        let now = Instant::now();
        // An idle link accumulates at most `burst` of credit.
        let earliest = now.checked_sub(self.burst).unwrap_or(now);
        let start = (*next_free).max(earliest);
        let finish = start + Duration::from_secs_f64(bytes as f64 / self.rate);
        *next_free = finish;
        finish.saturating_duration_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sends_within_burst_are_free() {
        let b = TokenBucket::new(1_000_000);
        std::thread::sleep(Duration::from_millis(5)); // go idle, earn burst
        assert_eq!(b.consume_nonblocking(1000), Duration::ZERO);
    }

    #[test]
    fn sustained_load_is_paced_at_rate() {
        let b = TokenBucket::new(10_000_000); // 10 MB/s
        let start = Instant::now();
        for _ in 0..100 {
            b.consume(10_000); // 1 MB total => ~100 ms at 10 MB/s
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "finished too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(400),
            "finished too slow: {elapsed:?}"
        );
    }

    #[test]
    fn backlog_grows_linearly_without_sleeping() {
        let b = TokenBucket::new(1_000_000); // 1 MB/s
        let mut last = Duration::ZERO;
        for _ in 0..10 {
            last = b.consume_nonblocking(100_000);
        }
        // 1 MB backlog at 1 MB/s: the *final* reservation completes ~1 s out.
        assert!(last > Duration::from_millis(900), "got {last:?}");
        assert!(last < Duration::from_millis(1100), "got {last:?}");
    }

    #[test]
    fn concurrent_senders_share_the_link() {
        let b = std::sync::Arc::new(TokenBucket::new(10_000_000)); // 10 MB/s
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        b.consume(10_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 × 250 KB = 1 MB total at 10 MB/s ≈ 100 ms regardless of threads.
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(80), "got {elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0);
    }
}
