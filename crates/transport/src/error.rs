//! RPC error type.

use ajx_storage::NodeId;
use core::fmt;

/// Why an RPC failed to complete.
///
/// The paper's failure model (§2) is fail-stop: nodes halt and the halt is
/// detectable. These errors are the transport-level manifestation, extended
/// with the lossy-network conditions ([`RpcError::Timeout`]) that the
/// fault-injection layer of [`crate::FaultPlan`] introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The target storage node has crashed (fail-stop) and not been
    /// remapped yet; the caller should trigger recovery/remap.
    NodeDown(NodeId),
    /// The *calling client* was killed by fault injection mid-protocol —
    /// used by tests and experiments to create the paper's "partial write"
    /// scenarios deterministically.
    ClientKilled,
    /// The node id is not part of this network.
    UnknownNode(NodeId),
    /// No reply arrived within the per-call deadline: the request or its
    /// reply was dropped, a partition blocked the link, or the node was too
    /// slow. The caller cannot tell whether the request executed.
    Timeout(NodeId),
    /// The reply channel closed without a reply: the network was torn down
    /// or the node's worker threads died mid-call. Distinct from
    /// [`RpcError::ClientKilled`] — the *caller* is fine.
    NetTornDown(NodeId),
    /// The node's bounded request queue was full and the request was
    /// rejected *before* being enqueued (backpressure shedding). Unlike
    /// [`RpcError::Timeout`] this is determinate — the request definitely
    /// did not execute — so even non-idempotent requests may be resent
    /// after backing off, and no remap is warranted.
    Busy(NodeId),
}

impl RpcError {
    /// Whether the caller can know the request was *not* executed. A
    /// [`RpcError::Timeout`] or [`RpcError::NetTornDown`] is ambiguous: the
    /// request may have been applied even though no reply came back.
    pub fn is_indeterminate(&self) -> bool {
        matches!(self, RpcError::Timeout(_) | RpcError::NetTornDown(_))
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NodeDown(n) => write!(f, "storage node {n} is down"),
            RpcError::ClientKilled => write!(f, "client was killed by fault injection"),
            RpcError::UnknownNode(n) => write!(f, "storage node {n} does not exist"),
            RpcError::Timeout(n) => write!(f, "call to storage node {n} timed out"),
            RpcError::NetTornDown(n) => {
                write!(f, "transport to storage node {n} was torn down mid-call")
            }
            RpcError::Busy(n) => {
                write!(f, "storage node {n} is busy (request queue full)")
            }
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            RpcError::NodeDown(NodeId(2)).to_string(),
            "storage node s2 is down"
        );
        assert!(RpcError::ClientKilled.to_string().contains("killed"));
        assert!(RpcError::UnknownNode(NodeId(9)).to_string().contains("s9"));
        assert!(RpcError::Timeout(NodeId(1)).to_string().contains("timed out"));
        assert!(RpcError::NetTornDown(NodeId(0)).to_string().contains("torn down"));
        assert!(RpcError::Busy(NodeId(3)).to_string().contains("busy"));
    }

    #[test]
    fn indeterminate_errors_are_the_ambiguous_ones() {
        assert!(RpcError::Timeout(NodeId(0)).is_indeterminate());
        assert!(RpcError::NetTornDown(NodeId(0)).is_indeterminate());
        assert!(!RpcError::NodeDown(NodeId(0)).is_indeterminate());
        assert!(!RpcError::ClientKilled.is_indeterminate());
        assert!(!RpcError::UnknownNode(NodeId(0)).is_indeterminate());
        // Busy is shed *before* enqueue, so the request surely didn't run.
        assert!(!RpcError::Busy(NodeId(0)).is_indeterminate());
    }
}
