//! RPC error type.

use ajx_storage::NodeId;
use core::fmt;

/// Why an RPC failed to complete.
///
/// The paper's failure model (§2) is fail-stop: nodes halt and the halt is
/// detectable. These errors are the transport-level manifestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The target storage node has crashed (fail-stop) and not been
    /// remapped yet; the caller should trigger recovery/remap.
    NodeDown(NodeId),
    /// The *calling client* was killed by fault injection mid-protocol —
    /// used by tests and experiments to create the paper's "partial write"
    /// scenarios deterministically.
    ClientKilled,
    /// The node id is not part of this network.
    UnknownNode(NodeId),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NodeDown(n) => write!(f, "storage node {n} is down"),
            RpcError::ClientKilled => write!(f, "client was killed by fault injection"),
            RpcError::UnknownNode(n) => write!(f, "storage node {n} does not exist"),
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            RpcError::NodeDown(NodeId(2)).to_string(),
            "storage node s2 is down"
        );
        assert!(RpcError::ClientKilled.to_string().contains("killed"));
        assert!(RpcError::UnknownNode(NodeId(9)).to_string().contains("s9"));
    }
}
